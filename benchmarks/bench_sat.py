"""E10 — substrate microbenchmarks: the CDCL solver."""

import random

import pytest

from repro.sat import Solver


def _pigeonhole(solver, pigeons, holes):
    solver.ensure_vars(pigeons * holes)

    def var(i, h):
        return holes * i + h + 1

    for i in range(pigeons):
        solver.add_clause([var(i, h) for h in range(holes)])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                solver.add_clause([-var(i, h), -var(j, h)])


def test_pigeonhole_unsat(benchmark):
    def run():
        solver = Solver()
        _pigeonhole(solver, 6, 5)
        return solver.solve(), solver.conflicts

    verdict, conflicts = benchmark(run)
    assert verdict is False
    assert conflicts > 0


def test_random_3sat_near_threshold(benchmark):
    """Random 3-SAT at clause ratio 4.0 (mixed SAT/UNSAT region)."""
    def run():
        rng = random.Random(7)
        solver = Solver()
        num_vars = 60
        solver.ensure_vars(num_vars)
        for _ in range(int(num_vars * 4.0)):
            variables = rng.sample(range(1, num_vars + 1), 3)
            solver.add_clause(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        return solver.solve()

    verdict = benchmark(run)
    assert verdict in (True, False)


def test_incremental_assumption_queries(benchmark):
    """The access pattern of the SAT sweeping backend: many small queries
    against one CNF under changing assumptions."""
    rng = random.Random(3)
    solver = Solver()
    num_vars = 40
    solver.ensure_vars(num_vars)
    for _ in range(120):
        variables = rng.sample(range(1, num_vars + 1), 3)
        solver.add_clause([v if rng.random() < 0.5 else -v for v in variables])

    def run():
        answers = []
        for v in range(1, 21):
            answers.append(solver.solve(assumptions=[v, -(v % num_vars + 1)]))
        return answers

    answers = benchmark(run)
    assert len(answers) == 20
