"""E2 — Fig. 2: the worked example, asserted and timed.

Regenerates the paper's running example: the discovered classes must be
{v3, v6} and {v4, v7}, the correspondence condition must simplify to
``v1·v2 ≡ v6`` (checked semantically), and the functional-dependency
substitution must fire.
"""

from repro.circuits import fig2_pair
from repro.core import VanEijkVerifier, compute_fixpoint
from repro.core.timeframe import TimeFrame
from repro.netlist import build_product

from conftest import run_once


def test_fig2_classes_and_condition(benchmark):
    spec, impl = fig2_pair()
    product = build_product(spec, impl, match_outputs="order")

    def run():
        frame = TimeFrame(product.circuit.copy())
        # use_fundeps=False keeps the v6 equivalence *inside* Q (with
        # substitution it is enforced by rewriting instead and the conjunct
        # disappears); the substitution variant is asserted separately.
        fix = compute_fixpoint(frame, frame.build_signal_functions(),
                               use_fundeps=False)
        return frame, fix

    frame, fix = run_once(benchmark, run)
    class_nets = [
        sorted(net for fn in cls for net, _ in fn.members)
        for cls in fix.partition.classes
        if sum(len(fn.members) for fn in cls) > 1
    ]
    assert any({"s.v3", "i.v6"} <= set(c) for c in class_nets)
    assert any({"s.v4", "i.v7"} <= set(c) for c in class_nets)
    # The simplified correspondence condition: v1·v2 == v6 (Definition 1).
    mgr = frame.manager
    v1 = mgr.var_edge(frame.state_id["s.v1"])
    v2 = mgr.var_edge(frame.state_id["s.v2"])
    v6 = mgr.var_edge(frame.state_id["i.v6"])
    expected = mgr.apply_xnor(mgr.apply_and(v1, v2), v6)
    # Q may carry extra (true) conjuncts; it must at least imply the
    # paper's condition and be implied by it together with w1 == v1.
    w1 = mgr.var_edge(frame.state_id["i.w1"])
    strengthened = mgr.apply_and(expected, mgr.apply_xnor(v1, w1))
    assert mgr.apply_implies(fix.q_edge, expected) == mgr.true
    assert mgr.apply_implies(strengthened, fix.q_edge) == mgr.true
    # The paper's §4 substitution (v6 := v1·v2) fires in the fundep variant.
    frame2 = TimeFrame(product.circuit.copy())
    fix2 = compute_fixpoint(frame2, frame2.build_signal_functions(),
                            use_fundeps=True)
    assert fix2.substitutions >= 1
    benchmark.extra_info.update({
        "iterations": fix.iterations,
        "substitutions_with_fundeps": fix2.substitutions,
    })


def test_fig2_end_to_end(benchmark):
    spec, impl = fig2_pair()

    def run():
        return VanEijkVerifier().verify(spec, impl, match_outputs="order")

    result = run_once(benchmark, run)
    assert result.proved
    assert result.details["retime_rounds"] == 0
