"""E-extra — BMC refutation: shortest counterexamples vs. the other
refuters (simulation inside the main engine, traversal rings)."""

import pytest

from repro.circuits import row_by_name
from repro.core import VanEijkVerifier
from repro.core.bmc import bmc_refute
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal
from repro.transform import inject_distinguishable_fault

from conftest import run_once


@pytest.fixture(scope="module")
def buggy_product():
    spec = row_by_name("s298").spec()
    impl, _ = inject_distinguishable_fault(spec, seed=17)
    return build_product(spec, impl, match_outputs="order")


def test_bmc_refutes(benchmark, buggy_product):
    def run():
        return bmc_refute(buggy_product, max_depth=48)

    result = run_once(benchmark, run)
    assert result.refuted
    benchmark.extra_info["cex_depth"] = result.details["cex_depth"]


def test_simulation_refutes(benchmark, buggy_product):
    def run():
        return VanEijkVerifier().verify_product(buggy_product)

    result = run_once(benchmark, run)
    assert result.refuted
    benchmark.extra_info["cex_length"] = result.counterexample.length


def test_traversal_refutes(benchmark, buggy_product):
    def run():
        return check_equivalence_traversal(buggy_product, time_limit=120,
                                           node_limit=2000000)

    result = run_once(benchmark, run)
    assert result.refuted
    benchmark.extra_info["cex_length"] = result.counterexample.length
