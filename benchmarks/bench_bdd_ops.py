"""E10 — substrate microbenchmarks: the BDD package.

Not a paper table, but the cost model underneath every row: ITE throughput,
quantification, vector composition (the ν computation), and the benefit of
sifting on an order-sensitive function.
"""

import pytest

from repro.bdd import BddManager, sift


def _adder_outputs(mgr, n):
    xs = [mgr.add_var("x{}".format(i)) for i in range(n)]
    ys = [mgr.add_var("y{}".format(i)) for i in range(n)]
    carry = mgr.false
    sums = []
    for x, y in zip(xs, ys):
        s = mgr.apply_xor(mgr.apply_xor(x, y), carry)
        carry = mgr.apply_or(
            mgr.apply_and(x, y), mgr.apply_and(carry, mgr.apply_xor(x, y))
        )
        sums.append(s)
    return xs, ys, sums, carry


def test_ite_adder_construction(benchmark):
    def run():
        mgr = BddManager()
        _adder_outputs(mgr, 12)
        return mgr.live_nodes

    nodes = benchmark(run)
    assert nodes > 100


def test_quantification(benchmark):
    mgr = BddManager()
    xs, ys, sums, carry = _adder_outputs(mgr, 10)
    x_ids = [mgr.var_of(x) for x in xs]

    def run():
        return mgr.exists(carry, x_ids[:5])

    result = benchmark(run)
    assert result != mgr.false


def test_vector_compose(benchmark):
    mgr = BddManager()
    xs, ys, sums, carry = _adder_outputs(mgr, 10)
    substitution = {mgr.var_of(x): s for x, s in zip(xs, sums)}

    def run():
        return mgr.vector_compose(carry, substitution)

    result = benchmark(run)
    assert not mgr.is_constant(result)


def test_sifting_interleaved_function(benchmark):
    """The textbook order-sensitive function: sifting must shrink it."""
    n = 7

    def run():
        mgr = BddManager()
        xs = mgr.add_vars(["x{}".format(i) for i in range(n)])
        ys = mgr.add_vars(["y{}".format(i) for i in range(n)])
        f = mgr.or_many(mgr.apply_and(x, y) for x, y in zip(xs, ys))
        mgr.register_root(f)
        for v in xs + ys:
            mgr.register_root(v)
        before = mgr.dag_size(f)
        sift(mgr)
        after = mgr.dag_size(f)
        return before, after

    before, after = benchmark(run)
    assert after < before
    assert after <= 2 * n + 2
