"""E6 — Fig. 4 ablation: the retiming augmentation loop on retimed pairs."""

from repro.circuits import row_by_name
from repro.eval import ablation_retiming

from conftest import run_once


def test_retiming_ablation(benchmark):
    rows = [row_by_name(name) for name in ("s298", "s510")]

    def run():
        return ablation_retiming(rows=rows, retime_moves=5)

    results = run_once(benchmark, run)
    # Augmentation-on proves everything (completeness for retiming, §6);
    # fig3 is the witness that augmentation-off genuinely loses proofs.
    assert all(r["proved_on"] for r in results)
    fig3 = next(r for r in results if r["circuit"] == "fig3")
    assert not fig3["proved_off"]
    assert fig3["rounds"] == 1
    benchmark.extra_info["rows"] = {
        r["circuit"]: {"off": r["proved_off"], "rounds": r["rounds"]}
        for r in results
    }
