"""Fleet load harness: coordinator-sharded daemons under client storm.

Standalone script (not a pytest-benchmark module).  For each requested
worker count it boots a real deployment — one ``repro-sec serve
--coordinator`` subprocess fronting N ``--join`` worker subprocesses on
ephemeral ports — and drives it with a thread-per-client storm:

* **submission load** — ``--clients`` concurrent clients each submit
  ``--jobs-per-client`` verification jobs drawn round-robin from a pool
  of ``--unique`` distinct problems, and poll their own jobs to
  completion.  Per-job latency (submit -> terminal) is recorded and
  reported as p50/p99 alongside end-to-end throughput.
* **cache-hit storms** — the pool is smaller than the job count on
  purpose: every repeat of a problem is a content-addressed cache hit
  (local to the owning node, or served cross-node via the
  coordinator's shared cache), so the storm exercises the cache path at
  a realistic hit rate.  Hit counts come from the coordinator's stats.
* **SSE fan-out** — ``--watchers`` concurrent clients follow one long
  job's event stream through the coordinator while the storm runs; all
  of them must see the terminal frame.
* **verdict identity** — every job's result is compared against a
  single standalone daemon's run of the same problem; any mismatch
  fails the harness (exit 1).  Latency numbers on an oversubscribed CI
  host measure queueing, not the engine — verdict identity is the part
  that must never flake.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py \
        [--workers 1,2] [--clients 8] [--jobs-per-client 4] \
        [--unique 6] [--watchers 4] [--out BENCH_fleet.json]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:  # pragma: no cover - direct invocation aid
    sys.path.insert(0, SRC_DIR)

from repro.circuits import delay_line_pair  # noqa: E402
from repro.client import ServerClient, job_payload  # noqa: E402

#: Fields of a serialized SecResult that legitimately vary between runs.
VOLATILE_RESULT_FIELDS = ("seconds",)


class Daemon:
    """One ``repro-sec serve`` subprocess in its own process group."""

    def __init__(self, base_dir, tag, extra_args=(), engine_workers=2):
        home = os.path.join(base_dir, tag)
        os.makedirs(home, exist_ok=True)
        self.tag = tag
        self.ready_file = os.path.join(home, "ready.json")
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0", "--quiet",
            "--store-dir", os.path.join(home, "store"),
            "--cache-dir", os.path.join(home, "cache"),
            "--ready-file", self.ready_file,
            "--workers", str(engine_workers),
            "--rate", "100000", "--burst", "100000",
            "--queue-limit", "100000",
        ] + list(extra_args)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env, cwd=home, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        self.pgid = os.getpgid(self.proc.pid)
        self.url = self._await_ready()

    def _await_ready(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "{} died during startup:\n".format(self.tag)
                    + self.proc.stderr.read().decode())
            try:
                with open(self.ready_file) as fh:
                    return json.load(fh)["url"]
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise RuntimeError("{} never wrote its ready file".format(self.tag))

    def stop(self):
        try:
            self.proc.send_signal(signal.SIGTERM)
            self.proc.wait(timeout=30)
        except (ProcessLookupError, subprocess.TimeoutExpired):
            pass
        try:
            os.killpg(self.pgid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        if self.proc.poll() is None:
            self.proc.wait(timeout=10)
        if self.proc.stderr:
            self.proc.stderr.close()


def build_pool(unique, base_delay, step):
    """``unique`` distinct problems with engine-deterministic verdicts."""
    pool = []
    for number in range(unique):
        delay = base_delay + number * step
        spec, impl = delay_line_pair(delay)
        pool.append(job_payload(
            spec, impl, name="pair-d{}".format(delay), method="bmc",
            options={"max_depth": delay + 50}, match_outputs="order"))
    return pool


def comparable_result(record):
    result = record.get("result")
    if result is None:
        return None
    inner = dict(result.get("result") or {})
    for field in VOLATILE_RESULT_FIELDS:
        inner.pop(field, None)
    return inner


def percentile(values, fraction):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def client_storm(url, pool, clients, jobs_per_client, timeout):
    """Thread-per-client submission storm; returns (latencies, verdicts).

    ``latencies`` is seconds from submission to terminal state, one per
    job; ``verdicts`` maps job name to its comparable result dict (the
    harness asserts all copies of one problem agree before returning).
    """
    latencies = []
    verdicts = {}
    errors = []
    lock = threading.Lock()

    def one_client(client_index):
        client = ServerClient(url, timeout=30.0)
        try:
            for number in range(jobs_per_client):
                payload = pool[(client_index + number * clients)
                               % len(pool)]
                started = time.monotonic()
                job_id = client.submit_payload(payload)
                deadline = time.monotonic() + timeout
                while True:
                    record = client.job(job_id)
                    if record["state"] in ("done", "cancelled", "error"):
                        break
                    if time.monotonic() > deadline:
                        raise RuntimeError("job {} timed out".format(job_id))
                    time.sleep(0.02)
                latency = time.monotonic() - started
                if record["state"] != "done":
                    raise RuntimeError("job {} ended {}: {}".format(
                        payload["name"], record["state"],
                        record.get("error")))
                outcome = comparable_result(record)
                with lock:
                    latencies.append(latency)
                    previous = verdicts.setdefault(payload["name"], outcome)
                    if previous != outcome:
                        raise RuntimeError(
                            "verdict drift within the fleet for "
                            + payload["name"])
        except Exception as exc:  # surfaced after the join
            with lock:
                errors.append("client {}: {}".format(client_index, exc))

    threads = [threading.Thread(target=one_client, args=(index,),
                                daemon=True)
               for index in range(clients)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    if errors:
        raise RuntimeError("; ".join(errors[:5]))
    return latencies, verdicts, wall


def cache_storm(url, pool, node_ids, timeout):
    """Force cross-node serves: every problem pinned to every node.

    After the main storm each problem is solved and cached somewhere;
    pinning it to each node in turn makes the owning node serve its
    local copy and every *other* node read through the coordinator's
    shared cache — the "any node serves any fingerprint" guarantee,
    measured.  Returns counts and the cached-serve latency percentiles.
    """
    client = ServerClient(url, timeout=30.0)
    latencies = []
    cached = 0
    for payload in pool:
        for node_id in node_ids:
            pinned = dict(payload, pin_node=node_id)
            started = time.monotonic()
            job_id = client.submit_payload(pinned)
            record = client.wait(job_id, poll=0.02, timeout=timeout)
            latencies.append(time.monotonic() - started)
            if record["state"] != "done":
                raise RuntimeError("pinned job on {} ended {}".format(
                    node_id, record["state"]))
            if record.get("cached"):
                cached += 1
    return {
        "jobs": len(latencies),
        "cached": cached,
        "hit_rate": round(cached / len(latencies), 3) if latencies else None,
        "latency_seconds": {
            "p50": round(percentile(latencies, 0.50), 4),
            "p99": round(percentile(latencies, 0.99), 4),
        },
    }


def sse_fanout(url, payload, watchers, timeout):
    """``watchers`` concurrent SSE followers of one job; returns stats."""
    client = ServerClient(url, timeout=30.0)
    job_id = client.submit_payload(payload)
    finished = []
    event_counts = []
    lock = threading.Lock()

    def watch():
        watcher = ServerClient(url, timeout=30.0)
        count = 0
        try:
            for event in watcher.events(job_id, timeout=timeout):
                count += 1
                if event.get("type") == "done":
                    with lock:
                        finished.append(True)
                    break
        finally:
            with lock:
                event_counts.append(count)

    threads = [threading.Thread(target=watch, daemon=True)
               for _ in range(watchers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    return {
        "watchers": watchers,
        "terminal_frames_seen": len(finished),
        "min_events_per_watcher": min(event_counts) if event_counts else 0,
    }


def baseline_run(base_dir, pool, timeout, engine_workers):
    """The single-daemon ground truth: one run per unique problem."""
    daemon = Daemon(base_dir, "baseline", engine_workers=engine_workers)
    try:
        client = ServerClient(daemon.url, timeout=30.0)
        verdicts = {}
        started = time.monotonic()
        ids = [client.submit_payload(payload) for payload in pool]
        for payload, job_id in zip(pool, ids):
            record = client.wait(job_id, poll=0.05, timeout=timeout)
            if record["state"] != "done":
                raise RuntimeError("baseline job {} ended {}".format(
                    payload["name"], record["state"]))
            verdicts[payload["name"]] = comparable_result(record)
        return verdicts, time.monotonic() - started
    finally:
        daemon.stop()


def bench_fleet(base_dir, node_count, pool, args):
    """Boot a coordinator + ``node_count`` workers and run the storm."""
    tag = "fleet{}".format(node_count)
    coordinator = Daemon(base_dir, tag + "-coord",
                         extra_args=("--coordinator",
                                     "--heartbeat", "0.25",
                                     "--dead-after", "2.0"))
    nodes = []
    try:
        for number in range(node_count):
            nodes.append(Daemon(
                base_dir, "{}-w{}".format(tag, number),
                extra_args=("--join", coordinator.url,
                            "--node-id", "w{}".format(number),
                            "--heartbeat", "0.25"),
                engine_workers=args.engine_workers))
        client = ServerClient(coordinator.url, timeout=30.0)
        deadline = time.monotonic() + 30
        while client.healthz()["nodes"]["alive"] < node_count:
            if time.monotonic() > deadline:
                raise RuntimeError("workers never joined")
            time.sleep(0.05)

        latencies, verdicts, wall = client_storm(
            coordinator.url, pool, args.clients, args.jobs_per_client,
            args.timeout)
        storm = cache_storm(
            coordinator.url, pool,
            ["w{}".format(number) for number in range(node_count)],
            args.timeout)
        fanout = sse_fanout(
            coordinator.url, pool[0], args.watchers, args.timeout)
        stats = client.stats()
        cache = stats.get("cache") or {}
        return {
            "nodes": node_count,
            "jobs": len(latencies),
            "clients": args.clients,
            "wall_seconds": round(wall, 3),
            "throughput_jobs_per_second": round(len(latencies) / wall, 3)
            if wall > 0 else None,
            "latency_seconds": {
                "p50": round(percentile(latencies, 0.50), 4),
                "p99": round(percentile(latencies, 0.99), 4),
                "max": round(max(latencies), 4),
            },
            "shared_cache_hits": cache.get("hits"),
            "requeues": stats.get("requeues"),
            "dispatch_failures": stats.get("dispatch_failures"),
            "per_node_dispatched": {
                node["id"]: node["dispatched"]
                for node in stats["nodes"]["detail"]},
            "cache_storm": storm,
            "sse_fanout": fanout,
        }, verdicts
    finally:
        for node in nodes:
            node.stop()
        coordinator.stop()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", default="1,2", metavar="LIST",
                        help="comma-separated fleet sizes (worker daemons)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent submitting clients")
    parser.add_argument("--jobs-per-client", type=int, default=4)
    parser.add_argument("--unique", type=int, default=6,
                        help="distinct problems in the pool (repeats of a "
                             "problem become cache-hit storms)")
    parser.add_argument("--watchers", type=int, default=4,
                        help="concurrent SSE followers of one job")
    parser.add_argument("--base-delay", type=int, default=12,
                        help="BMC depth of the smallest pool problem")
    parser.add_argument("--delay-step", type=int, default=4)
    parser.add_argument("--engine-workers", type=int, default=2,
                        help="engine worker processes per daemon")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-job completion timeout (seconds)")
    parser.add_argument("--out", default="BENCH_fleet.json")
    parser.add_argument("--scratch", default=None,
                        help="daemon scratch directory (default: a fresh "
                             "tempdir)")
    args = parser.parse_args(argv)

    node_counts = [int(tok) for tok in args.workers.split(",") if tok]
    if len(node_counts) < 2:
        print("WARNING: fewer than 2 fleet sizes; scaling comparison "
              "will be thin", file=sys.stderr)
    pool = build_pool(args.unique, args.base_delay, args.delay_step)

    import tempfile
    scratch = args.scratch or tempfile.mkdtemp(prefix="bench-fleet-")

    print("== baseline: single standalone daemon, {} unique problems"
          .format(len(pool)), flush=True)
    baseline, baseline_wall = baseline_run(
        scratch, pool, args.timeout, args.engine_workers)
    print("   solved in {:.2f}s".format(baseline_wall), flush=True)

    results = []
    mismatches = []
    for node_count in node_counts:
        print("== fleet: coordinator + {} worker daemon(s), {} clients x "
              "{} jobs".format(node_count, args.clients,
                               args.jobs_per_client), flush=True)
        entry, verdicts = bench_fleet(scratch, node_count, pool, args)
        for name, outcome in sorted(verdicts.items()):
            if baseline.get(name) != outcome:
                mismatches.append("nodes={} {}".format(node_count, name))
        entry["verdicts_match_baseline"] = not mismatches
        results.append(entry)
        print("   {} jobs in {}s ({} jobs/s), p50 {}s p99 {}s, "
              "cache storm {}/{} served cached (shared hits: {}), "
              "fanout {}/{}".format(
                  entry["jobs"], entry["wall_seconds"],
                  entry["throughput_jobs_per_second"],
                  entry["latency_seconds"]["p50"],
                  entry["latency_seconds"]["p99"],
                  entry["cache_storm"]["cached"],
                  entry["cache_storm"]["jobs"],
                  entry["shared_cache_hits"],
                  entry["sse_fanout"]["terminal_frames_seen"],
                  entry["sse_fanout"]["watchers"]), flush=True)

    report = {
        "bench": "fleet",
        "summary": {
            "fleet_sizes": node_counts,
            "clients": args.clients,
            "jobs_per_fleet_size": args.clients * args.jobs_per_client,
            "unique_problems": len(pool),
            "cpu_count": os.cpu_count(),
            "baseline_seconds": round(baseline_wall, 3),
            "verdicts_identical": not mismatches,
            "verdict_mismatches": mismatches,
        },
        "baseline": {"wall_seconds": round(baseline_wall, 3),
                     "unique_problems": len(pool)},
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("\nwrote {}".format(args.out), flush=True)

    if mismatches:
        print("ERROR: verdict mismatch vs the single-daemon baseline: "
              + ", ".join(mismatches), file=sys.stderr)
        return 1
    for entry in results:
        fanout = entry["sse_fanout"]
        if fanout["terminal_frames_seen"] < fanout["watchers"]:
            print("ERROR: only {}/{} SSE watchers saw the terminal frame "
                  "at nodes={}".format(fanout["terminal_frames_seen"],
                                       fanout["watchers"], entry["nodes"]),
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
