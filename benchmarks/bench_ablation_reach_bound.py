"""E9 — §3: strengthening Q with reachable-state don't cares.

The one-hot family: the bare fixed point cannot prove either ring; retiming
augmentation rescues the free-running ring only; the exact reachable bound
rescues both.
"""

from repro.eval import ablation_reach_bound

from conftest import run_once


def test_reach_bound_rescues_incomplete_cases(benchmark):
    results = run_once(benchmark, ablation_reach_bound)
    by_name = {r["circuit"]: r for r in results}
    plain_ring = by_name["onehot"]
    gated_ring = by_name["onehot_en"]
    assert plain_ring["plain"] is None
    assert plain_ring["with_retiming"] is True
    assert plain_ring["with_reach"] is True
    assert gated_ring["plain"] is None
    assert gated_ring["with_retiming"] is None  # genuinely incomplete
    assert gated_ring["with_reach"] is True
    benchmark.extra_info["rows"] = {
        name: {k: v for k, v in row.items() if k != "circuit"}
        for name, row in by_name.items()
    }
