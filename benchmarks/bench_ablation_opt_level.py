"""E7 — the Table-1 footnote: %eqs drops as optimization gets aggressive.

Paper: 85% of specification signals have a corresponding implementation
signal after retiming alone; 54% after ``script.rugged``.  The absolute
percentages depend on the optimizer; the reproduced effect is the monotone
drop while both variants stay provable.
"""

from repro.circuits import row_by_name
from repro.eval import ablation_opt_level

from conftest import run_once

ROWS = ["s298", "s344", "s386", "s953", "s1196"]


def test_eqs_drops_with_optimization(benchmark):
    rows = [row_by_name(name) for name in ROWS]

    def run():
        return ablation_opt_level(rows)

    results = run_once(benchmark, run)
    assert all(r["both_proved"] for r in results)
    for r in results:
        assert r["eqs_optimized"] <= r["eqs_retime_only"] + 1e-9, r
    avg_light = sum(r["eqs_retime_only"] for r in results) / len(results)
    avg_heavy = sum(r["eqs_optimized"] for r in results) / len(results)
    assert avg_heavy < avg_light
    benchmark.extra_info.update({
        "avg_eqs_retime_only": round(avg_light, 1),
        "avg_eqs_optimized": round(avg_heavy, 1),
    })
