"""E5 — §4 ablation: functional dependencies of the correspondence
condition, and the traversal baseline's register-correspondence reduction.

The paper: "If the detection of functional dependencies is disabled, the
symbolic traversal method performs considerably worse."
"""

import pytest

from repro.circuits import row_by_name
from repro.core import VanEijkVerifier
from repro.eval import ablation_fundep
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal

from conftest import run_once


def test_fundep_ablation_rows(benchmark):
    rows = [row_by_name(name) for name in ("s298", "s386")]

    def run():
        return ablation_fundep(rows)

    results = run_once(benchmark, run)
    assert all(r["both_proved"] for r in results)
    assert any(r["subs"] > 0 for r in results)
    benchmark.extra_info["rows"] = {
        r["circuit"]: {"subs": r["subs"], "nodes_fd": r["nodes_fd"],
                       "nodes_nofd": r["nodes_nofd"]}
        for r in results
    }


@pytest.mark.parametrize("use_fundeps", [True, False])
def test_fundep_proposed_timing(benchmark, suite_pairs, use_fundeps):
    spec, impl = suite_pairs("s953")

    def run():
        return VanEijkVerifier(use_fundeps=use_fundeps).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info.update({
        "substitutions": result.details["substitutions"],
        "peak_nodes": result.peak_nodes,
    })


@pytest.mark.parametrize("use_rc", [True, False])
def test_traversal_register_correspondence_timing(benchmark, suite_pairs,
                                                  use_rc):
    spec, impl = suite_pairs("s298")
    product = build_product(spec, impl, match_outputs="order")

    def run():
        return check_equivalence_traversal(
            product, use_register_correspondence=use_rc,
            time_limit=120, node_limit=2000000, max_iterations=600,
        )

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info.update({
        "merged": result.details.get("register_classes_merged"),
        "peak_nodes": result.peak_nodes,
    })
