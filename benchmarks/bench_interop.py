"""Interop layer benchmarks: AIGER encode/decode throughput and the
format-independent fingerprint.

The AIGER path sits on the fuzz loop's hot path (the ``aiger_roundtrip``
transform) and under every cache key (``aig_fingerprint``), so encode /
decode / fingerprint cost on suite-sized circuits is worth tracking.
Datapath generator timings ride along: they bound the fixed-seed fuzz
budget CI's interop-smoke job pays per case.
"""

import pytest

from repro.circuits import datapath_pair, row_by_name
from repro.interop.aiger import (
    dumps_aiger_ascii,
    dumps_aiger_binary,
    loads_aiger,
    reencode,
)
from repro.interop.fingerprint import aig_fingerprint
from repro.netlist.aig import from_circuit, to_circuit

from conftest import run_once


@pytest.fixture(scope="module")
def suite_aig():
    circuit = row_by_name("s953").spec()
    aig, _ = from_circuit(circuit)
    return circuit, aig


def test_binary_aiger_encode(benchmark, suite_aig):
    _, aig = suite_aig
    blob = run_once(benchmark, lambda: dumps_aiger_binary(aig))
    benchmark.extra_info["bytes"] = len(blob)
    benchmark.extra_info["ands"] = len(aig.ands)


def test_binary_aiger_decode(benchmark, suite_aig):
    _, aig = suite_aig
    blob = dumps_aiger_binary(aig)
    decoded = run_once(benchmark, lambda: loads_aiger(blob))
    assert len(decoded.ands) == len(reencode(aig).ands)


def test_ascii_vs_binary_size(benchmark, suite_aig):
    _, aig = suite_aig

    def both():
        return dumps_aiger_ascii(aig), dumps_aiger_binary(aig)

    text, blob = run_once(benchmark, both)
    benchmark.extra_info["ascii_bytes"] = len(text)
    benchmark.extra_info["binary_bytes"] = len(blob)
    benchmark.extra_info["ratio"] = round(len(blob) / len(text), 3)


def test_full_circuit_round_trip(benchmark, suite_aig):
    circuit, _ = suite_aig

    def round_trip():
        aig, _ = from_circuit(circuit)
        return to_circuit(loads_aiger(dumps_aiger_binary(aig)))

    back = run_once(benchmark, round_trip)
    assert len(back.registers) == len(circuit.registers)


def test_fingerprint_cost(benchmark, suite_aig):
    circuit, _ = suite_aig
    digest = run_once(benchmark, lambda: aig_fingerprint(circuit))
    assert len(digest) == 64


@pytest.mark.parametrize("family", ["adder", "multiplier", "shifter"])
def test_datapath_generation(benchmark, family):
    spec, impl = run_once(benchmark,
                          lambda: datapath_pair(family, width=3, seed=0))
    benchmark.extra_info["spec_gates"] = spec.num_gates
    benchmark.extra_info["impl_gates"] = impl.num_gates
