"""E8 — §6 outlook: BDD fixpoint vs. SAT (intermediate variables) fixpoint.

Both backends must return the same verdict; their relative cost is the
experiment.
"""

import pytest

from repro.circuits import row_by_name
from repro.core import VanEijkVerifier, check_equivalence_sat_sweep

from conftest import run_once

ROWS = ["s298", "s386", "s953"]


@pytest.mark.parametrize("name", ROWS)
def test_backend_bdd(benchmark, suite_pairs, name):
    spec, impl = suite_pairs(name)

    def run():
        return VanEijkVerifier(use_retiming=False).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info["iterations"] = result.iterations


@pytest.mark.parametrize("name", ROWS)
def test_backend_sat(benchmark, suite_pairs, name):
    spec, impl = suite_pairs(name)

    def run():
        return check_equivalence_sat_sweep(spec, impl, match_outputs="order")

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info["iterations"] = result.iterations


def test_backends_agree_on_partition(benchmark, suite_pairs):
    """The SAT backend computes the same maximum relation as the BDD one."""
    from repro.core import compute_fixpoint
    from repro.core.satbackend import SatCorrespondence
    from repro.core.timeframe import TimeFrame
    from repro.netlist import build_product

    spec, impl = suite_pairs("s386")
    product = build_product(spec, impl, match_outputs="order")

    def run():
        frame = TimeFrame(product.circuit.copy())
        fix = compute_fixpoint(frame, frame.build_signal_functions())
        bdd_classes = {
            frozenset(net for fn in cls for net, _ in fn.members) - {"@const"}
            for cls in fix.partition.classes
        }
        sat_engine = SatCorrespondence(product)
        sat_raw, _ = sat_engine.compute()
        sat_classes = {
            frozenset(sig.net for sig in cls) - {"@const"}
            for cls in sat_raw
        }
        return bdd_classes, sat_classes

    bdd_classes, sat_classes = run_once(benchmark, run)
    bdd_classes = {c for c in bdd_classes if c}
    sat_classes = {c for c in sat_classes if c}
    assert bdd_classes == sat_classes
