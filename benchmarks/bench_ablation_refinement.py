"""E-extra — Eq. 3 decision procedures: implication check vs. generalized
cofactor (the don't-care-set reading of §4, made literal via constrain).

Both must compute the same relation; the benchmark compares their cost.
"""

import pytest

from repro.core import VanEijkVerifier, compute_fixpoint
from repro.core.timeframe import TimeFrame
from repro.netlist import build_product

from conftest import run_once

ROWS = ["s298", "s953", "s838"]


@pytest.mark.parametrize("mode", ["implication", "constrain"])
@pytest.mark.parametrize("name", ROWS)
def test_refinement_strategy(benchmark, suite_pairs, name, mode):
    spec, impl = suite_pairs(name)

    def run():
        return VanEijkVerifier(refinement=mode).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info.update({
        "iterations": result.iterations,
        "peak_nodes": result.peak_nodes,
    })


def test_strategies_identical_partition(benchmark, suite_pairs):
    spec, impl = suite_pairs("s386")
    product = build_product(spec, impl, match_outputs="order")

    def run():
        partitions = {}
        for mode in ("implication", "constrain"):
            frame = TimeFrame(product.circuit.copy())
            fix = compute_fixpoint(frame, frame.build_signal_functions(),
                                   refinement=mode)
            partitions[mode] = sorted(
                sorted(net for fn in cls for net, _ in fn.members)
                for cls in fix.partition.classes
            )
        return partitions

    partitions = run_once(benchmark, run)
    assert partitions["implication"] == partitions["constrain"]
