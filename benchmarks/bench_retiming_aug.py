"""E3 — Fig. 3: retiming-with-lag-1 augmentation unlocks retimed proofs.

The fig3 pair is provable only after exactly one augmentation round; the
suite check runs a retimed-only workload with augmentation on vs. off.
"""

import pytest

from repro.circuits import fig3_pair, row_by_name
from repro.core import VanEijkVerifier
from repro.transform import retime

from conftest import run_once


def test_fig3_requires_one_round(benchmark):
    spec, impl = fig3_pair()

    def run():
        return VanEijkVerifier(use_retiming=True).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.proved
    assert result.details["retime_rounds"] == 1
    assert result.details["augmented_signals"] >= 1
    benchmark.extra_info["augmented_signals"] = result.details[
        "augmented_signals"
    ]


def test_fig3_fails_without_augmentation(benchmark):
    spec, impl = fig3_pair()

    def run():
        return VanEijkVerifier(use_retiming=False).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.inconclusive


@pytest.mark.parametrize("name", ["s298", "s386", "s953"])
def test_retimed_suite_rows(benchmark, name):
    row = row_by_name(name)
    spec = row.spec()
    impl = retime(spec, moves=5, seed=row._seed() + 9)

    def run():
        return VanEijkVerifier(use_retiming=True).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info.update({
        "retime_rounds": result.details["retime_rounds"],
        "eqs_percent": round(result.details["eqs_percent"], 1),
    })
