"""E10 — core-engine microbenchmarks: the Fig. 1 time-frame operations.

Covers the three dominant costs of one fixpoint iteration: building the
model (f_v for all signals), the ν frame shift (vector composition), and
the correspondence-condition conjunction.
"""

import pytest

from repro.circuits import row_by_name
from repro.core.correspondence import (
    _correspondence_condition,
    compute_fixpoint,
    initial_partition,
)
from repro.core.timeframe import TimeFrame
from repro.netlist import build_product

from conftest import run_once


@pytest.fixture(scope="module")
def product():
    spec, impl = row_by_name("s953").pair()
    return build_product(spec, impl, match_outputs="order")


def test_timeframe_construction(benchmark, product):
    def run():
        frame = TimeFrame(product.circuit.copy())
        return frame.manager.live_nodes

    nodes = run_once(benchmark, run)
    assert nodes > 0


def test_nu_frame_shift_all_signals(benchmark, product):
    frame = TimeFrame(product.circuit.copy())
    functions = frame.build_signal_functions()

    def run():
        return [frame.nu(fn.edge) for fn in functions]

    nus = run_once(benchmark, run)
    assert len(nus) == len(functions)


def test_correspondence_condition_build(benchmark, product):
    frame = TimeFrame(product.circuit.copy())
    functions = frame.build_signal_functions()
    partition = initial_partition(frame, functions)

    def run():
        return _correspondence_condition(frame, partition, {})

    q_edge = run_once(benchmark, run)
    assert q_edge != frame.manager.false


def test_full_fixpoint(benchmark, product):
    def run():
        frame = TimeFrame(product.circuit.copy())
        return compute_fixpoint(frame, frame.build_signal_functions())

    fix = run_once(benchmark, run)
    assert fix.iterations >= 1
