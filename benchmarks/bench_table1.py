"""E1 — Table 1: the proposed method vs. symbolic traversal, row by row.

``--benchmark-only`` runs reproduce the paper's main table on the 'small'
rows (the medium/large rows run via ``examples/table1.py``, matching the
paper's hour-scale budget).  The expected *shape*:

* the proposed method proves every row, in times roughly flat in the
  sequential depth of the circuit;
* traversal works on shallow rows but is orders of magnitude slower, and
  aborts on the deep-state-space rows (s208/s420/s838 family).
"""

import pytest

from repro.circuits import row_by_name, table1_suite
from repro.core import VanEijkVerifier
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal

from conftest import run_once

SMALL_ROWS = [row.name for row in table1_suite(scales=("small",))]
# Rows whose product machines traversal finishes within the bench budget
# (the deep counter family and the widest rows are excluded, as in the
# paper's blank cells).
TRAVERSAL_ROWS = ["s298", "s344", "s349", "s386", "s510", "s820", "s832",
                  "s1488", "s1494"]


@pytest.mark.parametrize("name", SMALL_ROWS)
def test_table1_proposed(benchmark, suite_pairs, name):
    spec, impl = suite_pairs(name)
    product = build_product(spec, impl, match_outputs="order")

    def run():
        return VanEijkVerifier(time_limit=300).verify_product(product)

    result = run_once(benchmark, run)
    assert result.proved, result.details
    benchmark.extra_info.update({
        "circuit": name,
        "regs": "{}/{}".format(spec.num_registers, impl.num_registers),
        "iterations": result.iterations,
        "retime_rounds": result.details["retime_rounds"],
        "peak_nodes": result.peak_nodes,
        "eqs_percent": round(result.details["eqs_percent"], 1),
    })


@pytest.mark.parametrize("name", TRAVERSAL_ROWS)
def test_table1_traversal(benchmark, suite_pairs, name):
    spec, impl = suite_pairs(name)
    product = build_product(spec, impl, match_outputs="order")

    def run():
        return check_equivalence_traversal(
            product, time_limit=120, node_limit=1500000, max_iterations=600
        )

    result = run_once(benchmark, run)
    assert result.proved, result.details
    benchmark.extra_info.update({
        "circuit": name,
        "iterations": result.iterations,
        "peak_nodes": result.peak_nodes,
    })


def test_table1_deep_state_space_defeats_traversal(benchmark, suite_pairs):
    """The s838-family row: traversal must exhaust its budget while the
    proposed method succeeds — the paper's headline contrast."""
    spec, impl = suite_pairs("s838")
    product = build_product(spec, impl, match_outputs="order")

    def run():
        traversal = check_equivalence_traversal(
            product, time_limit=20, node_limit=500000, max_iterations=500
        )
        proposed = VanEijkVerifier(time_limit=300).verify_product(product)
        return traversal, proposed

    traversal, proposed = run_once(benchmark, run)
    assert traversal.inconclusive
    assert proposed.proved
    benchmark.extra_info.update({
        "traversal": traversal.details.get("aborted"),
        "proposed_iterations": proposed.iterations,
    })
