"""E6 — Batch service throughput and cache-hit reruns.

Measures the new ``repro.service`` layer end to end: a six-row batch of
Table 1 pairs run (a) inline, (b) with 2 worker processes, (c) with 4
worker processes, and (d) replayed against a warm result cache.  The
interesting columns are ``jobs_per_minute`` and the cache speedup — on a
single-core container the worker counts mostly measure scheduling
overhead, so no parallel-speedup assertion is made; the verdicts must
match across configurations regardless.
"""

import time

import pytest

from repro.circuits import table1_suite
from repro.service import BatchScheduler, JobSpec, ResultCache

from conftest import run_once

BATCH_ROWS = [row.name for row in table1_suite(scales=("small",))[:6]]


@pytest.fixture(scope="module")
def batch_jobs(suite_pairs):
    jobs = []
    for name in BATCH_ROWS:
        spec, impl = suite_pairs(name)
        jobs.append(JobSpec(name, spec, impl,
                            options={"time_limit": 300}))
    return jobs


def _throughput(results, seconds):
    return round(len(results) / seconds * 60.0, 2) if seconds > 0 else 0.0


@pytest.mark.parametrize("workers", [0, 2, 4])
def test_batch_throughput(benchmark, batch_jobs, workers):
    def run():
        t0 = time.monotonic()
        batch = BatchScheduler(workers=workers).run(batch_jobs)
        return batch, time.monotonic() - t0

    results, seconds = run_once(benchmark, run)
    assert [r.verdict for r in results] == [True] * len(batch_jobs)
    benchmark.extra_info.update({
        "workers": workers,
        "jobs": len(results),
        "jobs_per_minute": _throughput(results, seconds),
        "verdicts": [r.verdict for r in results],
    })


def test_batch_cache_hit_rerun(benchmark, batch_jobs, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("bench-cache"))
    t0 = time.monotonic()
    cold = BatchScheduler(workers=0, cache=cache).run(batch_jobs)
    cold_seconds = time.monotonic() - t0
    assert all(not r.cached for r in cold)

    def rerun():
        t0 = time.monotonic()
        batch = BatchScheduler(workers=0, cache=cache).run(batch_jobs)
        return batch, time.monotonic() - t0

    warm, warm_seconds = run_once(benchmark, rerun)
    assert all(r.cached for r in warm)
    assert [r.verdict for r in warm] == [r.verdict for r in cold]
    benchmark.extra_info.update({
        "jobs": len(warm),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cache_speedup": round(cold_seconds / warm_seconds, 1)
        if warm_seconds > 0 else float("inf"),
        "cache_hits": cache.hits,
    })
    # The warm replay does no verification work: it must be at least an
    # order of magnitude faster than the cold batch.
    assert warm_seconds * 10 <= cold_seconds
