"""Parallel refinement + compiled kernel vs. the serial baseline.

Standalone script (not a pytest-benchmark module), two sections:

* **refinement** — runs ``check_equivalence_sat_sweep`` once per worker
  count per Table-1 row (``0`` = serial baseline), asserts every
  configuration returns the identical verdict and final class count, and
  records wall-clock plus the per-round worker telemetry the engine emits.
* **kernel** — measures simulation throughput of the exec-compiled
  :class:`CompiledSim` against the interpreted ``bit_parallel_eval`` on the
  same product circuits (the kernel backs partition seeding and every
  counterexample replay).  Acceptance bar: >= 3x.

Wall-clock speedup from worker processes requires actual cores;
``cpu_count`` is recorded in the report and the 2x acceptance bar is only
*enforced* when the host has at least as many cores as the largest worker
count.  On an under-provisioned (e.g. single-core) container the report is
still written, but every ``speedup_vs_serial`` field is null and the
summary carries a ``speedup_skip_reason`` — honest numbers over
aspirational ones.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--rows s838 s953 | --rows 2] [--workers 0,2,4] \
        [--out BENCH_parallel.json] [--time-limit SECONDS]

``--rows N`` (a single integer) selects the N largest default rows.
"""

import argparse
import json
import os
import random
import sys
import time

from repro.circuits import row_by_name, table1_suite
from repro.core import check_equivalence_sat_sweep
from repro.netlist import CompiledSim, bit_parallel_eval, build_product

DEFAULT_ROWS = [row.name for row in table1_suite(scales=("small",))]


def select_rows(tokens):
    """Row names, or a single integer selecting the N largest defaults."""
    if len(tokens) == 1 and tokens[0].isdigit():
        count = int(tokens[0])
        by_size = sorted(DEFAULT_ROWS,
                         key=lambda name: row_by_name(name).pair()[0].num_registers,
                         reverse=True)
        return by_size[:count]
    return list(tokens)


def run_mode(spec, impl, workers, time_limit):
    rounds = []

    def progress(kind, **data):
        if kind == "refinement_round":
            rounds.append(data)

    started = time.perf_counter()
    result = check_equivalence_sat_sweep(
        spec, impl, match_outputs="order", refine_workers=workers,
        time_limit=time_limit, progress=progress,
    )
    seconds = time.perf_counter() - started
    parallel_rounds = [r for r in rounds if r.get("workers")]
    return {
        "workers": workers,
        "seconds": round(seconds, 4),
        "verdict": result.equivalent,
        "classes": result.details.get("classes"),
        "rounds": len(rounds),
        "parallel_rounds": len(parallel_rounds),
        "mean_round_speedup": round(
            sum(r["speedup"] for r in parallel_rounds)
            / len(parallel_rounds), 3) if parallel_rounds else None,
        "solver_constructions": result.details.get(
            "solver_stats", {}).get("solver_constructions"),
    }


def bench_row(name, worker_counts, time_limit, measure_speedup=True):
    spec, impl = row_by_name(name).pair()
    modes = [run_mode(spec, impl, w, time_limit) for w in worker_counts]
    baseline = modes[0]
    for mode in modes[1:]:
        if mode["verdict"] != baseline["verdict"]:
            raise AssertionError(
                "{}: verdict mismatch at workers={} ({} vs {})".format(
                    name, mode["workers"], mode["verdict"],
                    baseline["verdict"]))
        if mode["classes"] != baseline["classes"]:
            raise AssertionError(
                "{}: class-count mismatch at workers={} ({} vs {})".format(
                    name, mode["workers"], mode["classes"],
                    baseline["classes"]))
        # On an under-provisioned host the wall-clock ratio measures
        # scheduler contention, not the engine; record null, not noise.
        mode["speedup_vs_serial"] = round(
            baseline["seconds"] / max(mode["seconds"], 1e-9), 2
        ) if measure_speedup else None
    return {
        "circuit": name,
        "regs": "{}/{}".format(spec.num_registers, impl.num_registers),
        "modes": modes,
    }


def bench_kernel(name, frames=200, width=64, seed=7):
    """Interpreted vs. compiled throughput on one row's product circuit."""
    spec, impl = row_by_name(name).pair()
    circuit = build_product(spec, impl, match_outputs="order").circuit
    sim = CompiledSim(circuit)
    rng = random.Random(seed)
    leaves = list(circuit.inputs) + list(circuit.registers)
    envs = [{net: rng.getrandbits(width) for net in leaves}
            for _ in range(frames)]
    # Warm both paths (topo cache, kernel namespace) before timing.
    bit_parallel_eval(circuit, envs[0], width)
    sim.eval(envs[0], width)
    started = time.perf_counter()
    for env in envs:
        bit_parallel_eval(circuit, env, width)
    interpreted = time.perf_counter() - started
    started = time.perf_counter()
    for env in envs:
        sim.eval(env, width)
    compiled = time.perf_counter() - started
    return {
        "circuit": name,
        "nets": len(circuit.gates),
        "frames": frames,
        "width": width,
        "interpreted_seconds": round(interpreted, 4),
        "compiled_seconds": round(compiled, 4),
        "throughput_ratio": round(interpreted / max(compiled, 1e-9), 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", nargs="+", default=DEFAULT_ROWS,
                        metavar="NAME|N",
                        help="suite rows, or a single count of the largest")
    parser.add_argument("--workers", default="0,2,4", metavar="LIST",
                        help="comma-separated worker counts (0 = serial)")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path")
    parser.add_argument("--time-limit", type=float, default=300.0,
                        help="per-run SAT sweep time limit (seconds)")
    args = parser.parse_args(argv)

    worker_counts = [int(tok) for tok in args.workers.split(",") if tok != ""]
    if not worker_counts or worker_counts[0] != 0:
        worker_counts = [0] + [w for w in worker_counts if w != 0]
    names = select_rows(args.rows)
    cores = os.cpu_count() or 1
    max_workers = max(worker_counts)
    measure_speedup = cores >= max_workers
    speedup_skip_reason = None
    if not measure_speedup:
        speedup_skip_reason = (
            "host has {} core(s) < {} workers; wall-clock speedup is "
            "meaningless here, so the speedup bar is skipped and "
            "speedup_vs_serial recorded as null".format(cores, max_workers))
        print("WARNING: " + speedup_skip_reason + " (verdict identity is "
              "still checked and per-round telemetry recorded)",
              file=sys.stderr)

    rows = []
    for name in names:
        print("== {}".format(name), flush=True)
        row = bench_row(name, worker_counts, args.time_limit,
                        measure_speedup=measure_speedup)
        for mode in row["modes"]:
            print("   workers={:<2d} {:>8.3f}s  classes={:<4} rounds={} "
                  "constructions={}{}".format(
                      mode["workers"], mode["seconds"], mode["classes"],
                      mode["rounds"], mode["solver_constructions"],
                      "  ({}x vs serial)".format(mode["speedup_vs_serial"])
                      if mode.get("speedup_vs_serial") is not None else ""),
                  flush=True)
        rows.append(row)

    kernel = [bench_kernel(name) for name in names]
    for entry in kernel:
        print("kernel {}: interpreted {}s vs compiled {}s ({}x)".format(
            entry["circuit"], entry["interpreted_seconds"],
            entry["compiled_seconds"], entry["throughput_ratio"]),
            flush=True)

    serial_total = round(sum(r["modes"][0]["seconds"] for r in rows), 4)
    best = {}
    for w in worker_counts[1:]:
        total = round(sum(
            m["seconds"] for r in rows for m in r["modes"]
            if m["workers"] == w), 4)
        best[str(w)] = {
            "seconds": total,
            "speedup_vs_serial": round(serial_total / max(total, 1e-9), 2)
            if measure_speedup else None,
        }
    min_kernel_ratio = min(e["throughput_ratio"] for e in kernel)
    summary = {
        "rows": len(rows),
        "cpu_count": cores,
        "worker_counts": worker_counts,
        "serial_seconds": serial_total,
        "parallel": best,
        "speedup_bar_enforced": measure_speedup,
        "speedup_skip_reason": speedup_skip_reason,
        "min_kernel_throughput_ratio": min_kernel_ratio,
        "verdicts_identical": True,  # bench_row raises otherwise
    }
    report = {"bench": "parallel_refinement", "summary": summary,
              "results": rows, "kernel": kernel}
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print("\nSerial total {}s; parallel: {}; min kernel ratio {}x; wrote {}"
          .format(serial_total,
                  ", ".join("{}w={}s ({})".format(
                      w, best[w]["seconds"],
                      "{}x".format(best[w]["speedup_vs_serial"])
                      if best[w]["speedup_vs_serial"] is not None
                      else "speedup skipped")
                      for w in sorted(best)) or "n/a",
                  min_kernel_ratio, args.out), flush=True)

    failed = False
    if min_kernel_ratio < 3.0:
        print("WARNING: kernel throughput ratio {}x below the 3x bar".format(
            min_kernel_ratio), file=sys.stderr)
        failed = True
    if best and measure_speedup:
        wall_bar = max(b["speedup_vs_serial"] for b in best.values())
        if wall_bar < 2.0:
            print("WARNING: best wall-clock speedup {}x below the 2x bar"
                  .format(wall_bar), file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
