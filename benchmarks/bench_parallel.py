"""Parallel refinement + compiled kernel vs. the serial baseline.

Standalone script (not a pytest-benchmark module), two sections:

* **refinement** — runs ``check_equivalence_sat_sweep`` once per worker
  count per Table-1 row (``0`` = serial baseline), asserts every
  configuration returns the identical verdict and final class count, and
  records wall-clock plus the per-round worker telemetry the engine emits.
* **kernel** — measures simulation throughput of the exec-compiled
  :class:`CompiledSim` against the interpreted ``bit_parallel_eval`` on the
  same product circuits (the kernel backs partition seeding and every
  counterexample replay).  Acceptance bar: >= 3x.  When numpy is
  importable it also measures packed counterexample replay
  (``cexsplit.replay_packed``) through the numpy ``MatrixSim`` backend
  against the generic Python bit-transpose — the parallel engine's
  per-round merge hot path — asserting bit identity between the two.

Wall-clock speedup from worker processes requires actual cores the
process may *use*: ``host_cores`` is ``len(os.sched_getaffinity(0))``
(the scheduling mask, which container CPU limits shrink), not
``cpu_count`` (the physical count, which they do not), and the 2x
acceptance bar is only *enforced* when ``host_cores`` covers the largest
worker count.  On an under-provisioned (e.g. single-core) container the
report is still written, but every ``speedup_vs_serial`` field is null
and the summary carries a ``speedup_skip_reason`` — honest numbers over
aspirational ones.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--rows s838 s953 | --rows 2] [--workers 0,2,4] \
        [--out BENCH_parallel.json] [--time-limit SECONDS]

``--rows N`` (a single integer) selects the N largest default rows.
"""

import argparse
import json
import os
import random
import sys
import time

from repro.circuits import row_by_name, table1_suite
from repro.core import check_equivalence_sat_sweep
from repro.core.cexsplit import replay_packed
from repro.netlist import CompiledSim, bit_parallel_eval, build_product
from repro.netlist.simulate import MatrixSim, _numpy

DEFAULT_ROWS = [row.name for row in table1_suite(scales=("small",))]


def host_cores():
    """Cores this process may actually run on (affinity mask, not count).

    ``os.cpu_count`` reports the physical host even inside a CPU-limited
    container; ``sched_getaffinity`` reports the scheduling mask, which is
    what bounds achievable parallel speedup.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def select_rows(tokens):
    """Row names, or a single integer selecting the N largest defaults."""
    if len(tokens) == 1 and tokens[0].isdigit():
        count = int(tokens[0])
        by_size = sorted(DEFAULT_ROWS,
                         key=lambda name: row_by_name(name).pair()[0].num_registers,
                         reverse=True)
        return by_size[:count]
    return list(tokens)


def run_mode(spec, impl, workers, time_limit):
    rounds = []

    def progress(kind, **data):
        if kind == "refinement_round":
            rounds.append(data)

    started = time.perf_counter()
    result = check_equivalence_sat_sweep(
        spec, impl, match_outputs="order", refine_workers=workers,
        time_limit=time_limit, progress=progress,
    )
    seconds = time.perf_counter() - started
    parallel_rounds = [r for r in rounds if r.get("workers")]
    return {
        "workers": workers,
        "seconds": round(seconds, 4),
        "verdict": result.equivalent,
        "classes": result.details.get("classes"),
        "rounds": len(rounds),
        "parallel_rounds": len(parallel_rounds),
        "mean_round_speedup": round(
            sum(r["speedup"] for r in parallel_rounds)
            / len(parallel_rounds), 3) if parallel_rounds else None,
        "solver_constructions": result.details.get(
            "solver_stats", {}).get("solver_constructions"),
    }


def bench_row(name, worker_counts, time_limit, measure_speedup=True):
    spec, impl = row_by_name(name).pair()
    modes = [run_mode(spec, impl, w, time_limit) for w in worker_counts]
    baseline = modes[0]
    for mode in modes[1:]:
        if mode["verdict"] != baseline["verdict"]:
            raise AssertionError(
                "{}: verdict mismatch at workers={} ({} vs {})".format(
                    name, mode["workers"], mode["verdict"],
                    baseline["verdict"]))
        if mode["classes"] != baseline["classes"]:
            raise AssertionError(
                "{}: class-count mismatch at workers={} ({} vs {})".format(
                    name, mode["workers"], mode["classes"],
                    baseline["classes"]))
        # On an under-provisioned host the wall-clock ratio measures
        # scheduler contention, not the engine; record null, not noise.
        mode["speedup_vs_serial"] = round(
            baseline["seconds"] / max(mode["seconds"], 1e-9), 2
        ) if measure_speedup else None
    return {
        "circuit": name,
        "regs": "{}/{}".format(spec.num_registers, impl.num_registers),
        "modes": modes,
    }


def bench_kernel(name, frames=200, width=64, seed=7):
    """Interpreted vs. compiled throughput on one row's product circuit."""
    spec, impl = row_by_name(name).pair()
    circuit = build_product(spec, impl, match_outputs="order").circuit
    sim = CompiledSim(circuit)
    rng = random.Random(seed)
    leaves = list(circuit.inputs) + list(circuit.registers)
    envs = [{net: rng.getrandbits(width) for net in leaves}
            for _ in range(frames)]
    # Warm both paths (topo cache, kernel namespace) before timing.
    bit_parallel_eval(circuit, envs[0], width)
    sim.eval(envs[0], width)
    started = time.perf_counter()
    for env in envs:
        bit_parallel_eval(circuit, env, width)
    interpreted = time.perf_counter() - started
    started = time.perf_counter()
    for env in envs:
        sim.eval(env, width)
    compiled = time.perf_counter() - started
    return {
        "circuit": name,
        "nets": len(circuit.gates),
        "frames": frames,
        "width": width,
        "interpreted_seconds": round(interpreted, 4),
        "compiled_seconds": round(compiled, 4),
        "throughput_ratio": round(interpreted / max(compiled, 1e-9), 2),
    }


def bench_replay(name, patterns=512, frames=2, repeats=10, seed=11):
    """Generic vs. numpy-matrix packed replay on one row's product circuit.

    This is the parallel engine's merge hot path: replaying a whole
    round's counterexample patterns bit-parallel.  The generic path pays
    an ``O(patterns x nets)`` pure-Python transpose; ``MatrixSim`` runs it
    as vectorized ``unpackbits``/``packbits``.  The two results are
    asserted bit-identical before timing counts.
    """
    spec, impl = row_by_name(name).pair()
    circuit = build_product(spec, impl, match_outputs="order").circuit
    csim = CompiledSim(circuit)
    msim = MatrixSim(circuit)
    rng = random.Random(seed)
    n_regs = len(circuit.registers)
    n_ins = len(circuit.inputs)
    batch = [
        (rng.getrandbits(n_regs) if n_regs else 0,
         [rng.getrandbits(n_ins) if n_ins else 0 for _ in range(frames)])
        for _ in range(patterns)
    ]
    if replay_packed(csim, batch) != msim.replay_packed(batch):
        raise AssertionError(
            "{}: matrix replay_packed disagrees with generic".format(name))
    started = time.perf_counter()
    for _ in range(repeats):
        replay_packed(csim, batch)
    generic = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(repeats):
        msim.replay_packed(batch)
    matrix = time.perf_counter() - started
    return {
        "circuit": name,
        "nets": len(circuit.gates),
        "patterns": patterns,
        "frames": frames,
        "generic_seconds": round(generic, 4),
        "matrix_seconds": round(matrix, 4),
        "throughput_ratio": round(generic / max(matrix, 1e-9), 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", nargs="+", default=DEFAULT_ROWS,
                        metavar="NAME|N",
                        help="suite rows, or a single count of the largest")
    parser.add_argument("--workers", default="0,2,4", metavar="LIST",
                        help="comma-separated worker counts (0 = serial)")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path")
    parser.add_argument("--time-limit", type=float, default=300.0,
                        help="per-run SAT sweep time limit (seconds)")
    args = parser.parse_args(argv)

    worker_counts = [int(tok) for tok in args.workers.split(",") if tok != ""]
    if not worker_counts or worker_counts[0] != 0:
        worker_counts = [0] + [w for w in worker_counts if w != 0]
    names = select_rows(args.rows)
    cores = host_cores()
    max_workers = max(worker_counts)
    measure_speedup = cores >= max_workers
    speedup_skip_reason = None
    if not measure_speedup:
        speedup_skip_reason = (
            "host has {} core(s) < {} workers; wall-clock speedup is "
            "meaningless here, so the speedup bar is skipped and "
            "speedup_vs_serial recorded as null".format(cores, max_workers))
        print("WARNING: " + speedup_skip_reason + " (verdict identity is "
              "still checked and per-round telemetry recorded)",
              file=sys.stderr)

    rows = []
    for name in names:
        print("== {}".format(name), flush=True)
        row = bench_row(name, worker_counts, args.time_limit,
                        measure_speedup=measure_speedup)
        for mode in row["modes"]:
            print("   workers={:<2d} {:>8.3f}s  classes={:<4} rounds={} "
                  "constructions={}{}".format(
                      mode["workers"], mode["seconds"], mode["classes"],
                      mode["rounds"], mode["solver_constructions"],
                      "  ({}x vs serial)".format(mode["speedup_vs_serial"])
                      if mode.get("speedup_vs_serial") is not None else ""),
                  flush=True)
        rows.append(row)

    kernel = [bench_kernel(name) for name in names]
    for entry in kernel:
        print("kernel {}: interpreted {}s vs compiled {}s ({}x)".format(
            entry["circuit"], entry["interpreted_seconds"],
            entry["compiled_seconds"], entry["throughput_ratio"]),
            flush=True)

    replay = []
    if _numpy() is not None:
        replay = [bench_replay(name) for name in names]
        for entry in replay:
            print("replay {}: generic {}s vs matrix {}s ({}x)".format(
                entry["circuit"], entry["generic_seconds"],
                entry["matrix_seconds"], entry["throughput_ratio"]),
                flush=True)
    else:
        print("replay: numpy not importable; matrix backend rows skipped "
              "(the compiled fallback is what production runs use here)",
              flush=True)

    serial_total = round(sum(r["modes"][0]["seconds"] for r in rows), 4)
    best = {}
    for w in worker_counts[1:]:
        total = round(sum(
            m["seconds"] for r in rows for m in r["modes"]
            if m["workers"] == w), 4)
        best[str(w)] = {
            "seconds": total,
            "speedup_vs_serial": round(serial_total / max(total, 1e-9), 2)
            if measure_speedup else None,
        }
    min_kernel_ratio = min(e["throughput_ratio"] for e in kernel)
    min_replay_ratio = (min(e["throughput_ratio"] for e in replay)
                        if replay else None)
    summary = {
        "rows": len(rows),
        "host_cores": cores,
        "cpu_count": os.cpu_count() or 1,
        "worker_counts": worker_counts,
        "serial_seconds": serial_total,
        "parallel": best,
        "speedup_bar_enforced": measure_speedup,
        "speedup_skip_reason": speedup_skip_reason,
        "min_kernel_throughput_ratio": min_kernel_ratio,
        "matrix_backend": _numpy() is not None,
        "min_matrix_replay_ratio": min_replay_ratio,
        "verdicts_identical": True,  # bench_row raises otherwise
    }
    report = {"bench": "parallel_refinement", "summary": summary,
              "results": rows, "kernel": kernel, "replay": replay}
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print("\nSerial total {}s; parallel: {}; min kernel ratio {}x; wrote {}"
          .format(serial_total,
                  ", ".join("{}w={}s ({})".format(
                      w, best[w]["seconds"],
                      "{}x".format(best[w]["speedup_vs_serial"])
                      if best[w]["speedup_vs_serial"] is not None
                      else "speedup skipped")
                      for w in sorted(best)) or "n/a",
                  min_kernel_ratio, args.out), flush=True)

    failed = False
    if min_kernel_ratio < 3.0:
        print("WARNING: kernel throughput ratio {}x below the 3x bar".format(
            min_kernel_ratio), file=sys.stderr)
        failed = True
    if min_replay_ratio is not None and min_replay_ratio < 1.5:
        print("WARNING: matrix replay ratio {}x below the 1.5x bar".format(
            min_replay_ratio), file=sys.stderr)
        failed = True
    if best and measure_speedup:
        wall_bar = max(b["speedup_vs_serial"] for b in best.values())
        if wall_bar < 2.0:
            print("WARNING: best wall-clock speedup {}x below the 2x bar"
                  .format(wall_bar), file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
