"""Incremental vs. monolithic SAT refinement on the Table 1 suite.

Standalone script (not a pytest-benchmark module): runs
``check_equivalence_sat_sweep`` twice per row — once with the
solver-per-round baseline (``incremental=False``), once with the
single-solver incremental engine — asserts the verdicts and final class
counts agree, and writes ``BENCH_incremental.json`` with per-row timings
and solver statistics plus a summary (construction ratio, total
wall-clock).  The acceptance bar for the incremental rework: at least 2x
fewer solver constructions and a net wall-clock win across the suite.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        [--rows s298 s386 ...] [--out BENCH_incremental.json] \
        [--time-limit SECONDS]
"""

import argparse
import json
import sys
import time

from repro.circuits import row_by_name, table1_suite
from repro.core import check_equivalence_sat_sweep

DEFAULT_ROWS = [row.name for row in table1_suite(scales=("small",))]


def run_mode(spec, impl, incremental, time_limit):
    started = time.monotonic()
    result = check_equivalence_sat_sweep(
        spec, impl, match_outputs="order", incremental=incremental,
        time_limit=time_limit,
    )
    seconds = time.monotonic() - started
    return {
        "seconds": round(seconds, 4),
        "verdict": result.equivalent,
        "classes": result.details.get("classes"),
        "solver_stats": result.details.get("solver_stats", {}),
    }


def bench_row(name, time_limit):
    spec, impl = row_by_name(name).pair()
    monolithic = run_mode(spec, impl, False, time_limit)
    incremental = run_mode(spec, impl, True, time_limit)
    if incremental["verdict"] != monolithic["verdict"]:
        raise AssertionError(
            "{}: verdict mismatch (incremental={}, monolithic={})".format(
                name, incremental["verdict"], monolithic["verdict"]))
    if incremental["classes"] != monolithic["classes"]:
        raise AssertionError(
            "{}: class-count mismatch (incremental={}, monolithic={})".format(
                name, incremental["classes"], monolithic["classes"]))
    return {
        "circuit": name,
        "regs": "{}/{}".format(spec.num_registers, impl.num_registers),
        "monolithic": monolithic,
        "incremental": incremental,
        "speedup": round(
            monolithic["seconds"] / max(incremental["seconds"], 1e-9), 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", nargs="+", default=DEFAULT_ROWS,
                        metavar="NAME", help="suite rows to run")
    parser.add_argument("--out", default="BENCH_incremental.json",
                        help="output JSON path")
    parser.add_argument("--time-limit", type=float, default=300.0,
                        help="per-run SAT sweep time limit (seconds)")
    args = parser.parse_args(argv)

    rows = []
    for name in args.rows:
        print("== {}".format(name), flush=True)
        row = bench_row(name, args.time_limit)
        print("   monolithic  {:>8.3f}s  constructions={:<4d} conflicts={}"
              .format(row["monolithic"]["seconds"],
                      row["monolithic"]["solver_stats"].get(
                          "solver_constructions", 0),
                      row["monolithic"]["solver_stats"].get("conflicts", 0)),
              flush=True)
        print("   incremental {:>8.3f}s  constructions={:<4d} conflicts={}"
              " (speedup {}x)"
              .format(row["incremental"]["seconds"],
                      row["incremental"]["solver_stats"].get(
                          "solver_constructions", 0),
                      row["incremental"]["solver_stats"].get("conflicts", 0),
                      row["speedup"]),
              flush=True)
        rows.append(row)

    def total(mode, key):
        return sum(r[mode]["solver_stats"].get(key, 0) for r in rows)

    mono_seconds = round(sum(r["monolithic"]["seconds"] for r in rows), 4)
    inc_seconds = round(sum(r["incremental"]["seconds"] for r in rows), 4)
    mono_constructions = total("monolithic", "solver_constructions")
    inc_constructions = total("incremental", "solver_constructions")
    summary = {
        "rows": len(rows),
        "monolithic_seconds": mono_seconds,
        "incremental_seconds": inc_seconds,
        "speedup": round(mono_seconds / max(inc_seconds, 1e-9), 2),
        "monolithic_constructions": mono_constructions,
        "incremental_constructions": inc_constructions,
        "construction_ratio": round(
            mono_constructions / max(inc_constructions, 1), 2),
        "verdicts_identical": True,  # bench_row raises otherwise
    }
    report = {"bench": "incremental_sat_refinement", "summary": summary,
              "results": rows}
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("\nTotal: monolithic {}s vs incremental {}s ({}x); "
          "solver constructions {} -> {} ({}x fewer); wrote {}".format(
              mono_seconds, inc_seconds, summary["speedup"],
              mono_constructions, inc_constructions,
              summary["construction_ratio"], args.out), flush=True)
    if summary["construction_ratio"] < 2.0:
        print("WARNING: construction ratio below the 2x acceptance bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
