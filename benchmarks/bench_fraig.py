"""Sequential FRAIG preprocessing on the Table-1 suite.

Standalone script (not a pytest-benchmark module).  Per row it measures
the three places the sweeping substrate now plugs in:

* **Per-circuit reduction** — ``fraig_reduce`` on the spec and the
  resynthesized impl: AND counts before/after, merges, SAT-query
  telemetry.  Table-1 circuits are largely irredundant after structural
  hashing, so these numbers stay modest — the honest baseline.
* **Unrolled-frame reduction** — where sequential sweeping actually
  bites: the 8-frame unrolling of the product machine, built once
  naively (strash only) and once through :class:`FrameSweeper` (the
  FRAIG-BMC substrate, init state folded to constants, every frame swept
  incrementally through one persistent solver).  The headline metric is
  the percentage of unrolled AND nodes the sweep removes.
* **Verdict identity** — the row is verified with and without
  ``preprocess="fraig"`` and the verdicts must agree exactly; a
  disagreement aborts the benchmark.

The summary counts the rows whose unrolled reduction clears 20%; a run
over four or more rows asserts at least four clear it.

Usage::

    PYTHONPATH=src python benchmarks/bench_fraig.py \
        [--rows s386 s510 ...] [--depth 8] [--out BENCH_fraig.json]
"""

import argparse
import json
import sys
import time

from repro import verify
from repro.circuits import row_by_name
from repro.netlist import build_product
from repro.sweep import FrameSweeper, fraig_reduce, naive_unroll_ands

DEFAULT_ROWS = ["s208", "s298", "s344", "s349", "s382", "s386", "s420",
                "s444"]


def reduce_stats(circuit):
    reduction = fraig_reduce(circuit)
    stats = reduction.stats
    before, after = stats["ands_before"], stats["ands_after"]
    pct = 0.0 if not before else round(100.0 * (before - after) / before, 1)
    return {
        "ands_before": before,
        "ands_after": after,
        "reduction_pct": pct,
        "merges": stats["merges"],
        "sat_queries": stats["sat_queries"],
        "seconds": stats["seconds"],
    }


def unroll_stats(product, depth):
    naive = naive_unroll_ands(product.circuit, depth)
    sweeper = FrameSweeper(product.circuit)
    started = time.monotonic()
    for _ in range(depth):
        lit_of = sweeper.add_frame()
        env = sweeper.outputs_differ(product.output_pairs, lit_of)
        if env is not None:
            raise AssertionError("table-1 product refuted during unrolling")
    seconds = round(time.monotonic() - started, 4)
    swept = sweeper.stats["ands_built"]
    pct = 0.0 if not naive else round(100.0 * (naive - swept) / naive, 1)
    return {
        "depth": depth,
        "ands_naive": naive,
        "ands_swept": swept,
        "reduction_pct": pct,
        "merges": sweeper.stats["merges"],
        "sat_queries": sweeper.stats["sat_queries"],
        "structural_diff_skips": sweeper.stats["structural_diff_skips"],
        "solver_constructions": sweeper.stats["solver_constructions"],
        "seconds": seconds,
    }


def verdict_identity(spec, impl):
    started = time.monotonic()
    direct = verify(spec, impl, match_outputs="order")
    direct_s = round(time.monotonic() - started, 4)
    started = time.monotonic()
    pre = verify(spec, impl, match_outputs="order", preprocess="fraig")
    pre_s = round(time.monotonic() - started, 4)
    if direct.equivalent != pre.equivalent:
        raise AssertionError(
            "verdict changed under preprocessing: {} vs {}".format(
                direct.equivalent, pre.equivalent))
    return {
        "verdict_direct": direct.equivalent,
        "verdict_preprocessed": pre.equivalent,
        "identical": True,
        "seconds_direct": direct_s,
        "seconds_preprocessed": pre_s,
    }


def bench_row(name, depth):
    row = row_by_name(name)
    spec, impl = row.pair()
    product = build_product(spec, impl, match_outputs="order")
    record = {
        "circuit": name,
        "regs": spec.num_registers,
        "spec_reduce": reduce_stats(spec),
        "impl_reduce": reduce_stats(impl),
        "unroll": unroll_stats(product, depth),
        "verdicts": verdict_identity(spec, impl),
    }
    if record["unroll"]["solver_constructions"] != 1:
        raise AssertionError(
            "{}: frame sweep built {} solvers, expected exactly 1".format(
                name, record["unroll"]["solver_constructions"]))
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", nargs="+", default=DEFAULT_ROWS,
                        help="Table-1 row names to bench")
    parser.add_argument("--depth", type=int, default=8,
                        help="unrolling depth for the frame-sweep metric")
    parser.add_argument("--out", default="BENCH_fraig.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    rows = []
    for name in args.rows:
        record = bench_row(name, args.depth)
        print("{:<6} circuit {:>5.1f}%/{:>5.1f}%  unroll@{} {:>6} -> {:>5} "
              "ANDs ({:>5.1f}%)  verdict={} identical".format(
                  record["circuit"],
                  record["spec_reduce"]["reduction_pct"],
                  record["impl_reduce"]["reduction_pct"],
                  args.depth,
                  record["unroll"]["ands_naive"],
                  record["unroll"]["ands_swept"],
                  record["unroll"]["reduction_pct"],
                  record["verdicts"]["verdict_direct"]),
              flush=True)
        rows.append(record)

    rows_ge20 = [r["circuit"] for r in rows
                 if r["unroll"]["reduction_pct"] >= 20.0]
    summary = {
        "rows": len(rows),
        "depth": args.depth,
        "rows_ge20_pct": rows_ge20,
        "rows_ge20": len(rows_ge20),
        "all_verdicts_identical": all(
            r["verdicts"]["identical"] for r in rows),
        "mean_unroll_reduction_pct": round(
            sum(r["unroll"]["reduction_pct"] for r in rows) / len(rows), 1),
    }
    if len(rows) >= 4 and summary["rows_ge20"] < 4:
        raise AssertionError(
            "only {} rows cleared 20% unrolled reduction".format(
                summary["rows_ge20"]))
    print("summary: {}/{} rows >= 20% unrolled reduction (mean {}%), "
          "verdicts identical on all".format(
              summary["rows_ge20"], summary["rows"],
              summary["mean_unroll_reduction_pct"]))

    with open(args.out, "w") as fh:
        json.dump({"benchmark": "fraig", "rows": rows, "summary": summary},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote", args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
