"""E4 — §4 ablation: sequential simulation seeding of T0.

The paper: simulation "results in a better initial approximation ... and
thus reduces the required number of iterations".  Asserted: seeding never
increases the iteration count, and strictly decreases it somewhere.
"""

import pytest

from repro.circuits import row_by_name
from repro.eval import ablation_simulation

from conftest import run_once

ROWS = ["s298", "s386", "s838"]


def test_simulation_reduces_iterations(benchmark):
    rows = [row_by_name(name) for name in ROWS]

    def run():
        return ablation_simulation(rows)

    results = run_once(benchmark, run)
    assert all(r["both_proved"] for r in results)
    for r in results:
        assert r["its_sim"] <= r["its_nosim"], r
    assert any(r["its_sim"] < r["its_nosim"] for r in results)
    benchmark.extra_info["rows"] = {
        r["circuit"]: (r["its_sim"], r["its_nosim"]) for r in results
    }


@pytest.mark.parametrize("use_simulation", [True, False])
def test_simulation_timing(benchmark, suite_pairs, use_simulation):
    from repro.core import VanEijkVerifier

    spec, impl = suite_pairs("s838")

    def run():
        return VanEijkVerifier(use_simulation=use_simulation).verify(
            spec, impl, match_outputs="order"
        )

    result = run_once(benchmark, run)
    assert result.proved
    benchmark.extra_info["iterations"] = result.iterations
