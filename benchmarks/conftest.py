"""Shared helpers for the benchmark harness.

Every benchmark runs its workload once per measurement (``pedantic`` with a
single round) — these are end-to-end verification runs, not microsecond
kernels — and attaches the experiment's observable outcome (verdict,
iterations, node counts, %eqs) to ``benchmark.extra_info`` so the JSON
output regenerates the paper's table columns, not just timings.
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with exactly one warm measurement."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def suite_pairs():
    """Cache of (spec, impl) pairs per suite row name (built once)."""
    from repro.circuits import row_by_name

    cache = {}

    def get(name, optimize_level=2):
        key = (name, optimize_level)
        if key not in cache:
            cache[key] = row_by_name(name).pair(optimize_level=optimize_level)
        return cache[key]

    return get
