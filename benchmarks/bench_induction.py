"""k-induction on correspondence-inconclusive pairs, vs. the traversal oracle.

Standalone script (not a pytest-benchmark module).  Every row is a pair the
SAT correspondence fixed point can NOT close (the script asserts this —
rows the sweep proves are rejected); each is then

* proved by ``check_equivalence_k_induction`` **with** candidate
  strengthening (simulation-seeded invariants),
* proved again with ``strengthen=False`` (plain temporal induction, the
  ``--no-strengthen`` CLI path), and
* cross-checked against the state-space traversal oracle.

Per row the report records the depth each proof closed at, the candidate
counts (initial / surviving / CEGAR-dropped), wall-clock, and the number
of solver constructions — the acceptance bar pins the latter at exactly
**one** per run (one incremental solver per depth schedule).  The summary
asserts strengthening closed at a strictly lower depth than plain
induction on at least one row.

Rows: the hand-built one-hot pairs (ring free/enabled, shift-chain) plus
five fuzz-recipe pairs (retimed and xor-reencoded+retimed random circuits,
the ``fuzz/generate.py`` recipe format) found by scanning for
sweep-inconclusive instances.

Usage::

    PYTHONPATH=src python benchmarks/bench_induction.py \
        [--out BENCH_induction.json] [--max-depth N] [--time-limit SECONDS]
"""

import argparse
import json
import sys
import time

from repro.circuits import onehot_chain_pair, onehot_ring_pair
from repro.core import check_equivalence_sat_sweep
from repro.fuzz.generate import build_pair
from repro.induction import check_equivalence_k_induction
from repro.netlist import build_product
from repro.reach import check_equivalence_traversal

#: Sweep-inconclusive fuzz recipes (scanned offline; seeds pin the pairs).
FUZZ_RECIPES = [
    {"base": {"name": "ih6", "n_regs": 6, "n_inputs": 2, "n_outputs": 1,
              "seed": 5875, "deep_counter_bits": 0, "mixer_width": 0},
     "transforms": [{"kind": "xor_reencode", "pairs": 2, "seed": 107},
                    {"kind": "retime", "moves": 2, "seed": 329}]},
    {"base": {"name": "ih15", "n_regs": 7, "n_inputs": 2, "n_outputs": 1,
              "seed": 14668, "deep_counter_bits": 0, "mixer_width": 0},
     "transforms": [{"kind": "xor_reencode", "pairs": 2, "seed": 260},
                    {"kind": "retime", "moves": 2, "seed": 806}]},
    {"base": {"name": "ih33", "n_regs": 5, "n_inputs": 2, "n_outputs": 1,
              "seed": 32254, "deep_counter_bits": 0, "mixer_width": 0},
     "transforms": [{"kind": "xor_reencode", "pairs": 2, "seed": 566},
                    {"kind": "retime", "moves": 2, "seed": 1760}]},
    {"base": {"name": "ih41", "n_regs": 5, "n_inputs": 4, "n_outputs": 1,
              "seed": 40070, "deep_counter_bits": 0, "mixer_width": 0},
     "transforms": [{"kind": "retime", "moves": 4, "seed": 1278}]},
    {"base": {"name": "ih117", "n_regs": 5, "n_inputs": 2, "n_outputs": 1,
              "seed": 114322, "deep_counter_bits": 0, "mixer_width": 0},
     "transforms": [{"kind": "retime", "moves": 2, "seed": 3634}]},
]


def collect_pairs():
    pairs = [
        ("onehot_ring", "handmade") + onehot_ring_pair(),
        ("onehot_ring_en", "handmade") + onehot_ring_pair(enable=True),
        ("onehot_chain6", "handmade") + onehot_chain_pair(6),
    ]
    for recipe in FUZZ_RECIPES:
        spec, impl = build_pair(recipe)
        kinds = "+".join(t["kind"] for t in recipe["transforms"])
        pairs.append((recipe["base"]["name"], kinds, spec, impl))
    return pairs


def run_induction(spec, impl, strengthen, max_depth, time_limit):
    started = time.monotonic()
    result = check_equivalence_k_induction(
        spec, impl, match_outputs="order", strengthen=strengthen,
        max_depth=max_depth, time_limit=time_limit)
    return result, round(time.monotonic() - started, 4)


def bench_row(name, kind, spec, impl, max_depth, time_limit):
    sweep = check_equivalence_sat_sweep(
        spec, impl, match_outputs="order", time_limit=time_limit)
    if sweep.equivalent is not None:
        raise AssertionError(
            "{}: expected a sweep-inconclusive pair, got {}".format(
                name, sweep.equivalent))

    strong, strong_s = run_induction(spec, impl, True, max_depth, time_limit)
    plain, plain_s = run_induction(spec, impl, False, max_depth, time_limit)
    if not strong.proved:
        raise AssertionError("{}: strengthened induction failed: {}".format(
            name, strong.details))
    if not plain.proved:
        raise AssertionError("{}: plain induction failed: {}".format(
            name, plain.details))
    for label, result in (("strengthened", strong), ("plain", plain)):
        constructions = result.details["solver_stats"]["solver_constructions"]
        if constructions != 1:
            raise AssertionError(
                "{}: {} run built {} solvers, expected exactly 1".format(
                    name, label, constructions))

    oracle = check_equivalence_traversal(
        build_product(spec, impl, match_outputs="order"),
        time_limit=time_limit)
    if oracle.equivalent is not True:
        raise AssertionError("{}: traversal oracle disagrees: {}".format(
            name, oracle.equivalent))

    return {
        "circuit": name,
        "kind": kind,
        "regs": "{}/{}".format(spec.num_registers, impl.num_registers),
        "sweep_inconclusive": True,
        "sweep_iterations": sweep.iterations,
        "depth_strengthened": strong.details["depth"],
        "depth_plain": plain.details["depth"],
        "candidates_initial": strong.details["candidates_initial"],
        "candidates_active": strong.details["candidates_active"],
        "candidates_dropped": strong.details["candidates_dropped"],
        "solver_constructions": 1,
        "sat_queries_strengthened":
            strong.details["solver_stats"]["sat_queries"],
        "sat_queries_plain": plain.details["solver_stats"]["sat_queries"],
        "seconds_strengthened": strong_s,
        "seconds_plain": plain_s,
        "traversal_verdict": oracle.equivalent,
        "traversal_seconds": round(oracle.seconds, 4),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_induction.json",
                        help="output JSON path")
    parser.add_argument("--max-depth", type=int, default=16,
                        help="induction depth bound per run")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-run time limit (seconds)")
    args = parser.parse_args(argv)

    rows = []
    for name, kind, spec, impl in collect_pairs():
        row = bench_row(name, kind, spec, impl, args.max_depth,
                        args.time_limit)
        print("{:<16} [{}] sweep=inconclusive  depth {} (strengthened) vs "
              "{} (plain)  cands {}/{} dropped {}  traversal=proved".format(
                  row["circuit"], row["kind"], row["depth_strengthened"],
                  row["depth_plain"], row["candidates_active"],
                  row["candidates_initial"], row["candidates_dropped"]),
              flush=True)
        rows.append(row)

    depth_wins = [r["circuit"] for r in rows
                  if r["depth_strengthened"] < r["depth_plain"]]
    summary = {
        "rows": len(rows),
        "all_sweep_inconclusive": True,  # bench_row raises otherwise
        "all_proved_by_induction": True,
        "all_traversal_confirmed": True,
        "solver_constructions_per_run": 1,
        "strengthening_lowered_depth_on": depth_wins,
        "max_depth_strengthened": max(r["depth_strengthened"] for r in rows),
        "max_depth_plain": max(r["depth_plain"] for r in rows),
        "total_seconds_strengthened": round(
            sum(r["seconds_strengthened"] for r in rows), 4),
        "total_seconds_plain": round(
            sum(r["seconds_plain"] for r in rows), 4),
    }
    report = {"bench": "k_induction", "summary": summary, "results": rows}
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("\n{} rows proved by induction (traversal-confirmed); "
          "strengthening lowered the proof depth on {}; wrote {}".format(
              len(rows), ", ".join(depth_wins) or "no row", args.out),
          flush=True)

    if not depth_wins:
        print("WARNING: strengthening lowered the proof depth on no row",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
