"""E10 — substrate microbenchmarks: symbolic image computation and
reachability (the baseline's inner loop)."""

import pytest

from repro.circuits import generate_benchmark
from repro.reach import TransitionSystem, approximate_reachable, symbolic_reachability


@pytest.fixture(scope="module")
def medium_circuit():
    return generate_benchmark("reach_bench", n_regs=18, n_inputs=4, seed=5)


def test_transition_system_construction(benchmark, medium_circuit):
    def run():
        ts = TransitionSystem(medium_circuit)
        return ts.manager.live_nodes

    nodes = benchmark(run)
    assert nodes > 0


def test_single_image(benchmark, medium_circuit):
    ts = TransitionSystem(medium_circuit)
    init = ts.initial_states()

    def run():
        return ts.image(init)

    image = benchmark(run)
    assert image != ts.manager.false


def test_full_reachability(benchmark, medium_circuit):
    def run():
        ts = TransitionSystem(medium_circuit)
        reached, rings, iterations = symbolic_reachability(
            ts, max_iterations=400
        )
        return iterations

    iterations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert iterations >= 1


def test_approximate_reachability(benchmark, medium_circuit):
    ts = TransitionSystem(medium_circuit)

    def run():
        return approximate_reachable(ts, max_block=6)

    approx = benchmark.pedantic(run, rounds=1, iterations=1)
    assert approx != ts.manager.false
