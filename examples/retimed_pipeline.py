"""Verifying a synthesized pipeline: the paper's workload, end to end.

Builds a small pipelined datapath controller, pushes it through the
synthesis pipeline (retiming + aggressive combinational optimization — the
``script.rugged`` stand-in), then verifies original vs. synthesized with
both engines and compares their costs.  Finally a bug is injected and both
engines refute it, with a replayable counterexample.

Run:  python examples/retimed_pipeline.py
"""

import time

from repro import verify
from repro.netlist import Circuit, GateType, bit_parallel_eval, build_product
from repro.transform import inject_distinguishable_fault, synthesize


def build_pipeline():
    """Two-stage pipeline: stage 1 decodes, stage 2 accumulates parity."""
    c = Circuit("pipeline")
    for name in ("op0", "op1", "data"):
        c.add_input(name)
    # Stage 1: decode the operation.
    c.add_gate("nop0", GateType.NOT, ["op0"])
    c.add_gate("nop1", GateType.NOT, ["op1"])
    c.add_gate("is_add", GateType.AND, ["op0", "nop1"])
    c.add_gate("is_clr", GateType.AND, ["nop0", "op1"])
    c.add_register("r_add", "is_add", init=False)
    c.add_register("r_clr", "is_clr", init=False)
    c.add_register("r_data", "data", init=False)
    # Stage 2: accumulator with clear.
    c.add_gate("acc_in", GateType.AND, ["r_add", "r_data"])
    c.add_gate("acc_x", GateType.XOR, ["acc", "acc_in"])
    c.add_gate("nclr", GateType.NOT, ["r_clr"])
    c.add_gate("acc_next", GateType.AND, ["acc_x", "nclr"])
    c.add_register("acc", "acc_next", init=False)
    c.add_gate("busy", GateType.OR, ["r_add", "r_clr"])
    c.add_output("acc")
    c.add_output("busy")
    return c.validate()


def replay(product, trace):
    circuit = product.circuit
    state = {name: reg.init for name, reg in circuit.registers.items()}
    values = None
    for frame in trace.full_sequence():
        env = {net: int(bool(frame.get(net, False))) for net in circuit.inputs}
        env.update({net: int(v) for net, v in state.items()})
        values = bit_parallel_eval(circuit, env, 1)
        state = {name: bool(values[reg.data_in])
                 for name, reg in circuit.registers.items()}
    return [(s, values[s], i, values[i]) for s, i in product.output_pairs
            if values[s] != values[i]]


def main():
    spec = build_pipeline()
    impl = synthesize(spec, retime_moves=4, optimize_level=2, seed=7)
    print("spec:", spec)
    print("impl:", impl, "(retimed + optimized, names destroyed)")

    for method in ("van_eijk", "traversal"):
        t0 = time.monotonic()
        result = verify(spec, impl, method=method)
        print("{:>10}: {} in {:.3f}s".format(
            method, "EQUIVALENT" if result.proved else result.equivalent,
            time.monotonic() - t0))

    # Now break the implementation and watch both engines catch it.
    buggy, what = inject_distinguishable_fault(impl, seed=3)
    print("\ninjected fault:", what)
    for method in ("van_eijk", "traversal"):
        result = verify(spec, buggy, method=method)
        print("{:>10}: {}".format(method, result))
        if result.refuted:
            product = build_product(spec, buggy, match_outputs="order")
            mismatches = replay(product, result.counterexample)
            print("           replayed counterexample, differing outputs:",
                  mismatches)


if __name__ == "__main__":
    main()
