"""The method's limits (§6) and its rescue hatches (§3).

Signal correspondence is sound but incomplete: some equivalent pairs need
invariants that are not conjunctions of signal equivalences.  This example
walks the one-hot ring family:

* a free-running one-hot ring is beyond the bare fixed point, but retiming
  augmentation recovers it (the augmented signals rotate the invariant);
* an enable-gated ring defeats the whole Fig. 4 loop, and is rescued by
  strengthening the correspondence condition with reachable-state don't
  cares, or by falling back to the traversal baseline.

Run:  python examples/incompleteness_and_fallback.py
"""

from repro import verify
from repro.circuits import onehot_ring_pair


def show(label, result):
    verdict = {True: "EQUIVALENT", False: "INEQUIVALENT", None: "undecided"}
    print("  {:<38} -> {}".format(label, verdict[result.equivalent]))


def main():
    print("free-running one-hot ring vs constant 1:")
    spec, impl = onehot_ring_pair(enable=False)
    show("bare fixed point (no retiming)",
         verify(spec, impl, use_retiming=False))
    show("with retiming augmentation",
         verify(spec, impl, use_retiming=True, max_retiming_rounds=4))

    print("\nenable-gated one-hot ring vs constant 1:")
    spec, impl = onehot_ring_pair(enable=True)
    show("full Fig. 4 method", verify(spec, impl, max_retiming_rounds=6))
    show("Q strengthened with exact reach (§3)",
         verify(spec, impl, use_retiming=False, reach_bound="exact"))
    show("fallback: symbolic traversal", verify(spec, impl,
                                                method="traversal"))
    print("\nThe method never *refutes* an equivalent pair — undecided")
    print("means 'use it as a preprocessing step for a complete method',")
    print("exactly as the paper's conclusion suggests.")


if __name__ == "__main__":
    main()
