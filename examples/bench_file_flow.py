"""A tool-style flow over circuit files: generate, synthesize, write
``.bench``/BLIF, re-read, verify, and diagnose a failing pair.

Run:  python examples/bench_file_flow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import verify
from repro.circuits import generate_benchmark
from repro.netlist import bench, blif
from repro.transform import inject_distinguishable_fault, synthesize


def main():
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro_flow_")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    print("working in", workdir)

    spec = generate_benchmark("demo", n_regs=12, n_inputs=4, seed=42)
    impl = synthesize(spec, retime_moves=3, optimize_level=2, seed=43)

    spec_path = workdir / "demo.bench"
    impl_path = workdir / "demo_opt.bench"
    blif_path = workdir / "demo.blif"
    bench.dump(spec, spec_path)
    bench.dump(impl, impl_path)
    blif.dump(spec, blif_path)
    print("wrote", spec_path.name, impl_path.name, blif_path.name)

    spec_again = bench.load(spec_path)
    impl_again = bench.load(impl_path)
    result = verify(spec_again, impl_again)
    print("round-tripped verification:", result)
    assert result.proved

    # BLIF round trip agrees too.
    spec_blif = blif.load(blif_path, name="demo")
    assert verify(spec_blif, impl_again, match_inputs="name").proved
    print("BLIF round trip agrees")

    # A deliberately broken implementation: counterexample diagnosis.
    buggy, what = inject_distinguishable_fault(impl, seed=5)
    bench.dump(buggy, workdir / "demo_buggy.bench")
    result = verify(spec, buggy)
    print("buggy implementation ({}):".format(what), result)
    if result.refuted:
        trace = result.counterexample
        print("distinguishing input sequence ({} frames):".format(
            trace.length))
        for t, frame in enumerate(trace.full_sequence()):
            bits = "".join(str(int(frame[n])) for n in sorted(frame))
            print("  t={:>2}  inputs={}".format(t, bits))


if __name__ == "__main__":
    main()
