"""Quickstart: verify the paper's Fig. 2 example in a few lines.

Run:  python examples/quickstart.py
"""

from repro import verify
from repro.circuits import fig2_pair
from repro.core import compute_fixpoint
from repro.core.timeframe import TimeFrame
from repro.netlist import bench, build_product


def main():
    spec, impl = fig2_pair()
    print("specification:", spec)
    print("implementation:", impl)
    print()
    print(bench.dumps(spec))

    # One call does everything: product machine, simulation seeding,
    # greatest fixed point, retiming augmentation if needed.
    result = verify(spec, impl)
    print("verdict:", result)
    print("signals with an implementation partner: {:.0f}%".format(
        result.details["eqs_percent"]))
    print()

    # Look inside: the maximum signal correspondence relation.
    product = build_product(spec, impl, match_outputs="order")
    frame = TimeFrame(product.circuit.copy())
    fix = compute_fixpoint(frame, frame.build_signal_functions())
    print("equivalence classes found in {} iteration(s):".format(
        fix.iterations))
    for cls in fix.partition.classes:
        nets = sorted(net for fn in cls for net, _ in fn.members)
        if len(nets) > 1:
            print("  ", nets)
    # The paper's classes: {v3, v6} (the retimed AND corresponds to the
    # register) and {v4, v7} (the outputs), with condition v1·v2 == v6.


if __name__ == "__main__":
    main()
