"""AIG flow: AIGER export, SAT sweeping (fraig) and the modern-CEC view.

The paper's fixed point collapsed to one time frame *is* combinational SAT
sweeping — the kernel of today's fraig-based equivalence checkers.  This
example shows that lineage concretely: a combinational circuit and its
aggressively optimized version are merged into one AIG, swept, and the
miter output folds to constant 0.

Run:  python examples/aig_flow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro.cec import check_comb_equivalence
from repro.circuits import generate_benchmark
from repro.netlist.aig import dumps_aag, fraig, from_circuit, loads_aag
from repro.transform import optimize, sweep


def main():
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro_aig_")
    )
    workdir.mkdir(parents=True, exist_ok=True)

    # A combinational workload: a generated benchmark with registers cut
    # away (treat register outputs as free inputs).
    seq = generate_benchmark("aigdemo", n_regs=10, n_inputs=4, seed=31)
    comb = seq.copy()
    for name, reg in list(comb.registers.items()):
        comb.registers.pop(name)
        comb.inputs.append(name)
    comb._topo_cache = None
    comb = sweep(comb)
    comb.validate()
    impl = optimize(comb, level=2, seed=32)
    print("spec:", comb)
    print("impl:", impl)

    # 1. AIG conversion and AIGER round trip.
    aig, _ = from_circuit(comb)
    print("AIG:", aig)
    aag_path = workdir / "spec.aag"
    aag_path.write_text(dumps_aag(aig))
    again = loads_aag(aag_path.read_text())
    assert again.num_ands == aig.num_ands
    print("wrote and re-read", aag_path.name)

    # 2. Sweeping compresses redundancy (most visible on the miter, where
    # every impl node has a spec twin to merge with).
    reduced, _ = fraig(aig)
    print("fraig on spec alone: {} -> {} AND nodes".format(
        aig.num_ands, reduced.num_ands))

    # 3. The fraig backend as a CEC engine, against the other two.
    for backend in ("bdd", "sat", "fraig"):
        result = check_comb_equivalence(comb, impl, backend=backend)
        print("{:>6}: {} {}".format(
            backend, result,
            result.stats if backend == "fraig" else ""))
        assert result.equivalent
    print("(the fraig miter folded every node: equivalence by sweeping)")


if __name__ == "__main__":
    main()
