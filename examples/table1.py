"""Regenerate the paper's Table 1.

Runs both engines over the benchmark suite and prints the same columns the
paper reports.  By default only the 'small' rows run (seconds each); pass
``--scales small medium large`` for the full table — the large rows are
where traversal times out and where the mixer circuits exhaust the
proposed method's node budget, reproducing the paper's blank cells.

Run:  python examples/table1.py [--scales small medium large]
      python examples/table1.py --quick          # three representative rows
"""

import argparse

from repro.circuits import table1_suite, row_by_name
from repro.eval import render_table1, run_table


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scales", nargs="+", default=["small"],
                        choices=["small", "medium", "large"])
    parser.add_argument("--quick", action="store_true",
                        help="three representative rows only")
    parser.add_argument("--optimize-level", type=int, default=2)
    parser.add_argument("--traversal-time-limit", type=float, default=60.0)
    parser.add_argument("--proposed-time-limit", type=float, default=300.0)
    args = parser.parse_args()

    if args.quick:
        rows = [row_by_name(n) for n in ("s298", "s386", "s838")]
    else:
        rows = table1_suite(scales=tuple(args.scales))
    print("running {} row(s)...".format(len(rows)))
    results = run_table(
        rows,
        optimize_level=args.optimize_level,
        traversal_time_limit=args.traversal_time_limit,
        proposed_time_limit=args.proposed_time_limit,
    )
    print()
    print(render_table1(results))
    print()
    eqs = [r.eqs_percent for r in results if r.eqs_percent is not None]
    if eqs:
        print("average eqs: {:.0f}%".format(sum(eqs) / len(eqs)))
    solved = sum(1 for r in results if r.proposed.proved)
    trav_solved = sum(
        1 for r in results if r.traversal is not None and r.traversal.proved
    )
    print("proposed method proved {}/{}; traversal proved {}/{}".format(
        solved, len(results), trav_solved, len(results)))


if __name__ == "__main__":
    main()
