"""Command-line interface: ``repro-sec`` / ``python -m repro``.

Subcommands::

    repro-sec verify spec.bench impl.bench [--method van_eijk] [--json]
    repro-sec verify spec.bench impl.bench --portfolio
    repro-sec batch [--rows s386 s510 | --scales small] [--workers 4]
    repro-sec fuzz [--iterations 200] [--seed 0] [--corpus-dir tests/corpus]
    repro-sec table1 [--scales small medium] [--optimize-level 2]
    repro-sec info circuit.bench
    repro-sec serve [--host 127.0.0.1] [--port 8439] [--workers 2]
    repro-sec serve --coordinator [--dead-after 6]
    repro-sec serve --join http://coordinator:8440 [--node-id w1]
    repro-sec remote {verify,status,cancel,watch,stats} --server URL ...
    repro-sec cache [--stats | --prune | --clear] [--cache-dir DIR]

``batch``, ``fuzz`` and ``table1`` accept ``--server URL`` to route their
jobs through a running ``repro-sec serve`` daemon instead of a local
scheduler (see ``docs/SERVER.md``); ``URL`` may be a comma-separated
endpoint list, and a fleet coordinator endpoint (``serve --coordinator``,
see ``docs/FLEET.md``) is preferred automatically.

Circuit files are ``.bench``, BLIF (``.blif``), AIGER ascii (``.aag``) or
AIGER binary (``.aig``), dispatched by extension; anything else is
rejected with the supported list.  ``--json`` prints the shared
machine-readable serialization (:meth:`repro.reach.SecResult.as_dict`)
used by the service cache and event stream.  ``verify`` and ``fuzz``
accept ``--cross-check`` to compare verdicts against ABC/yosys when those
binaries are installed (skipped with a logged reason when not — see
``docs/FORMATS.md``).
"""

import argparse
import json
import sys

from . import METHODS, verify


def _load_circuit(path):
    """Load any supported circuit format, dispatched by extension.

    Unknown extensions and malformed files exit with status 2 and a
    message naming the supported extensions, instead of a traceback.
    """
    from .errors import ParseError
    from .interop.formats import load_circuit

    try:
        return load_circuit(path)
    except ParseError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        raise SystemExit(2)
    except FileNotFoundError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        raise SystemExit(2)


def _print_result_text(result):
    print(result)
    if result.refuted and result.counterexample is not None:
        print("counterexample ({} frames):".format(
            result.counterexample.length))
        for i, frame in enumerate(result.counterexample.full_sequence()):
            assignment = " ".join(
                "{}={}".format(net, int(value))
                for net, value in sorted(frame.items())
            )
            print("  t={}: {}".format(i, assignment))
    if result.details:
        for key, value in sorted(result.details.items()):
            print("  {}: {}".format(key, value))


def _result_exit_code(result):
    return 0 if result.proved else (2 if result.refuted else 1)


#: Engines whose check functions accept the service-layer ``progress`` hook.
_PROGRESS_METHODS = ("van_eijk", "sat_sweep", "fraig_sweep", "bmc",
                     "traversal", "k_induction", "sweep_induct")

#: CLI spellings accepted by ``--engine`` beyond the canonical METHODS names.
_ENGINE_ALIASES = {
    "induction": "k_induction",
    "sat_sweep+induction": "sweep_induct",
    "sat_sweep_induction": "sweep_induct",
}


def _resolve_engine(name):
    """Map an ``--engine`` spelling to a METHODS entry, or raise ValueError
    with a message listing every valid engine name."""
    normalized = name.strip().lower().replace("-", "_")
    normalized = _ENGINE_ALIASES.get(normalized, normalized)
    if normalized in METHODS:
        return normalized
    raise ValueError(
        "unknown engine {!r}; valid engines: {}".format(
            name, ", ".join(METHODS)))


def _cmd_verify(args):
    from .service import EventBus, JsonlEventWriter, LiveRenderer
    from .service.events import JOB_PROGRESS

    if args.engine:
        try:
            args.method = _resolve_engine(args.engine)
        except ValueError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return 2
    spec = _load_circuit(args.spec)
    impl = _load_circuit(args.impl)
    bus = EventBus()
    if not args.json:
        bus.subscribe(LiveRenderer(verbose=args.verbose))
    writer = None
    if args.events:
        writer = JsonlEventWriter(args.events)
        bus.subscribe(writer)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.portfolio:
            from .service import run_portfolio

            preprocess_info = None
            if args.preprocess:
                from .sweep import preprocess_pair

                spec, impl, preprocess_info = preprocess_pair(
                    spec, impl, passes=args.preprocess)
            result = run_portfolio(
                spec, impl,
                time_limit=args.time_limit,
                match_inputs=args.match_inputs,
                match_outputs=args.match_outputs,
                bus=bus,
            )
            if preprocess_info is not None:
                from .sweep import attach_preprocess_details

                attach_preprocess_details(result, preprocess_info)
        else:
            options = {}
            if args.method == "van_eijk":
                options.update(
                    use_simulation=not args.no_simulation,
                    use_fundeps=not args.no_fundeps,
                    use_retiming=not args.no_retiming,
                )
                if args.reach_bound:
                    options["reach_bound"] = args.reach_bound
                if args.time_limit:
                    options["time_limit"] = args.time_limit
                if args.node_limit:
                    options["node_limit"] = args.node_limit
            elif args.method == "sat_sweep":
                options["incremental"] = not args.no_incremental
                if args.refine_workers:
                    options["refine_workers"] = args.refine_workers
                if args.refine_batch:
                    options["refine_batch"] = args.refine_batch
                if args.sim_backend != "auto":
                    options["sim_backend"] = args.sim_backend
                if args.time_limit:
                    options["time_limit"] = args.time_limit
            elif args.method == "fraig_sweep":
                if args.refine_workers:
                    options["refine_workers"] = args.refine_workers
                if args.refine_batch:
                    options["refine_batch"] = args.refine_batch
                if args.sim_backend != "auto":
                    options["sim_backend"] = args.sim_backend
                if args.fraig_race:
                    options["race_workers"] = args.fraig_race
                if args.time_limit:
                    options["time_limit"] = args.time_limit
            elif args.method == "traversal":
                if args.time_limit:
                    options["time_limit"] = args.time_limit
                if args.node_limit:
                    options["node_limit"] = args.node_limit
            elif args.method == "bmc":
                options["max_depth"] = args.max_depth
                if args.fraig_frames:
                    options["fraig_frames"] = True
                if args.time_limit:
                    options["time_limit"] = args.time_limit
            elif args.method in ("k_induction", "sweep_induct"):
                options["max_depth"] = args.max_depth
                options["strengthen"] = not args.no_strengthen
                if args.method == "sweep_induct":
                    options["fallback"] = not args.no_fallback
                if args.time_limit:
                    options["time_limit"] = args.time_limit
            if args.method in _PROGRESS_METHODS and (args.verbose
                                                     or args.events):
                job_name = spec.name or "verify"

                def progress(kind, **data):
                    data["kind"] = kind
                    bus.emit(JOB_PROGRESS, job=job_name, **data)

                options["progress"] = progress
            if args.preprocess:
                options["preprocess"] = args.preprocess
            result = verify(spec, impl, method=args.method,
                            match_inputs=args.match_inputs,
                            match_outputs=args.match_outputs, **options)
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print("profile: pstats dumped to {}".format(args.profile),
                  file=sys.stderr)
        if writer is not None:
            writer.close()
    cross = None
    if args.cross_check:
        from .interop.oracle import cross_check

        cross = cross_check(spec, impl, result.equivalent)
    if args.json:
        payload = result.as_dict()
        payload["spec"] = str(args.spec)
        payload["impl"] = str(args.impl)
        if cross is not None:
            payload["cross_check"] = {
                "ran": cross["ran"],
                "skipped_reason": cross["skipped_reason"],
                "verdicts": [v.to_dict() for v in cross["verdicts"]],
                "agreements": cross["agreements"],
                "disagreements": cross["disagreements"],
            }
        print(json.dumps(payload, sort_keys=True))
    else:
        _print_result_text(result)
        if cross is not None:
            _print_cross_check(cross)
    return _result_exit_code(result)


def _print_cross_check(cross):
    if not cross["ran"]:
        print("cross-check: skipped ({})".format(cross["skipped_reason"]))
        return
    for verdict in cross["verdicts"]:
        state = {True: "equivalent", False: "NOT equivalent",
                 None: "inconclusive"}[verdict.verdict]
        marker = ""
        if verdict.tool in cross["disagreements"]:
            marker = "  << DISAGREES with our verdict"
        elif verdict.tool in cross["agreements"]:
            marker = "  (agrees)"
        print("cross-check: {} -> {} [{:.2f}s] {}{}".format(
            verdict.tool, state, verdict.elapsed, verdict.reason, marker))


def _cmd_batch(args):
    from .circuits import row_by_name, table1_suite
    from .service import (BatchScheduler, EventBus, JobSpec,
                          JsonlEventWriter, LiveRenderer, ResultCache)

    if args.rows:
        try:
            rows = [row_by_name(name) for name in args.rows]
        except KeyError as exc:
            known = ", ".join(row.name for row in table1_suite())
            print("error: unknown suite row {} (choices: {})".format(
                exc, known), file=sys.stderr)
            return 1
    else:
        rows = table1_suite(scales=tuple(args.scales))
    options = {}
    if args.method in ("sat_sweep", "fraig_sweep"):
        if args.refine_workers:
            options["refine_workers"] = args.refine_workers
        if args.refine_batch:
            options["refine_batch"] = args.refine_batch
        if args.sim_backend != "auto":
            options["sim_backend"] = args.sim_backend
    if args.fraig_race and args.method == "fraig_sweep":
        options["race_workers"] = args.fraig_race
    if args.preprocess:
        options["preprocess"] = args.preprocess
    jobs = []
    for row in rows:
        spec, impl = row.pair(optimize_level=args.optimize_level)
        jobs.append(JobSpec(row.name, spec, impl, method=args.method,
                            options=dict(options),
                            tags={"scale": row.scale}))
    if args.preprocess and not args.server:
        # Reduce before the scheduler computes cache keys (the daemon does
        # the same server-side); a --preprocess run and a direct run on the
        # identical reduced pair share one cache entry.
        from .sweep import preprocess_jobspec

        jobs = [preprocess_jobspec(job)[0] for job in jobs]
    bus = EventBus()
    if not args.json:
        bus.subscribe(LiveRenderer(verbose=args.verbose))
    writer = None
    if args.events:
        writer = JsonlEventWriter(args.events)
        bus.subscribe(writer)
    if args.server:
        from .client import RemoteScheduler

        scheduler = RemoteScheduler(args.server, bus=bus)
    else:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        scheduler = BatchScheduler(
            workers=args.workers,
            cache=cache,
            bus=bus,
            retries=args.retries,
            fallback_method=args.fallback,
            no_fallback=args.no_fallback,
            job_time_limit=args.time_limit,
            total_time_limit=args.total_time_limit,
            node_limit=args.node_limit,
        )
    try:
        results = scheduler.run(jobs)
    except KeyboardInterrupt:
        # Workers are already terminated by the scheduler's cleanup path.
        print("\nbatch: interrupted", file=sys.stderr)
        return 130
    finally:
        if writer is not None:
            writer.close()
    if getattr(scheduler, "interrupted", None):
        # The scheduler's signal handlers already cancelled the workers
        # gracefully and flushed the event stream.
        print("\nbatch: interrupted ({})".format(scheduler.interrupted),
              file=sys.stderr)
        return 130
    if args.json:
        print(json.dumps([r.as_dict() for r in results], sort_keys=True))
    if any(r.verdict is False for r in results):
        return 2
    if any(r.verdict is None for r in results):
        return 1
    return 0


def _cmd_fuzz(args):
    from .fuzz import DifferentialFuzzer
    from .service import EventBus, JsonlEventWriter, ResultCache

    bus = EventBus()
    if not args.json:
        bus.subscribe(_FuzzNarrator(verbose=args.verbose))
    writer = None
    if args.events:
        writer = JsonlEventWriter(args.events)
        bus.subscribe(writer)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    scheduler = None
    if args.server:
        from .client import RemoteScheduler

        scheduler = RemoteScheduler(args.server, bus=bus)
    fuzzer = DifferentialFuzzer(
        seed=args.seed,
        engines=args.engines,
        workers=args.workers,
        corpus_dir=args.corpus_dir or None,
        bus=bus,
        cache=cache,
        job_time_limit=args.time_limit,
        scheduler=scheduler,
        cross_check=args.cross_check,
        datapath_probability=args.datapath_probability,
    )
    try:
        report = fuzzer.run(iterations=args.iterations,
                            time_budget=args.time_budget)
    except KeyboardInterrupt:
        print("\nfuzz: interrupted", file=sys.stderr)
        return 130
    finally:
        if writer is not None:
            writer.close()
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    else:
        _print_fuzz_summary(report)
    return 0 if report.clean else 2


class _FuzzNarrator:
    """Terse per-event progress lines for interactive fuzz runs."""

    def __init__(self, verbose=False):
        self.verbose = verbose

    def __call__(self, event):
        data = event.data
        if event.type == "fuzz_started":
            print("fuzz: seed={} iterations={} engines={}".format(
                data["seed"], data["iterations"],
                ",".join(data["engines"])))
        elif event.type == "fuzz_case_finished" and self.verbose:
            verdicts = " ".join(
                "{}={}".format(m, {True: "eq", False: "neq", None: "?"}[v])
                for m, v in sorted(data["verdicts"].items()))
            print("  {} expected={} {} ({:.2f}s)".format(
                event.job, data["expected"], verdicts, data["seconds"]))
        elif event.type == "fuzz_disagreement":
            print("  DISAGREEMENT {} {} methods={}".format(
                event.job, data["kind"], ",".join(data["methods"])))
        elif event.type == "fuzz_shrunk":
            print("  shrunk {}: size {} -> {} ({} evaluations)".format(
                event.job, data["size_from"], data["size_to"],
                data["evaluations"]))
        elif event.type == "fuzz_corpus_saved":
            print("  corpus {} {} ({})".format(
                data["entry"], data["path"],
                "new" if data["new"] else "duplicate"))
        elif event.type == "fuzz_cross_check_skipped":
            print("  cross-check skipped: {}".format(data["reason"]))
        elif event.type == "fuzz_cross_check" and self.verbose:
            verdicts = " ".join(
                "{}={}".format(v["tool"],
                               {True: "eq", False: "neq", None: "?"}[
                                   v["verdict"]])
                for v in data["verdicts"])
            print("  {} cross-check ours={} {}".format(
                event.job, data["ours"], verdicts))


def _print_fuzz_summary(report):
    data = report.as_dict()
    print("fuzz: {} cases in {:.1f}s ({} skipped, stopped by {})".format(
        data["cases_run"], data["seconds"], data["cases_skipped"],
        data["stopped"]))
    for method, tally in sorted(data["verdicts"].items()):
        print("  {}: proved={} refuted={} undecided={}".format(
            method, tally["proved"], tally["refuted"], tally["undecided"]))
    print("  refutations replay-validated: {}".format(
        data["refutations_validated"]))
    if report.clean:
        print("  no disagreements")
    else:
        print("  FINDINGS: {}".format(len(data["findings"])))
        for finding in data["findings"]:
            print("    {} case={} methods={}".format(
                finding["kind"], finding["case"],
                ",".join(finding["methods"])))
        if data["corpus_written"]:
            print("  corpus entries written: {}".format(
                len(data["corpus_written"])))


def _cmd_table1(args):
    from .circuits import table1_suite
    from .eval import render_table1, run_table

    scheduler = None
    if args.server:
        from .client import RemoteScheduler

        scheduler = RemoteScheduler(args.server)
    rows = table1_suite(scales=tuple(args.scales))
    results = run_table(
        rows,
        workers=args.workers,
        scheduler=scheduler,
        optimize_level=args.optimize_level,
        traversal_time_limit=args.traversal_time_limit,
        proposed_time_limit=args.proposed_time_limit,
    )
    print(render_table1(results))
    return 0


def _cmd_serve(args):
    from .server import serve
    from .service import EventBus, JsonlEventWriter, LiveRenderer

    if args.coordinator and args.join:
        print("serve: --coordinator and --join are mutually exclusive",
              file=sys.stderr)
        return 2
    bus = EventBus()
    if not args.quiet:
        bus.subscribe(LiveRenderer(verbose=args.verbose))
    writer = None
    if args.events:
        writer = JsonlEventWriter(args.events)
        bus.subscribe(writer)
    try:
        if args.coordinator:
            from .fleet import serve_coordinator

            return serve_coordinator(
                host=args.host,
                port=args.port,
                store_dir=args.store_dir,
                cache_dir=None if args.no_cache else args.cache_dir,
                cache_max_entries=args.cache_max_entries,
                cache_max_bytes=args.cache_max_bytes,
                queue_limit=args.queue_limit,
                rate=args.rate,
                burst=args.burst,
                dead_after=args.dead_after,
                heartbeat_interval=args.heartbeat,
                ready_file=args.ready_file,
                bus=bus,
            )
        trusted = list(args.trusted_proxy or ())
        remote_cache_url = args.cache_url
        if args.join:
            import urllib.parse

            joined = urllib.parse.urlsplit(args.join)
            if joined.hostname and joined.hostname not in trusted:
                # The coordinator proxies client traffic to this node:
                # trust its X-Forwarded-For so rate limiting buckets by
                # the real downstream client.
                trusted.append(joined.hostname)
            if remote_cache_url is None and not args.no_remote_cache:
                remote_cache_url = args.join
        return serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            store_dir=args.store_dir,
            cache_dir=None if args.no_cache else args.cache_dir,
            cache_max_entries=args.cache_max_entries,
            cache_max_bytes=args.cache_max_bytes,
            queue_limit=args.queue_limit,
            job_time_limit=args.time_limit,
            refine_workers=args.refine_workers,
            rate=args.rate,
            burst=args.burst,
            ready_file=args.ready_file,
            node_id=args.node_id,
            join_url=args.join,
            advertise_host=args.advertise_host,
            heartbeat_interval=args.heartbeat,
            trusted_proxies=trusted,
            remote_cache_url=remote_cache_url,
            bus=bus,
        )
    finally:
        if writer is not None:
            writer.close()


def _remote_client(args):
    from .client import ServerClient

    return ServerClient(args.server)


def _watch_events(client, job_id, json_mode):
    """Stream a job's SSE events to completion; returns the final record."""
    from .service import LiveRenderer
    from .service.events import Event

    renderer = None if json_mode else LiveRenderer(verbose=True)
    for payload in client.events(job_id):
        if payload.get("type") == "done":
            return payload["record"]
        if renderer is not None:
            renderer(Event.from_dict(payload))
        elif json_mode == "events":
            print(json.dumps(payload, sort_keys=True))
    # Stream ended without a terminal event (daemon shut down mid-job).
    return client.job(job_id)


def _remote_record_exit(record, json_mode):
    from .client import remote_job_result

    job_result = remote_job_result(record)
    if json_mode:
        print(json.dumps(record, sort_keys=True))
    else:
        print("job {}: {} ({}{})".format(
            record["id"], record["state"],
            {True: "proved", False: "REFUTED", None: "undecided"}[
                job_result.verdict],
            ", cached" if job_result.cached else ""))
        if job_result.result is not None:
            _print_result_text(job_result.result)
        elif record.get("error"):
            print("  error: {}".format(record["error"]))
    if record["state"] == "cancelled":
        return 3
    if record["state"] == "error":
        return 1
    result = job_result.result
    return _result_exit_code(result) if result is not None else 1


def _cmd_remote(args):
    from .client import ServerError

    try:
        return args.remote_func(args)
    except ServerError as exc:
        print("remote: {}".format(exc), file=sys.stderr)
        return 1


def _remote_verify(args):
    client = _remote_client(args)
    options = {}
    if args.time_limit:
        options["time_limit"] = args.time_limit
    if args.max_depth is not None:
        options["max_depth"] = args.max_depth
    if args.refine_workers:
        options["refine_workers"] = args.refine_workers
    if args.method in ("sat_sweep", "fraig_sweep"):
        if args.refine_batch:
            options["refine_batch"] = args.refine_batch
        if args.sim_backend != "auto":
            options["sim_backend"] = args.sim_backend
    if args.fraig_race and args.method == "fraig_sweep":
        options["race_workers"] = args.fraig_race
    if args.preprocess:
        options["preprocess"] = args.preprocess
    if args.suite:
        job_id = client.submit_suite(
            args.suite, method=args.method, options=options,
            optimize_level=args.optimize_level)
    else:
        if not (args.spec and args.impl):
            print("error: give SPEC and IMPL files or --suite ROW",
                  file=sys.stderr)
            return 2
        spec = _load_circuit(args.spec)
        impl = _load_circuit(args.impl)
        job_id = client.submit(
            spec, impl, method=args.method, options=options,
            match_inputs=args.match_inputs,
            match_outputs=args.match_outputs)
    if not args.json:
        print("submitted {}".format(job_id))
    if args.no_watch:
        record = client.wait(job_id)
    else:
        record = _watch_events(client, job_id, "json" if args.json else None)
    return _remote_record_exit(record, args.json)


def _remote_status(args):
    client = _remote_client(args)
    if args.job_id:
        record = client.job(args.job_id)
        print(json.dumps(record, sort_keys=True, indent=2))
        return 0
    for summary in client.jobs():
        print("{id}  {state:<9}  {name}  ({method})".format(**summary))
    return 0


def _remote_cancel(args):
    client = _remote_client(args)
    response = client.cancel(args.job_id)
    print(json.dumps(response, sort_keys=True))
    return 0


def _remote_watch(args):
    client = _remote_client(args)
    record = _watch_events(client, args.job_id,
                           "events" if args.json else None)
    return _remote_record_exit(record, args.json)


def _remote_stats(args):
    client = _remote_client(args)
    print(json.dumps(client.stats(), sort_keys=True, indent=2))
    return 0


def _cmd_cache(args):
    from .service import ResultCache

    cache = ResultCache(args.cache_dir, max_entries=args.max_entries,
                        max_bytes=args.max_bytes)
    if args.clear:
        before = len(cache)
        cache.clear()
        print("cache: cleared {} entries".format(before))
        return 0
    if args.prune:
        if args.max_entries is None and args.max_bytes is None:
            print("error: --prune needs --max-entries and/or --max-bytes",
                  file=sys.stderr)
            return 2
        evicted = cache.prune()
        print("cache: evicted {} entries ({} left, {} bytes)".format(
            evicted, len(cache), cache.total_bytes()))
        return 0
    for key, value in sorted(cache.stats().items()):
        print("{}: {}".format(key, value))
    return 0


def _cmd_info(args):
    from .errors import ParseError
    from .interop.formats import format_info

    try:
        info = format_info(args.circuit)
    except (ParseError, FileNotFoundError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    print("format: {}".format(info["format"]))
    for key, value in info["circuit"].stats().items():
        print("{}: {}".format(key, value))
    header = info["aiger"]
    print("aiger: M={M} I={I} L={L} O={O} A={A}".format(**header))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-sec",
        description="Sequential equivalence checking without state space "
                    "traversal (van Eijk, DATE 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="check two circuits")
    p_verify.add_argument("spec")
    p_verify.add_argument("impl")
    p_verify.add_argument("--method", choices=METHODS, default="van_eijk")
    p_verify.add_argument("--engine", metavar="NAME",
                          help="engine to run (accepts spellings like "
                               "'k-induction'); overrides --method and "
                               "rejects unknown names with the valid list")
    p_verify.add_argument("--portfolio", action="store_true",
                          help="race van_eijk/fraig_sweep/k_induction/bmc/"
                               "traversal in parallel; first conclusive "
                               "verdict wins")
    p_verify.add_argument("--json", action="store_true",
                          help="print the machine-readable verdict/stats "
                               "dict instead of text")
    p_verify.add_argument("--verbose", action="store_true")
    p_verify.add_argument("--match-inputs", choices=["name", "order"],
                          default="name")
    p_verify.add_argument("--match-outputs", choices=["name", "order"],
                          default="order")
    p_verify.add_argument("--events", metavar="FILE",
                          help="append the JSONL progress event stream "
                               "(refinement rounds, solver stats) to FILE")
    p_verify.add_argument("--no-simulation", action="store_true")
    p_verify.add_argument("--no-fundeps", action="store_true")
    p_verify.add_argument("--no-retiming", action="store_true")
    p_verify.add_argument("--no-incremental", action="store_true",
                          help="sat_sweep only: fall back to the "
                               "solver-per-round baseline engine")
    p_verify.add_argument("--refine-workers", type=int, default=0,
                          metavar="N",
                          help="sat_sweep/fraig_sweep: fan refinement "
                               "rounds out over N work-stealing worker "
                               "processes (0 = serial)")
    p_verify.add_argument("--refine-batch", type=int, default=0,
                          metavar="CLASSES",
                          help="sat_sweep/fraig_sweep: Q-check obligations "
                               "per worker batch, weighted by class size "
                               "(0 = auto: ~4 batches per worker)")
    p_verify.add_argument("--sim-backend",
                          choices=["auto", "compiled", "matrix"],
                          default="auto",
                          help="simulation backend for SAT-engine replay "
                               "(auto = matrix when numpy imports, else "
                               "compiled)")
    p_verify.add_argument("--fraig-race", type=int, default=0, metavar="N",
                          help="fraig_sweep only: race the FRAIG candidate-"
                               "check strategies on N pool workers and "
                               "take the first reduction (0 = off; "
                               "verdict-preserving, reduction may vary "
                               "run to run)")
    p_verify.add_argument("--profile", metavar="FILE",
                          help="profile the verification with cProfile and "
                               "dump pstats data to FILE")
    p_verify.add_argument("--no-strengthen", action="store_true",
                          help="k_induction/sweep_induct only: plain "
                               "k-induction without partition invariants")
    p_verify.add_argument("--no-fallback", action="store_true",
                          help="sweep_induct only: fail fast on an "
                               "inconclusive fixed point instead of "
                               "handing its partition to induction")
    p_verify.add_argument("--reach-bound", choices=["approx", "exact"])
    p_verify.add_argument("--time-limit", type=float)
    p_verify.add_argument("--node-limit", type=int)
    p_verify.add_argument("--max-depth", type=int, default=32,
                          help="BMC unrolling bound / maximum induction "
                               "depth")
    p_verify.add_argument("--preprocess", choices=["fraig"],
                          help="shrink both circuits with the sequential-"
                               "safe FRAIG sweep before the engine (or "
                               "portfolio) runs; verdict-preserving")
    p_verify.add_argument("--fraig-frames", action="store_true",
                          help="bmc only: functionally reduce the unrolled "
                               "frames (FRAIG-BMC); identical verdicts and "
                               "shortest counterexamples")
    p_verify.add_argument("--cross-check", action="store_true",
                          help="also run ABC (dsec/cec) and yosys "
                               "(equiv_induct) on the pair and compare "
                               "verdicts; skips with a logged reason when "
                               "the binaries are not installed")
    p_verify.set_defaults(func=_cmd_verify)

    p_batch = sub.add_parser(
        "batch", help="verify many suite pairs on the batch scheduler")
    p_batch.add_argument("--rows", nargs="+",
                         help="suite row names (e.g. s386 s510); default: "
                              "all rows of the selected scales")
    p_batch.add_argument("--scales", nargs="+", default=["small"],
                         choices=["small", "medium", "large"])
    p_batch.add_argument("--method", choices=METHODS, default="van_eijk")
    p_batch.add_argument("--workers", type=int, default=2,
                         help="parallel worker processes (0 = inline)")
    p_batch.add_argument("--refine-workers", type=int, default=0,
                         metavar="N",
                         help="sat_sweep/fraig_sweep: per-job parallel "
                              "refinement workers (0 = serial)")
    p_batch.add_argument("--refine-batch", type=int, default=0,
                         metavar="CLASSES",
                         help="Q-check obligations per worker batch "
                              "(0 = auto)")
    p_batch.add_argument("--sim-backend",
                         choices=["auto", "compiled", "matrix"],
                         default="auto",
                         help="simulation backend for SAT-engine replay")
    p_batch.add_argument("--fraig-race", type=int, default=0, metavar="N",
                         help="fraig_sweep only: race FRAIG strategies on "
                              "N pool workers per reduction (0 = off)")
    p_batch.add_argument("--optimize-level", type=int, default=2)
    p_batch.add_argument("--time-limit", type=float, default=300.0,
                         help="per-job engine time budget (seconds)")
    p_batch.add_argument("--total-time-limit", type=float,
                         help="whole-batch wall-clock budget (seconds)")
    p_batch.add_argument("--node-limit", type=int,
                         help="per-job BDD node budget")
    p_batch.add_argument("--retries", type=int, default=1,
                         help="retries per job after a worker crash")
    p_batch.add_argument("--fallback", choices=METHODS,
                         help="method to rerun inconclusive jobs with "
                              "(e.g. k_induction or bmc)")
    p_batch.add_argument("--no-fallback", action="store_true",
                         help="fail fast: keep inconclusive verdicts "
                              "instead of rerunning on --fallback")
    p_batch.add_argument("--cache-dir", default=".repro-cache")
    p_batch.add_argument("--no-cache", action="store_true")
    p_batch.add_argument("--events", metavar="FILE",
                         help="append the JSONL event stream to FILE")
    p_batch.add_argument("--json", action="store_true",
                         help="print per-job results as JSON")
    p_batch.add_argument("--verbose", action="store_true",
                         help="also print per-iteration progress events")
    p_batch.add_argument("--server", metavar="URL",
                         help="route jobs through a repro-sec serve daemon "
                              "instead of a local scheduler")
    p_batch.add_argument("--preprocess", choices=["fraig"],
                         help="FRAIG-reduce every pair before its engine "
                              "runs (applied before cache keys, locally "
                              "and server-side)")
    p_batch.set_defaults(func=_cmd_batch)

    p_fuzz = sub.add_parser(
        "fuzz", help="differentially fuzz the engines on seeded pairs "
                     "with known verdicts")
    p_fuzz.add_argument("--iterations", type=int, default=100)
    p_fuzz.add_argument("--time-budget", type=float,
                        help="stop after this many seconds (soak mode)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="run seed; distinct seeds fuzz disjoint cases")
    p_fuzz.add_argument("--corpus-dir", default="tests/corpus",
                        help="where shrunk findings are persisted "
                             "(use '' to disable)")
    p_fuzz.add_argument("--workers", type=int, default=0,
                        help="scheduler worker processes (0 = inline)")
    p_fuzz.add_argument("--engines", nargs="+", choices=METHODS,
                        help="engine battery (default: van_eijk sat_sweep "
                             "bmc k_induction traversal)")
    p_fuzz.add_argument("--time-limit", type=float,
                        help="per-engine-job time budget (seconds)")
    p_fuzz.add_argument("--cache-dir",
                        help="optional ResultCache directory")
    p_fuzz.add_argument("--events", metavar="FILE",
                        help="append the JSONL event stream to FILE")
    p_fuzz.add_argument("--json", action="store_true",
                        help="print the full fuzz report as JSON")
    p_fuzz.add_argument("--verbose", action="store_true",
                        help="print one line per fuzz case")
    p_fuzz.add_argument("--server", metavar="URL",
                        help="run the engine battery on a repro-sec serve "
                             "daemon (shrinking stays local)")
    p_fuzz.add_argument("--cross-check", action="store_true",
                        help="also judge every case with ABC/yosys when "
                             "installed; conclusive disagreements become "
                             "findings (skips gracefully when absent)")
    p_fuzz.add_argument("--datapath-probability", type=float, default=0.2,
                        metavar="P",
                        help="fraction of cases built from the arithmetic "
                             "datapath generators instead of random motif "
                             "benchmarks (1.0 = datapath only)")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_table = sub.add_parser("table1", help="run the Table-1 experiment")
    p_table.add_argument("--scales", nargs="+", default=["small"],
                         choices=["small", "medium", "large"])
    p_table.add_argument("--workers", type=int, default=0,
                         help="parallelize rows across worker processes")
    p_table.add_argument("--optimize-level", type=int, default=2)
    p_table.add_argument("--traversal-time-limit", type=float, default=60.0)
    p_table.add_argument("--proposed-time-limit", type=float, default=300.0)
    p_table.add_argument("--server", metavar="URL",
                         help="run the table's jobs on a repro-sec serve "
                              "daemon")
    p_table.set_defaults(func=_cmd_table1)

    p_info = sub.add_parser("info", help="print circuit statistics")
    p_info.add_argument("circuit")
    p_info.set_defaults(func=_cmd_info)

    p_serve = sub.add_parser(
        "serve", help="run the network verification daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8439,
                         help="TCP port (0 = pick an ephemeral port)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="parallel worker processes")
    p_serve.add_argument("--store-dir", default=".repro-server",
                         help="persistent job store (queue survives "
                              "restarts)")
    p_serve.add_argument("--cache-dir", default=".repro-cache")
    p_serve.add_argument("--no-cache", action="store_true")
    p_serve.add_argument("--cache-max-entries", type=int)
    p_serve.add_argument("--cache-max-bytes", type=int)
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="max queued+running jobs before submissions "
                              "get 429 backpressure")
    p_serve.add_argument("--time-limit", type=float,
                         help="per-job engine time budget (seconds)")
    p_serve.add_argument("--refine-workers", type=int, default=0,
                         metavar="N",
                         help="default parallel refinement workers for "
                              "sat_sweep jobs (0 = serial)")
    p_serve.add_argument("--rate", type=float, default=20.0,
                         help="per-client request rate (requests/second)")
    p_serve.add_argument("--burst", type=int, default=40,
                         help="per-client burst allowance")
    p_serve.add_argument("--ready-file", metavar="FILE",
                         help="write {host, port, pid, url} JSON once "
                              "listening (for scripts and tests)")
    p_serve.add_argument("--coordinator", action="store_true",
                         help="run the fleet coordinator instead of a "
                              "worker daemon: shard submitted jobs across "
                              "nodes that --join this URL")
    p_serve.add_argument("--join", metavar="URL",
                         help="join the fleet behind the coordinator at "
                              "URL (register, heartbeat, share its "
                              "result cache)")
    p_serve.add_argument("--node-id", metavar="NAME",
                         help="stable node name within the fleet "
                              "(default: generated per process)")
    p_serve.add_argument("--advertise-host", metavar="HOST",
                         help="host the coordinator should dial back on "
                              "(default: the bind host)")
    p_serve.add_argument("--heartbeat", type=float, default=2.0,
                         metavar="SECONDS",
                         help="worker heartbeat interval / coordinator "
                              "heartbeat expectation")
    p_serve.add_argument("--dead-after", type=float, default=6.0,
                         metavar="SECONDS",
                         help="coordinator only: declare a node dead and "
                              "requeue its jobs after this much heartbeat "
                              "silence")
    p_serve.add_argument("--trusted-proxy", action="append", metavar="IP",
                         help="honor X-Forwarded-For from this peer for "
                              "rate limiting (repeatable; --join adds the "
                              "coordinator host automatically)")
    p_serve.add_argument("--cache-url", metavar="URL",
                         help="remote result-cache base URL (default: the "
                              "--join coordinator)")
    p_serve.add_argument("--no-remote-cache", action="store_true",
                         help="do not share the coordinator's result "
                              "cache when joining a fleet")
    p_serve.add_argument("--events", metavar="FILE",
                         help="append the JSONL event stream to FILE")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress the live event log")
    p_serve.add_argument("--verbose", action="store_true",
                         help="also log per-iteration progress events")
    p_serve.set_defaults(func=_cmd_serve)

    p_remote = sub.add_parser(
        "remote", help="talk to a repro-sec serve daemon")
    remote_sub = p_remote.add_subparsers(dest="remote_command", required=True)

    def add_server_arg(p):
        p.add_argument("--server", required=True, metavar="URL",
                       help="daemon base URL, e.g. http://127.0.0.1:8439")

    pr_verify = remote_sub.add_parser(
        "verify", help="submit a job and stream it to completion")
    pr_verify.add_argument("spec", nargs="?")
    pr_verify.add_argument("impl", nargs="?")
    add_server_arg(pr_verify)
    pr_verify.add_argument("--suite", metavar="ROW",
                           help="verify a named Table-1 suite pair built "
                                "server-side (instead of SPEC IMPL files)")
    pr_verify.add_argument("--method", choices=METHODS, default="van_eijk")
    pr_verify.add_argument("--optimize-level", type=int, default=2)
    pr_verify.add_argument("--match-inputs", choices=["name", "order"],
                           default="name")
    pr_verify.add_argument("--match-outputs", choices=["name", "order"],
                           default="order")
    pr_verify.add_argument("--time-limit", type=float)
    pr_verify.add_argument("--max-depth", type=int,
                           help="BMC unrolling bound")
    pr_verify.add_argument("--refine-workers", type=int, default=0,
                           metavar="N",
                           help="sat_sweep/fraig_sweep: parallel "
                                "refinement workers (0 = serial)")
    pr_verify.add_argument("--refine-batch", type=int, default=0,
                           metavar="CLASSES",
                           help="Q-check obligations per worker batch "
                                "(0 = auto)")
    pr_verify.add_argument("--sim-backend",
                           choices=["auto", "compiled", "matrix"],
                           default="auto",
                           help="simulation backend for SAT-engine replay")
    pr_verify.add_argument("--fraig-race", type=int, default=0, metavar="N",
                           help="fraig_sweep only: race FRAIG strategies "
                                "on N pool workers (0 = off)")
    pr_verify.add_argument("--preprocess", choices=["fraig"],
                           help="FRAIG-reduce the pair server-side before "
                                "the engine runs (applied before the "
                                "cache key)")
    pr_verify.add_argument("--no-watch", action="store_true",
                           help="poll for the verdict instead of streaming "
                                "the SSE progress events")
    pr_verify.add_argument("--json", action="store_true")
    pr_verify.set_defaults(func=_cmd_remote, remote_func=_remote_verify)

    pr_status = remote_sub.add_parser(
        "status", help="show one job (or list all jobs)")
    pr_status.add_argument("job_id", nargs="?")
    add_server_arg(pr_status)
    pr_status.set_defaults(func=_cmd_remote, remote_func=_remote_status)

    pr_cancel = remote_sub.add_parser("cancel", help="cancel a job")
    pr_cancel.add_argument("job_id")
    add_server_arg(pr_cancel)
    pr_cancel.set_defaults(func=_cmd_remote, remote_func=_remote_cancel)

    pr_watch = remote_sub.add_parser(
        "watch", help="stream a job's SSE events to completion")
    pr_watch.add_argument("job_id")
    add_server_arg(pr_watch)
    pr_watch.add_argument("--json", action="store_true",
                          help="print raw event JSON lines")
    pr_watch.set_defaults(func=_cmd_remote, remote_func=_remote_watch)

    pr_stats = remote_sub.add_parser("stats", help="print daemon stats")
    add_server_arg(pr_stats)
    pr_stats.set_defaults(func=_cmd_remote, remote_func=_remote_stats)

    p_cache = sub.add_parser(
        "cache", help="inspect or trim the result cache")
    p_cache.add_argument("--cache-dir", default=".repro-cache")
    p_cache.add_argument("--stats", action="store_true",
                         help="print cache statistics (default action)")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every entry")
    p_cache.add_argument("--prune", action="store_true",
                         help="evict least-recently-used entries past the "
                              "caps")
    p_cache.add_argument("--max-entries", type=int,
                         help="entry-count cap for --prune")
    p_cache.add_argument("--max-bytes", type=int,
                         help="byte-size cap for --prune")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
