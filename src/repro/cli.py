"""Command-line interface: ``repro-sec`` / ``python -m repro``.

Subcommands::

    repro-sec verify spec.bench impl.bench [--method van_eijk] [...]
    repro-sec table1 [--scales small medium] [--optimize-level 2]
    repro-sec info circuit.bench

Circuit files are ``.bench`` or BLIF (chosen by extension).
"""

import argparse
import sys

from . import METHODS, verify
from .netlist import bench, blif


def _load_circuit(path):
    if str(path).endswith((".blif", ".BLIF")):
        return blif.load(path)
    return bench.load(path)


def _cmd_verify(args):
    spec = _load_circuit(args.spec)
    impl = _load_circuit(args.impl)
    options = {}
    if args.method == "van_eijk":
        options.update(
            use_simulation=not args.no_simulation,
            use_fundeps=not args.no_fundeps,
            use_retiming=not args.no_retiming,
        )
        if args.reach_bound:
            options["reach_bound"] = args.reach_bound
        if args.time_limit:
            options["time_limit"] = args.time_limit
        if args.node_limit:
            options["node_limit"] = args.node_limit
    elif args.method == "traversal":
        if args.time_limit:
            options["time_limit"] = args.time_limit
        if args.node_limit:
            options["node_limit"] = args.node_limit
    elif args.method == "bmc":
        options["max_depth"] = args.max_depth
        if args.time_limit:
            options["time_limit"] = args.time_limit
    result = verify(spec, impl, method=args.method,
                    match_inputs=args.match_inputs,
                    match_outputs=args.match_outputs, **options)
    print(result)
    if result.refuted and result.counterexample is not None:
        print("counterexample ({} frames):".format(
            result.counterexample.length))
        for i, frame in enumerate(result.counterexample.full_sequence()):
            assignment = " ".join(
                "{}={}".format(net, int(value))
                for net, value in sorted(frame.items())
            )
            print("  t={}: {}".format(i, assignment))
    if result.details:
        for key, value in sorted(result.details.items()):
            print("  {}: {}".format(key, value))
    return 0 if result.proved else (2 if result.refuted else 1)


def _cmd_table1(args):
    from .circuits import table1_suite
    from .eval import render_table1, run_table

    rows = table1_suite(scales=tuple(args.scales))
    results = run_table(
        rows,
        optimize_level=args.optimize_level,
        traversal_time_limit=args.traversal_time_limit,
        proposed_time_limit=args.proposed_time_limit,
    )
    print(render_table1(results))
    return 0


def _cmd_info(args):
    circuit = _load_circuit(args.circuit)
    for key, value in circuit.stats().items():
        print("{}: {}".format(key, value))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-sec",
        description="Sequential equivalence checking without state space "
                    "traversal (van Eijk, DATE 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="check two circuits")
    p_verify.add_argument("spec")
    p_verify.add_argument("impl")
    p_verify.add_argument("--method", choices=METHODS, default="van_eijk")
    p_verify.add_argument("--match-inputs", choices=["name", "order"],
                          default="name")
    p_verify.add_argument("--match-outputs", choices=["name", "order"],
                          default="order")
    p_verify.add_argument("--no-simulation", action="store_true")
    p_verify.add_argument("--no-fundeps", action="store_true")
    p_verify.add_argument("--no-retiming", action="store_true")
    p_verify.add_argument("--reach-bound", choices=["approx", "exact"])
    p_verify.add_argument("--time-limit", type=float)
    p_verify.add_argument("--node-limit", type=int)
    p_verify.add_argument("--max-depth", type=int, default=32,
                          help="BMC unrolling bound")
    p_verify.set_defaults(func=_cmd_verify)

    p_table = sub.add_parser("table1", help="run the Table-1 experiment")
    p_table.add_argument("--scales", nargs="+", default=["small"],
                         choices=["small", "medium", "large"])
    p_table.add_argument("--optimize-level", type=int, default=2)
    p_table.add_argument("--traversal-time-limit", type=float, default=60.0)
    p_table.add_argument("--proposed-time-limit", type=float, default=300.0)
    p_table.set_defaults(func=_cmd_table1)

    p_info = sub.add_parser("info", help="print circuit statistics")
    p_info.add_argument("circuit")
    p_info.set_defaults(func=_cmd_info)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
