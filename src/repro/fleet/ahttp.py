"""Minimal asyncio HTTP/1.1 client for coordinator → worker traffic.

The stdlib ships no async HTTP client, and the coordinator must never
block its event loop on a worker call, so this module implements just
enough of the protocol to speak to :mod:`repro.server`'s daemon:
``Connection: close`` JSON requests (:func:`request_json`) and an
incremental Server-Sent-Events reader (:func:`sse_events`) used by the
coordinator's per-job relay tails.

Timeouts are per-I/O-step, not per-request: an SSE stream stays open for
the life of a job, but any single read that stalls past ``read_timeout``
(the worker heartbeats every few seconds, so silence means trouble)
fails the call so the relay can probe the node and fail over.
"""

import asyncio
import json
import urllib.parse

__all__ = ["AsyncHttpError", "request_json", "sse_events"]

_MAX_RESPONSE = 64 * 1024 * 1024


class AsyncHttpError(Exception):
    """A worker call that failed at the transport or HTTP layer.

    ``status`` is the HTTP status code when the failure was an error
    response, or ``None`` for connection-level trouble.
    """

    def __init__(self, message, status=None):
        super(AsyncHttpError, self).__init__(message)
        self.status = status


def _split(url):
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme != "http":
        raise AsyncHttpError("only http:// urls are supported: " + url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    target = parsed.path or "/"
    if parsed.query:
        target += "?" + parsed.query
    return host, port, target


def _request_bytes(method, host, target, body, headers):
    lines = [
        "{} {} HTTP/1.1".format(method, target),
        "Host: {}".format(host),
        "Accept: application/json",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append("{}: {}".format(name, value))
    payload = b""
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
        lines.append("Content-Type: application/json")
        lines.append("Content-Length: {}".format(len(payload)))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


async def _read_head(reader, timeout):
    """Read and parse the status line + header block."""
    try:
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout)
    except asyncio.IncompleteReadError as exc:
        raise AsyncHttpError("connection closed mid-response: {!r}".format(
            exc.partial[:128]))
    except asyncio.TimeoutError:
        raise AsyncHttpError("timed out reading response head")
    except asyncio.LimitOverrunError:
        raise AsyncHttpError("response head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split()[1])
    except (IndexError, ValueError):
        raise AsyncHttpError("malformed status line: {!r}".format(lines[0]))
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _connect(url, connect_timeout):
    host, port, target = _split(url)
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), connect_timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        raise AsyncHttpError("cannot connect to {}: {}".format(url, exc))
    return reader, writer, host, target


async def request_json(method, url, body=None, headers=None,
                       connect_timeout=5.0, read_timeout=30.0):
    """One JSON request; returns ``(status, payload_dict)``.

    Raises :class:`AsyncHttpError` only for transport-level trouble —
    HTTP error statuses are returned to the caller, which knows whether a
    404 (job unknown on this node) or 429 (backpressure) is actionable.
    """
    reader, writer, host, target = await _connect(url, connect_timeout)
    try:
        writer.write(_request_bytes(method, host, target, body, headers))
        await asyncio.wait_for(writer.drain(), connect_timeout)
        status, response_headers = await _read_head(reader, read_timeout)
        length = response_headers.get("content-length")
        try:
            if length is not None:
                size = int(length)
                if size > _MAX_RESPONSE:
                    raise AsyncHttpError("response body too large")
                raw = await asyncio.wait_for(reader.readexactly(size),
                                             read_timeout)
            else:
                raw = await asyncio.wait_for(reader.read(_MAX_RESPONSE),
                                             read_timeout)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            raise AsyncHttpError("timed out reading response body")
        payload = {}
        if raw:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise AsyncHttpError(
                    "non-JSON response body (status {})".format(status))
        return status, payload
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def sse_events(url, headers=None, connect_timeout=5.0,
                     read_timeout=60.0):
    """Async generator of ``(event_type, payload_dict)`` from an SSE url.

    The worker's heartbeat comments keep the stream moving; a read that
    stalls past ``read_timeout`` raises :class:`AsyncHttpError` so the
    relay loop can treat the node as unresponsive.  Ends cleanly when the
    server closes the stream.
    """
    reader, writer, host, target = await _connect(url, connect_timeout)
    try:
        writer.write(_request_bytes("GET", host, target, None, headers))
        await asyncio.wait_for(writer.drain(), connect_timeout)
        status, _ = await _read_head(reader, read_timeout)
        if status != 200:
            raise AsyncHttpError(
                "SSE stream refused: status {}".format(status),
                status=status)
        event_type = None
        data_parts = []
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), read_timeout)
            except asyncio.TimeoutError:
                raise AsyncHttpError("SSE stream stalled (no heartbeat)")
            if not raw:
                return  # server closed the stream
            line = raw.decode("utf-8", "replace").rstrip("\r\n")
            if not line:
                if data_parts:
                    try:
                        payload = json.loads("\n".join(data_parts))
                    except ValueError:
                        payload = None
                    if payload is not None:
                        yield event_type, payload
                event_type = None
                data_parts = []
                continue
            if line.startswith(":"):
                continue  # heartbeat comment
            name, _, value = line.partition(":")
            if value.startswith(" "):
                value = value[1:]
            if name == "event":
                event_type = value
            elif name == "data":
                data_parts.append(value)
    finally:
        try:
            writer.close()
        except Exception:
            pass
