"""The fleet coordinator daemon (``repro-sec serve --coordinator``).

One coordinator fronts N worker daemons (:class:`repro.server.app.
VerifyServer` started with ``--join``) and presents the *same job API* a
single daemon does — ``POST /v1/jobs``, ``GET /v1/jobs/{id}``, SSE
``/v1/jobs/{id}/events`` — so every existing client
(:class:`repro.client.ServerClient`, ``repro-sec remote``,
:class:`~repro.client.RemoteScheduler`) talks to a fleet unchanged.

Responsibilities:

* **Membership** — workers join (``POST /v1/nodes``) and heartbeat; a
  node silent past ``dead_after`` seconds is declared dead by the
  reaper.  A relay tail that cannot reach its node declares death
  faster.  Rejoin is just another join: the node starts receiving new
  work, and nothing already placed elsewhere moves (rendezvous hashing
  keeps disruption minimal by construction, :mod:`repro.fleet.shard`).
* **Sharded dispatch** — each accepted job is routed to the live node
  that wins the rendezvous hash of its :func:`~repro.fleet.shard.
  routing_key` (resubmissions of one problem land on one node's warm
  cache); the proxied submission carries ``X-Forwarded-For`` so worker
  rate limiting sees the real client, not the coordinator.
* **Sticky SSE** — a client watching a job through the coordinator gets
  the stream of whichever worker owns it: a per-job *relay tail* follows
  the owning worker's SSE stream, rewrites worker job ids to coordinator
  ids, and re-publishes on the coordinator's bus.  When ownership moves,
  the tail moves with it — the watcher sees ``job_requeued`` and then
  the new owner's events on the same connection.
* **Failure requeue** — jobs owned by a dead node go back to the queue
  (the same :class:`~repro.server.store.JobStore` crash-recovery
  semantics the single daemon uses) and are re-dispatched to a survivor.
  Verdicts are engine-deterministic, so a requeued job's final result is
  identical to the one the dead node would have produced.
* **Shared cache** — ``GET/PUT /v1/cache/{key}`` expose a
  content-addressed :class:`~repro.service.cache.ResultCache`; workers
  mount it as the far tier of a :class:`~repro.fleet.cachenet.
  TieredCache`, so any node serves any fingerprint after one node has
  solved it.
"""

import asyncio
import json
import math
import os
import signal
import time

from ..server import store as store_mod
from ..server.httpd import (
    HttpError,
    SseWriter,
    error_response,
    json_response,
    read_request,
)
from ..server.ratelimit import RateLimiter
from ..service.cache import ResultCache
from ..service.events import (
    CLIENT_THROTTLED,
    Event,
    EventBus,
    JOB_DISPATCHED,
    JOB_REQUEUED,
    JOB_SUBMITTED,
    NODE_DIED,
    NODE_JOINED,
    NODE_LEFT,
    SERVER_STARTED,
    SERVER_STOPPED,
)
from ..service.job import CACHE_FORMAT_VERSION
from .ahttp import AsyncHttpError, request_json, sse_events
from .shard import assign_node, routing_key

__all__ = ["CoordinatorServer", "NodeInfo", "serve_coordinator"]

#: Consecutive unreachable relay attempts before a tail declares its node
#: dead without waiting for the heartbeat reaper.
_TAIL_DEATH_THRESHOLD = 3


class NodeInfo:
    """One registered worker node as the coordinator sees it."""

    __slots__ = ("id", "url", "alive", "last_seen", "joined_at",
                 "dispatched", "joins")

    def __init__(self, node_id, url, now=None):
        now = time.monotonic() if now is None else now
        self.id = node_id
        self.url = url.rstrip("/")
        self.alive = True
        self.last_seen = now
        self.joined_at = now
        self.dispatched = 0
        self.joins = 1

    def as_dict(self):
        return {"id": self.id, "url": self.url, "alive": self.alive,
                "age_seconds": time.monotonic() - self.joined_at,
                "idle_seconds": time.monotonic() - self.last_seen,
                "dispatched": self.dispatched, "joins": self.joins}


class CoordinatorServer:
    """HTTP front end sharding jobs across registered worker daemons."""

    def __init__(self, host="127.0.0.1", port=0, store_dir=None,
                 cache_dir=None, cache_max_entries=None, cache_max_bytes=None,
                 queue_limit=256, rate=50.0, burst=100, request_timeout=10.0,
                 sse_heartbeat=10.0, sse_write_timeout=10.0,
                 dead_after=6.0, heartbeat_interval=2.0, poll_interval=0.05,
                 dispatch_timeout=10.0, history_limit=2000, bus=None,
                 ready_file=None):
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.request_timeout = request_timeout
        self.sse_heartbeat = sse_heartbeat
        self.sse_write_timeout = sse_write_timeout
        self.dead_after = dead_after
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.dispatch_timeout = dispatch_timeout
        self.history_limit = history_limit
        self.ready_file = ready_file
        self.bus = bus or EventBus()
        self.store = store_mod.JobStore(store_dir or ".repro-coordinator")
        self.cache = None
        if cache_dir:
            self.cache = ResultCache(cache_dir,
                                     max_entries=cache_max_entries,
                                     max_bytes=cache_max_bytes)
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.nodes = {}       # node id -> NodeInfo
        self._history = {}    # coordinator job id -> [event dict, ...]
        self._watchers = {}   # coordinator job id -> set of asyncio.Queue
        self._tails = {}      # coordinator job id -> asyncio.Task
        self._server = None
        self._pump_task = None
        self._connections = set()
        self._stop_event = None
        self._started_at = None
        self.events_published = 0
        self.events_dropped = 0
        self.requeues = 0
        self.dispatch_failures = 0
        self.bus.subscribe(self._on_event)

    # -- event fan-out (same contract as VerifyServer) ----------------------

    def _on_event(self, event):
        self.events_published += 1
        if event.job is None:
            return
        payload = event.as_dict()
        history = self._history.setdefault(event.job, [])
        history.append(payload)
        if len(history) > self.history_limit:
            del history[:len(history) - self.history_limit]
            self.events_dropped += 1
        for queue in self._watchers.get(event.job, ()):
            queue.put_nowait(payload)

    def _notify_terminal(self, job_id):
        for queue in self._watchers.get(job_id, ()):
            queue.put_nowait(None)

    # -- lifecycle ----------------------------------------------------------

    async def start(self):
        self._started_at = time.monotonic()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.ensure_future(self._pump())
        self.bus.emit(SERVER_STARTED, role="coordinator", host=self.host,
                      port=self.port, pid=os.getpid(),
                      jobs_recovered=len(self.store))
        if self.ready_file:
            payload = {"host": self.host, "port": self.port,
                       "pid": os.getpid(), "url": self.url(),
                       "role": "coordinator"}
            tmp = self.ready_file + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.ready_file)

    def url(self):
        host = "127.0.0.1" if self.host in ("", "0.0.0.0") else self.host
        return "http://{}:{}".format(host, self.port)

    def request_stop(self):
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self):
        await self.start()
        loop = asyncio.get_event_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await self._stop_event.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()

    async def stop(self):
        """Graceful shutdown.

        Dispatched jobs keep running on their workers; the records stay
        RUNNING on disk and a restarted coordinator re-attaches its relay
        tails to them (or requeues, if the node is gone by then) — the
        same resume-where-the-queue-left-off semantics as the single
        daemon, extended across the fleet.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in [self._pump_task] + list(self._tails.values()):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tails.clear()
        self.bus.emit(SERVER_STOPPED, role="coordinator", host=self.host,
                      port=self.port, uptime_seconds=self._uptime())
        for job_id in list(self._watchers):
            self._notify_terminal(job_id)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.wait(list(self._connections))

    def _uptime(self):
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- membership ---------------------------------------------------------

    def alive_nodes(self):
        return [node for node in self.nodes.values() if node.alive]

    def _join_node(self, node_id, url):
        node = self.nodes.get(node_id)
        rejoin = node is not None
        if node is None:
            node = self.nodes[node_id] = NodeInfo(node_id, url)
        else:
            node.url = url.rstrip("/")
            node.alive = True
            node.last_seen = time.monotonic()
            node.joins += 1
        self.bus.emit(NODE_JOINED, node=node_id, url=node.url,
                      rejoin=rejoin, alive_nodes=len(self.alive_nodes()))
        return node

    def _node_died(self, node_id, reason):
        """Mark a node dead and requeue every job it owned.

        Synchronous on purpose: a relay tail may call this about its own
        node, and the requeue (including cancelling that very tail) must
        complete before any other coroutine observes the half-dead state.
        """
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.alive = False
        self.bus.emit(NODE_DIED, node=node_id, url=node.url, reason=reason,
                      alive_nodes=len(self.alive_nodes()))
        for record in self.store.all():
            if record.terminal or record.meta.get("node") != node_id:
                continue
            self._requeue(record, "node {} died: {}".format(node_id, reason))

    def _requeue(self, record, reason):
        tail = self._tails.pop(record.id, None)
        if tail is not None:
            tail.cancel()
        record.state = store_mod.QUEUED
        record.started_at = None
        record.requeues += 1
        record.meta.pop("node", None)
        record.meta.pop("remote_id", None)
        self.store.save(record)
        self.requeues += 1
        self.bus.emit(JOB_REQUEUED, job=record.id, name=record.name,
                      requeues=record.requeues, reason=reason)

    # -- the dispatch pump --------------------------------------------------

    async def _pump(self):
        while True:
            try:
                self._reap()
                await self._dispatch_queued()
                self._ensure_tails()
            except asyncio.CancelledError:
                raise
            except Exception:
                pass  # the pump must survive one bad record/node
            await asyncio.sleep(self.poll_interval)

    def _reap(self):
        now = time.monotonic()
        for node in list(self.nodes.values()):
            if node.alive and now - node.last_seen > self.dead_after:
                self._node_died(node.id, "missed heartbeats for "
                               "{:.1f}s".format(now - node.last_seen))

    def _pick_node(self, record):
        alive = self.alive_nodes()
        if not alive:
            return None
        pin = record.meta.get("pin")
        if pin:
            for node in alive:
                if node.id == pin:
                    return node
            return None  # pinned node not alive: wait for it
        owner = assign_node(record.meta.get("routing_key") or record.id,
                            [node.id for node in alive])
        return self.nodes[owner]

    async def _dispatch_queued(self):
        for record in self.store.queued():
            node = self._pick_node(record)
            if node is None:
                continue  # no (eligible) live node yet; stay queued
            try:
                status, payload = await request_json(
                    "POST", node.url + "/v1/jobs", body=record.payload,
                    headers=self._proxy_headers(record),
                    connect_timeout=self.dispatch_timeout,
                    read_timeout=self.dispatch_timeout)
            except AsyncHttpError:
                self.dispatch_failures += 1
                self._node_died(node.id, "dispatch connection failed")
                continue
            if status == 429:
                continue  # worker backpressure: retry next pump round
            if status != 202:
                self.dispatch_failures += 1
                self._mark_error(record, "node {} rejected dispatch: "
                                 "{} {}".format(node.id, status,
                                                payload.get("error")))
                continue
            record.meta["node"] = node.id
            record.meta["remote_id"] = payload["id"]
            record.state = store_mod.RUNNING
            record.started_at = time.time()
            self.store.save(record)
            node.dispatched += 1
            self.bus.emit(JOB_DISPATCHED, job=record.id, name=record.name,
                          node=node.id, remote_id=payload["id"],
                          requeues=record.requeues)
            self._start_tail(record)

    def _proxy_headers(self, record):
        return {"X-Forwarded-For": record.client or "unknown"}

    def _mark_error(self, record, message):
        record.state = store_mod.ERROR
        record.error = message
        record.finished_at = time.time()
        self.store.save(record)
        self._notify_terminal(record.id)

    def _ensure_tails(self):
        """Re-attach relay tails to running jobs that lost theirs.

        Covers coordinator restart (records loaded RUNNING from disk with
        no live task) and tails that exited on transient trouble.  A
        running record whose node is gone is requeued here.
        """
        for record in self.store.all():
            if record.terminal or record.state != store_mod.RUNNING:
                continue
            if record.id in self._tails:
                continue
            node = self.nodes.get(record.meta.get("node"))
            if node is None or not node.alive:
                # Grace for coordinator restart: the node may rejoin
                # within a heartbeat interval; requeue once it is
                # formally dead or was never seen for dead_after.
                age = self._uptime()
                if age is not None and age > self.dead_after:
                    self._requeue(record, "owning node {} not in fleet"
                                  .format(record.meta.get("node")))
                continue
            self._start_tail(record)

    # -- relay tails --------------------------------------------------------

    def _start_tail(self, record):
        old = self._tails.pop(record.id, None)
        if old is not None:
            old.cancel()
        self._tails[record.id] = asyncio.ensure_future(
            self._tail(record.id, record.meta.get("node"),
                       record.meta.get("remote_id")))

    async def _tail(self, job_id, node_id, remote_id):
        """Follow the owning worker's SSE stream for one job.

        Rewrites worker job ids to the coordinator id, deduplicates the
        worker's history replay across reconnects, updates the local
        record on the terminal ``done`` frame, and escalates repeated
        connection failures to a node-death declaration.
        """
        seen = 0
        failures = 0
        try:
            while True:
                record = self.store.get(job_id)
                if record is None or record.terminal:
                    return
                if (record.meta.get("node") != node_id
                        or record.meta.get("remote_id") != remote_id):
                    return  # ownership moved; a fresh tail owns it now
                node = self.nodes.get(node_id)
                if node is None or not node.alive:
                    return
                url = "{}/v1/jobs/{}/events".format(node.url, remote_id)
                replayed = 0
                try:
                    async for event_type, payload in sse_events(
                            url, read_timeout=max(60.0,
                                                  self.sse_heartbeat * 6)):
                        failures = 0
                        if event_type == "done":
                            self._absorb_terminal(job_id, payload)
                            return
                        replayed += 1
                        if replayed <= seen:
                            continue  # history we already relayed
                        seen = replayed
                        self._relay_event(job_id, node_id, payload)
                except AsyncHttpError as exc:
                    if exc.status == 404:
                        # The worker lost the job (wiped store): requeue.
                        fresh = self.store.get(job_id)
                        if fresh is not None and not fresh.terminal:
                            self._requeue(fresh, "node {} lost the job"
                                          .format(node_id))
                        return
                    failures += 1
                    if failures >= _TAIL_DEATH_THRESHOLD:
                        # Faster than the heartbeat reaper: a SIGKILLed
                        # node refuses connections immediately.
                        self._node_died(node_id,
                                        "relay unreachable x{}".format(
                                            failures))
                        return
                await asyncio.sleep(min(0.2 * (failures + 1), 1.0))
        except asyncio.CancelledError:
            raise
        finally:
            if self._tails.get(job_id) is asyncio.current_task():
                self._tails.pop(job_id, None)

    def _relay_event(self, job_id, node_id, payload):
        translated = dict(payload)
        translated["job"] = job_id
        data = dict(translated.get("data") or {})
        data.setdefault("node", node_id)
        translated["data"] = data
        self.bus.publish(Event.from_dict(translated))

    def _absorb_terminal(self, job_id, worker_record):
        """Copy a worker's terminal record into the coordinator record."""
        record = self.store.get(job_id)
        if record is None or record.terminal:
            return
        state = worker_record.get("state")
        if state not in store_mod.TERMINAL_STATES:
            return
        record.state = state
        record.result = worker_record.get("result")
        record.error = worker_record.get("error")
        record.cached = bool(worker_record.get("cached"))
        record.requeues = max(record.requeues,
                              worker_record.get("requeues", 0))
        record.finished_at = time.time()
        self.store.save(record)
        self._notify_terminal(job_id)

    # -- HTTP ---------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except (asyncio.CancelledError, asyncio.TimeoutError,
                ConnectionError):
            pass
        except Exception:
            try:
                writer.write(error_response(
                    HttpError(500, "internal server error")))
            except Exception:
                pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_one(self, reader, writer):
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "unknown"
        try:
            request = await read_request(reader, peer=peer,
                                         timeout=self.request_timeout)
        except HttpError as exc:
            writer.write(error_response(exc))
            await writer.drain()
            return
        if request is None:
            return
        try:
            response = await self._route(request, writer)
        except HttpError as exc:
            response = error_response(exc)
        if response is not None:
            writer.write(response)
            await writer.drain()

    async def _route(self, request, writer):
        path, method = request.path, request.method
        if path == "/v1/healthz":
            if method != "GET":
                raise HttpError(405, "method not allowed")
            return json_response(200, {
                "status": "ok", "role": "coordinator",
                "uptime_seconds": self._uptime(),
                "nodes": {"alive": len(self.alive_nodes()),
                          "total": len(self.nodes)}})
        if path.startswith("/v1/nodes"):
            # Membership and heartbeats are fleet-internal traffic:
            # never rate-limited (a throttled heartbeat would look like
            # a death and requeue a healthy node's jobs).
            return await self._route_nodes(request)
        if path.startswith("/v1/cache/"):
            # Cache sync is likewise internal worker traffic.
            return self._route_cache(request)
        self._throttle(request)
        if path == "/v1/stats":
            if method != "GET":
                raise HttpError(405, "method not allowed")
            return json_response(200, self.stats())
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(request)
            if method == "GET":
                return json_response(200, {
                    "jobs": [self._summary(r) for r in self.store.all()]})
            raise HttpError(405, "method not allowed")
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            record = self.store.get(job_id)
            if record is None:
                raise HttpError(404, "no such job {!r}".format(job_id))
            if tail == "events":
                if method != "GET":
                    raise HttpError(405, "method not allowed")
                await self._stream_events(record, writer)
                return None
            if tail:
                raise HttpError(404, "unknown resource {!r}".format(tail))
            if method == "GET":
                return json_response(200, self._public_dict(record))
            if method == "DELETE":
                return await self._cancel(record)
            raise HttpError(405, "method not allowed")
        raise HttpError(404, "unknown path {!r}".format(path))

    def _throttle(self, request):
        wait = self.limiter.check(request.peer)
        if wait > 0.0:
            retry_after = max(1, int(math.ceil(min(wait, 3600.0))))
            self.bus.emit(CLIENT_THROTTLED, client=request.peer,
                          path=request.path, retry_after=retry_after)
            raise HttpError(429, "rate limit exceeded",
                            headers={"Retry-After": str(retry_after)})

    # -- membership routes --------------------------------------------------

    async def _route_nodes(self, request):
        path, method = request.path, request.method
        if path == "/v1/nodes":
            if method == "GET":
                return json_response(200, {
                    "nodes": [node.as_dict()
                              for node in self.nodes.values()]})
            if method == "POST":
                body = request.json()
                node_id = body.get("id")
                url = body.get("url")
                if not node_id or not url:
                    raise HttpError(400, "join needs 'id' and 'url'")
                self._join_node(str(node_id), str(url))
                return json_response(200, {
                    "id": node_id,
                    "heartbeat_interval": self.heartbeat_interval,
                    "dead_after": self.dead_after,
                    "cache_url": self.url() if self.cache is not None
                    else None})
            raise HttpError(405, "method not allowed")
        rest = path[len("/v1/nodes/"):]
        node_id, _, tail = rest.partition("/")
        if tail == "heartbeat":
            if method != "POST":
                raise HttpError(405, "method not allowed")
            node = self.nodes.get(node_id)
            if node is None:
                raise HttpError(404, "unknown node {!r}; rejoin".format(
                    node_id))
            node.last_seen = time.monotonic()
            if not node.alive:
                # The node was declared dead (partition, reaped) but is
                # actually fine: revive it as a rejoin.
                self._join_node(node_id, node.url)
            return json_response(200, {"id": node_id, "alive": True})
        if tail:
            raise HttpError(404, "unknown resource {!r}".format(tail))
        if method == "DELETE":
            node = self.nodes.get(node_id)
            if node is None:
                raise HttpError(404, "unknown node {!r}".format(node_id))
            if node.alive:
                node.alive = False
                self.bus.emit(NODE_LEFT, node=node_id, url=node.url,
                              alive_nodes=len(self.alive_nodes()))
                for record in self.store.all():
                    if (not record.terminal
                            and record.meta.get("node") == node_id):
                        self._requeue(record, "node {} left".format(node_id))
            return json_response(200, {"id": node_id, "alive": False})
        raise HttpError(405, "method not allowed")

    # -- cache routes -------------------------------------------------------

    def _route_cache(self, request):
        if self.cache is None:
            raise HttpError(503, "coordinator has no shared cache")
        key = request.path[len("/v1/cache/"):]
        if not key or len(key) > 128 or not all(
                c in "0123456789abcdef" for c in key):
            raise HttpError(400, "cache keys are lowercase hex digests")
        if request.method == "GET":
            result = self.cache.get(key)
            if result is None:
                raise HttpError(404, "no entry for {}".format(key))
            return json_response(200, {
                "version": CACHE_FORMAT_VERSION, "key": key,
                "result": result.as_dict()})
        if request.method == "PUT":
            body = request.json()
            if body.get("version") != CACHE_FORMAT_VERSION:
                raise HttpError(409, "cache format version mismatch")
            try:
                from ..reach.result import SecResult

                result = SecResult.from_dict(body["result"])
            except (KeyError, TypeError, ValueError):
                raise HttpError(400, "body must carry a SecResult dict")
            self.cache.put(key, result, meta=body.get("meta"))
            return json_response(200, {"key": key, "stored": True})
        raise HttpError(405, "method not allowed")

    # -- job routes ---------------------------------------------------------

    def _submit(self, request):
        from ..server.app import validate_payload

        body = request.json()
        many = isinstance(body, dict) and "jobs" in body
        payloads = body["jobs"] if many else [body]
        if not isinstance(payloads, list) or not payloads:
            raise HttpError(400, "'jobs' must be a non-empty list")
        prepared = []
        for payload in payloads:
            if not isinstance(payload, dict):
                raise HttpError(400, "job payload must be a JSON object")
            pin = payload.pop("pin_node", None)
            if pin is not None and str(pin) not in self.nodes:
                raise HttpError(400, "pin_node {!r} is not a registered "
                                     "node".format(pin))
            prepared.append((validate_payload(payload), pin))
        counts = self.store.counts()
        backlog = counts[store_mod.QUEUED] + counts[store_mod.RUNNING]
        if backlog + len(prepared) > self.queue_limit:
            self.bus.emit(CLIENT_THROTTLED, client=request.peer,
                          path=request.path, reason="queue full",
                          backlog=backlog)
            raise HttpError(429, "job queue is full ({} of {})".format(
                backlog, self.queue_limit),
                headers={"Retry-After": "2"})
        ids = []
        for payload, pin in prepared:
            record = self.store.create(payload, client=request.peer)
            record.meta["routing_key"] = routing_key(payload)
            if pin is not None:
                record.meta["pin"] = str(pin)
            self.store.save(record)
            ids.append(record.id)
            self.bus.emit(JOB_SUBMITTED, job=record.id, name=record.name,
                          method=payload["method"], client=request.peer)
        response = {"ids": ids} if many else {"id": ids[0]}
        response["state"] = store_mod.QUEUED
        return json_response(202, response)

    async def _cancel(self, record):
        if record.terminal:
            return json_response(
                200, {"id": record.id, "state": record.state,
                      "detail": "already terminal"})
        if record.state == store_mod.QUEUED:
            record.state = store_mod.CANCELLED
            record.finished_at = time.time()
            self.store.save(record)
            self._notify_terminal(record.id)
            return json_response(200, {"id": record.id,
                                       "state": record.state})
        node = self.nodes.get(record.meta.get("node"))
        remote_id = record.meta.get("remote_id")
        if node is not None and node.alive and remote_id:
            try:
                await request_json(
                    "DELETE", "{}/v1/jobs/{}".format(node.url, remote_id),
                    headers=self._proxy_headers(record),
                    connect_timeout=self.dispatch_timeout,
                    read_timeout=self.dispatch_timeout)
            except AsyncHttpError:
                self._node_died(node.id, "cancel connection failed")
        # The relay tail absorbs the worker's terminal cancelled record;
        # if the node is gone the requeue path re-dispatches and the
        # cancel is lost with the node — report the live state.
        fresh = self.store.get(record.id)
        return json_response(202, {"id": record.id,
                                   "state": fresh.state if fresh
                                   else "cancelling"})

    def _public_dict(self, record):
        data = record.public_dict()
        data["node"] = record.meta.get("node")
        return data

    def _summary(self, record):
        return {
            "id": record.id,
            "name": record.name,
            "method": record.payload.get("method"),
            "state": record.state,
            "node": record.meta.get("node"),
            "cached": record.cached,
            "requeues": record.requeues,
            "submitted_at": record.submitted_at,
            "finished_at": record.finished_at,
        }

    async def _stream_events(self, record, writer):
        queue = asyncio.Queue()
        watchers = self._watchers.setdefault(record.id, set())
        watchers.add(queue)
        history = list(self._history.get(record.id, []))
        terminal = record.terminal
        try:
            sse = SseWriter(writer, write_timeout=self.sse_write_timeout)
            await sse.start()
            for payload in history:
                await sse.event(payload, payload.get("type"))
            if terminal:
                await sse.event(self._public_dict(record), "done")
                return
            while True:
                try:
                    item = await asyncio.wait_for(queue.get(),
                                                  self.sse_heartbeat)
                except asyncio.TimeoutError:
                    await sse.comment()
                    continue
                if item is None:
                    fresh = self.store.get(record.id)
                    await sse.event(
                        self._public_dict(fresh) if fresh
                        else {"id": record.id}, "done")
                    return
                await sse.event(item, item.get("type"))
        finally:
            watchers.discard(queue)
            if not watchers:
                self._watchers.pop(record.id, None)

    # -- stats --------------------------------------------------------------

    def stats(self):
        counts = self.store.counts()
        cache_stats = None
        if self.cache is not None:
            cache_stats = self.cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            cache_stats["hit_rate"] = (
                cache_stats["hits"] / lookups if lookups else None)
        return {
            "role": "coordinator",
            "uptime_seconds": self._uptime(),
            "jobs": counts,
            "queue_limit": self.queue_limit,
            "nodes": {"alive": len(self.alive_nodes()),
                      "total": len(self.nodes),
                      "detail": [node.as_dict()
                                 for node in self.nodes.values()]},
            "requeues": self.requeues,
            "dispatch_failures": self.dispatch_failures,
            "tails": len(self._tails),
            "cache": cache_stats,
            "events": {"published": self.events_published,
                       "dropped": self.events_dropped},
            "rate_limit": {"rejected": self.limiter.rejected,
                           "rate": self.limiter.rate,
                           "burst": self.limiter.burst},
        }


def serve_coordinator(host="127.0.0.1", port=8440, **kwargs):
    """Blocking entry for ``repro-sec serve --coordinator``; returns 0."""
    server = CoordinatorServer(host=host, port=port, **kwargs)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback path
        pass
    return 0
