"""Deterministic shard assignment for the verification fleet.

The coordinator routes every job to exactly one worker node via
*rendezvous (highest-random-weight) hashing*: each (node, key) pair gets a
pseudo-random score and the key is owned by the live node with the highest
score.  That choice buys the three properties the fleet leans on:

* **deterministic** — the owner is a pure function of ``(key, live-node
  set)``, so any coordinator replica (or a restarted one) computes the
  same routing without shared state;
* **total** — every key has exactly one owner whenever at least one node
  is alive;
* **minimally disruptive** — when a node dies, only the keys that node
  owned move (each to its runner-up node); every other key keeps its
  owner, so a worker crash never reshuffles the healthy part of the
  fleet.  Symmetrically, a joining node steals only the keys it now
  scores highest on.

Keys are arbitrary strings; the coordinator uses
:func:`routing_key` — a structural hash of the submission payload with
display-only fields (name, tags) stripped — so resubmissions of the same
problem land on the same node and hit its warm local cache.
"""

import hashlib
import json

__all__ = ["assign_node", "assign_all", "routing_key"]


def _score(node_id, key):
    """The rendezvous score of ``node_id`` for ``key`` (32 opaque bytes)."""
    payload = node_id.encode("utf-8") + b"\x00" + key.encode("utf-8")
    return hashlib.sha256(payload).digest()


def assign_node(key, node_ids):
    """The owning node id for ``key`` among ``node_ids`` (None if empty).

    Ties (impossible in practice for distinct node ids, but the contract
    must be total) break toward the lexicographically smallest node id.
    """
    best_score = None
    best_node = None
    for node_id in node_ids:
        score = _score(node_id, key)
        if (best_score is None or score > best_score
                or (score == best_score and node_id < best_node)):
            best_score = score
            best_node = node_id
    return best_node


def assign_all(keys, node_ids):
    """Map every key to its owner: ``{key: node_id}``."""
    nodes = list(node_ids)
    return {key: assign_node(key, nodes) for key in keys}


def routing_key(payload):
    """The shard key of a submission payload.

    Strips fields that do not change the verification problem (display
    name, tags, client bookkeeping) so a renamed resubmission routes to
    the same node; everything else — circuits, method, options, matching
    modes — participates.
    """
    relevant = {key: value for key, value in payload.items()
                if key not in ("name", "tags")}
    canonical = json.dumps(relevant, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
