"""Shared verification-result cache over HTTP.

The fleet's cache-sharing guarantee — *any node serves any
``structural_fingerprint``* — is implemented as a two-tier cache on every
worker: the node's local :class:`~repro.service.cache.ResultCache` in
front, the coordinator's cache (exposed at ``GET/PUT /v1/cache/{key}``,
the same content-addressed keys and :class:`SecResult` entries as the
disk cache) behind it.

:class:`CacheClient` is the worker-side HTTP leg.  It is deliberately
*lossy*: every failure — connection refused, timeout, a coordinator
restart — degrades to a cache miss (or a dropped publish) and bumps an
error counter, because a verification fleet must keep proving when its
cache is down, never the other way around.  Timeouts are short for the
same reason: the client runs inline in the worker daemon's job pump.

:class:`TieredCache` composes the two with read-through/write-through
semantics: remote hits are copied into the local tier, local solves are
published to the remote tier, so a result computed on any node is one
round-trip away from every other node and zero round-trips away the
second time it is asked of the same node.
"""

import json
import urllib.error
import urllib.request

from ..reach.result import SecResult
from ..service.job import CACHE_FORMAT_VERSION

__all__ = ["CacheClient", "TieredCache"]


class CacheClient:
    """One remote cache endpoint (``<base_url>/v1/cache/{key}``)."""

    def __init__(self, base_url, timeout=3.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.hits = 0
        self.misses = 0
        self.errors = 0

    def _url(self, key):
        return "{}/v1/cache/{}".format(self.base_url, key)

    def get(self, key):
        """The cached :class:`SecResult` for ``key``, or ``None``."""
        request = urllib.request.Request(
            self._url(key), headers={"Accept": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                entry = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                self.misses += 1
            else:
                self.errors += 1
            return None
        except (urllib.error.URLError, OSError, ValueError):
            self.errors += 1
            return None
        if entry.get("version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        try:
            result = SecResult.from_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            self.errors += 1
            return None
        self.hits += 1
        return result

    def put(self, key, result, meta=None):
        """Publish ``result`` under ``key``; returns True if stored."""
        body = json.dumps({
            "version": CACHE_FORMAT_VERSION,
            "result": result.as_dict(),
            "meta": dict(meta or {}),
        }).encode("utf-8")
        request = urllib.request.Request(
            self._url(key), data=body, method="PUT",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                response.read()
            return True
        except (urllib.error.URLError, OSError, ValueError):
            self.errors += 1
            return False

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "errors": self.errors, "url": self.base_url}


class TieredCache:
    """Local :class:`ResultCache` backed by a remote :class:`CacheClient`.

    Either tier may be ``None``; with both present, a remote hit is
    written through to the local tier and a local :meth:`put` is
    published remotely.  The interface matches what
    :class:`repro.server.app.VerifyServer` expects of its cache
    (``get`` / ``put`` / ``stats``), so it drops in unchanged.
    """

    def __init__(self, local, remote):
        if local is None and remote is None:
            raise ValueError("TieredCache needs at least one tier")
        self.local = local
        self.remote = remote
        self.remote_hits = 0

    def get(self, key):
        if self.local is not None:
            result = self.local.get(key)
            if result is not None:
                return result
        if self.remote is None:
            return None
        result = self.remote.get(key)
        if result is not None:
            self.remote_hits += 1
            if self.local is not None:
                self.local.put(key, result, meta={"origin": "remote"})
        return result

    def put(self, key, result, meta=None):
        stored = False
        if self.local is not None:
            stored = self.local.put(key, result, meta=meta)
        if self.remote is not None:
            stored = self.remote.put(key, result, meta=meta) or stored
        return stored

    def stats(self):
        """Hit/miss counters shaped like :meth:`ResultCache.stats`.

        ``hits``/``misses`` aggregate both tiers (a remote hit is a hit;
        a miss only counts when *every* tier missed), with the per-tier
        breakdown nested for the stats endpoint.
        """
        local = self.local.stats() if self.local is not None else None
        remote = self.remote.stats() if self.remote is not None else None
        hits = (local["hits"] if local else 0) + self.remote_hits
        total_lookups = (local["misses"] if local
                         else (remote["hits"] + remote["misses"]
                               + remote["errors"]) if remote else 0)
        misses = max(0, total_lookups - self.remote_hits)
        stats = {"hits": hits, "misses": misses,
                 "remote_hits": self.remote_hits,
                 "local": local, "remote": remote}
        if local:
            stats["entries"] = local["entries"]
            stats["bytes"] = local["bytes"]
        return stats
