"""Distributed verification fleet: coordinator-sharded multi-daemon SEC.

One :class:`CoordinatorServer` (``repro-sec serve --coordinator``) fronts
N worker daemons (``repro-sec serve --join URL``) behind the *same* job
API a single daemon exposes: rendezvous-sharded dispatch
(:mod:`repro.fleet.shard`), a shared content-addressed result cache any
node can serve (:mod:`repro.fleet.cachenet`), sticky SSE relay streams,
and node death/rejoin handled by the job store's crash-recovery requeue.

See ``docs/FLEET.md`` for topology, lifecycle and failure semantics.
"""

from .cachenet import CacheClient, TieredCache
from .coordinator import CoordinatorServer, NodeInfo, serve_coordinator
from .node import FleetMember
from .shard import assign_all, assign_node, routing_key

__all__ = [
    "CacheClient",
    "CoordinatorServer",
    "FleetMember",
    "NodeInfo",
    "TieredCache",
    "assign_all",
    "assign_node",
    "routing_key",
    "serve_coordinator",
]
