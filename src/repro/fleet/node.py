"""Worker-side fleet membership: join, heartbeat, leave.

A worker daemon started with ``repro-sec serve --join URL`` owns one
:class:`FleetMember`, which runs as an asyncio task inside the daemon's
event loop: it registers the node with the coordinator
(``POST /v1/nodes``), then heartbeats (``POST /v1/nodes/{id}/heartbeat``)
every ``interval`` seconds.  Membership is *leased*, not permanent — a
coordinator that misses heartbeats past its ``dead_after`` window marks
the node dead and requeues its jobs, and a heartbeat answered with 404
(the coordinator restarted, or reaped us while we were partitioned)
triggers an automatic rejoin, so a node that comes back simply starts
receiving work again.

Every transition is surfaced on the daemon's event bus (``node_joined``
on each successful (re)join, ``node_left`` on the graceful goodbye) so
the operator's event stream shows membership next to job traffic.
"""

import asyncio

from ..service.events import NODE_JOINED, NODE_LEFT
from .ahttp import AsyncHttpError, request_json

__all__ = ["FleetMember"]


class FleetMember:
    """The join/heartbeat/leave loop of one worker node."""

    def __init__(self, coordinator_url, node_id, advertise_url, bus,
                 interval=2.0, request_timeout=5.0):
        self.coordinator_url = coordinator_url.rstrip("/")
        self.node_id = node_id
        self.advertise_url = advertise_url
        self.bus = bus
        self.interval = interval
        self.request_timeout = request_timeout
        self.joined = False
        self.joins = 0
        self.heartbeats = 0
        self.failures = 0

    async def _join(self):
        status, payload = await request_json(
            "POST", self.coordinator_url + "/v1/nodes",
            body={"id": self.node_id, "url": self.advertise_url},
            connect_timeout=self.request_timeout,
            read_timeout=self.request_timeout)
        if status != 200:
            raise AsyncHttpError("join rejected: {} {}".format(
                status, payload.get("error")), status=status)
        self.joined = True
        self.joins += 1
        self.bus.emit(NODE_JOINED, node=self.node_id,
                      coordinator=self.coordinator_url,
                      url=self.advertise_url, rejoin=self.joins > 1)

    async def _heartbeat(self):
        status, _ = await request_json(
            "POST", "{}/v1/nodes/{}/heartbeat".format(
                self.coordinator_url, self.node_id),
            body={"url": self.advertise_url},
            connect_timeout=self.request_timeout,
            read_timeout=self.request_timeout)
        if status == 404:
            # The coordinator no longer knows us (restart, or it reaped
            # us during a partition): fall back to a full rejoin.
            self.joined = False
            return
        if status != 200:
            raise AsyncHttpError("heartbeat rejected: {}".format(status),
                                 status=status)
        self.heartbeats += 1

    async def run(self):
        """Membership loop; runs until cancelled.

        Coordinator outages are absorbed: failed joins/heartbeats count
        in ``failures`` and retry on the next tick, never crash the
        worker daemon.
        """
        while True:
            try:
                if not self.joined:
                    await self._join()
                else:
                    await self._heartbeat()
            except asyncio.CancelledError:
                raise
            except AsyncHttpError:
                self.failures += 1
                self.joined = False
            except Exception:
                self.failures += 1
            await asyncio.sleep(self.interval)

    async def leave(self):
        """Best-effort graceful deregistration (daemon shutdown)."""
        if not self.joined:
            return
        try:
            await request_json(
                "DELETE", "{}/v1/nodes/{}".format(self.coordinator_url,
                                                  self.node_id),
                connect_timeout=self.request_timeout,
                read_timeout=self.request_timeout)
        except (AsyncHttpError, Exception):
            return
        finally:
            self.joined = False
        self.bus.emit(NODE_LEFT, node=self.node_id,
                      coordinator=self.coordinator_url)
