"""repro — Sequential Equivalence Checking without State Space Traversal.

A complete reproduction of C.A.J. van Eijk's DATE 1998 paper: sequential
equivalence checking by signal correspondence (a greatest fixed-point
iteration over functionally equivalent signals) instead of product-machine
state-space traversal, together with every substrate the paper depends on —
a complement-edge BDD package with sifting, a CDCL SAT solver, a gate-level
netlist library with ``.bench``/BLIF support, retiming and resynthesis
transformations, and the symbolic-traversal baseline it is compared against.

Quick start::

    from repro import verify
    from repro.circuits import fig2_pair

    spec, impl = fig2_pair()
    result = verify(spec, impl)
    assert result.proved
"""

from .errors import (
    BddError,
    NetlistError,
    NodeLimitExceeded,
    ParseError,
    ReproError,
    ResourceBudgetExceeded,
    SatError,
    TransformError,
    VerificationError,
)
from .netlist import Circuit, GateType, build_product
from .reach import CexTrace, SecResult
from .core import VanEijkVerifier, check_equivalence_sat_sweep
from .induction import KInductionEngine, check_equivalence_k_induction

__version__ = "1.0.0"

METHODS = ("van_eijk", "traversal", "sat_sweep", "fraig_sweep",
           "k_induction", "sweep_induct", "bmc", "explicit")


def verify(spec, impl, method="van_eijk", match_inputs="name",
           match_outputs="order", **options):
    """Check two sequential circuits for equivalence.

    ``method`` selects the engine:

    * ``"van_eijk"`` — the paper's signal-correspondence method (default);
      options are :class:`~repro.core.VanEijkVerifier` parameters.
    * ``"traversal"`` — the symbolic state-space-traversal baseline;
      options are those of
      :func:`~repro.reach.check_equivalence_traversal`.
    * ``"sat_sweep"`` — the SAT-backed signal correspondence (§6).
    * ``"fraig_sweep"`` — FRAIG-reduce both circuits on the AIG substrate
      first, then run the SAT correspondence on the reduced pair
      (:mod:`repro.sweep`).
    * ``"k_induction"`` — temporal induction over the product miter:
      proves what the fixed point cannot, without traversal; options are
      :class:`~repro.induction.KInductionEngine` parameters.
    * ``"sweep_induct"`` — SAT correspondence first; an inconclusive fixed
      point hands its partition to k-induction as a strengthening
      invariant instead of falling back to traversal.
    * ``"bmc"`` — bounded model checking: a complete *refuter* up to a
      depth bound (shortest counterexamples); it never proves.
    * ``"explicit"`` — explicit-state oracle (tiny circuits only).

    Every method additionally accepts ``preprocess="fraig"``: the pair is
    shrunk by the sequential-safe FRAIG sweep before the engine runs;
    verdicts and counterexample traces are unaffected (the reduction
    preserves the per-frame functions and the circuit interface), and the
    reduction telemetry lands in ``details["preprocess"]``.

    Returns a :class:`~repro.reach.SecResult`.
    """
    if options.get("preprocess"):
        from .sweep import (
            attach_preprocess_details,
            preprocess_pair,
            split_preprocess_options,
        )

        passes, pre_kwargs, options = split_preprocess_options(options)
        spec, impl, info = preprocess_pair(spec, impl, passes=passes,
                                           **pre_kwargs)
        result = verify(spec, impl, method=method,
                        match_inputs=match_inputs,
                        match_outputs=match_outputs, **options)
        return attach_preprocess_details(result, info)
    if method == "fraig_sweep":
        from .sweep import check_equivalence_fraig_sweep

        return check_equivalence_fraig_sweep(
            spec, impl, match_inputs=match_inputs,
            match_outputs=match_outputs, **options
        )
    if method == "van_eijk":
        verifier = VanEijkVerifier(**options)
        return verifier.verify(spec, impl, match_inputs=match_inputs,
                               match_outputs=match_outputs)
    if method == "sat_sweep":
        return check_equivalence_sat_sweep(
            spec, impl, match_inputs=match_inputs,
            match_outputs=match_outputs, **options
        )
    if method == "k_induction":
        from .induction import check_equivalence_k_induction

        return check_equivalence_k_induction(
            spec, impl, match_inputs=match_inputs,
            match_outputs=match_outputs, **options
        )
    if method == "sweep_induct":
        from .induction import check_equivalence_sweep_induction

        return check_equivalence_sweep_induction(
            spec, impl, match_inputs=match_inputs,
            match_outputs=match_outputs, **options
        )
    product = build_product(spec, impl, match_inputs=match_inputs,
                            match_outputs=match_outputs)
    if method == "bmc":
        from .core.bmc import bmc_refute

        return bmc_refute(product, **options)
    if method == "traversal":
        from .reach import check_equivalence_traversal

        return check_equivalence_traversal(product, **options)
    if method == "explicit":
        from .reach import explicit_check_equivalence

        return explicit_check_equivalence(product, **options)
    raise ValueError(
        "unknown method {!r}; choose one of {}".format(method, METHODS)
    )


__all__ = [
    "BddError",
    "CexTrace",
    "Circuit",
    "GateType",
    "KInductionEngine",
    "METHODS",
    "NetlistError",
    "NodeLimitExceeded",
    "ParseError",
    "ReproError",
    "ResourceBudgetExceeded",
    "SatError",
    "SecResult",
    "TransformError",
    "VanEijkVerifier",
    "VerificationError",
    "build_product",
    "check_equivalence_k_induction",
    "check_equivalence_sat_sweep",
    "verify",
]
