"""The Table-1 benchmark suite.

Each row mirrors an ISCAS'89 circuit from the paper's Table 1: same name,
same register count, and a structural profile chosen to reproduce the row's
*behaviour* in the experiment — the s208/s420/s838 fraction-counter family
gets genuinely deep state spaces (defeating BFS traversal), and the two
circuits the paper's method could not finish (s3384, s6669) get multiplier
mixers whose BDDs exceed any node budget.

The "implementation" of each pair is manufactured by the synthesis pipeline
(retiming + aggressive combinational optimization), mirroring the paper's
setup of verifying against kerneled/retimed then ``script.rugged``-ed
circuits.
"""

from ..transform import synthesize
from .generators import generate_benchmark


class SuiteRow:
    """One benchmark pair descriptor (lazy: circuits built on demand)."""

    def __init__(self, name, regs, inputs, scale, deep_counter_bits=0,
                 mixer_width=0, retime_moves=4):
        self.name = name
        self.regs = regs
        self.inputs = inputs
        self.scale = scale  # 'small' | 'medium' | 'large'
        self.deep_counter_bits = deep_counter_bits
        self.mixer_width = mixer_width
        self.retime_moves = retime_moves

    def _seed(self):
        return sum(ord(ch) * (31 ** i) for i, ch in enumerate(self.name)) % (2 ** 31)

    def spec(self):
        return generate_benchmark(
            self.name,
            n_regs=self.regs,
            n_inputs=self.inputs,
            seed=self._seed(),
            deep_counter_bits=self.deep_counter_bits,
            mixer_width=self.mixer_width,
        )

    def pair(self, optimize_level=2):
        """(spec, impl): the original and its retimed+optimized version."""
        spec = self.spec()
        impl = synthesize(
            spec,
            retime_moves=self.retime_moves,
            optimize_level=optimize_level,
            seed=self._seed() + 1,
        )
        impl.name = self.name + "_opt"
        return spec, impl

    def __repr__(self):
        return "SuiteRow({}, regs={}, scale={})".format(
            self.name, self.regs, self.scale
        )


# Register counts follow the real ISCAS'89 circuits named in Table 1.
TABLE1_ROWS = [
    SuiteRow("s208", 8, 10, "small", deep_counter_bits=8),
    SuiteRow("s298", 14, 3, "small"),
    SuiteRow("s344", 15, 9, "small"),
    SuiteRow("s349", 15, 9, "small"),
    SuiteRow("s382", 21, 3, "small"),
    SuiteRow("s386", 6, 7, "small"),
    SuiteRow("s420", 16, 18, "small", deep_counter_bits=16),
    SuiteRow("s444", 21, 3, "small"),
    SuiteRow("s510", 6, 19, "small"),
    SuiteRow("s526", 21, 3, "small"),
    SuiteRow("s641", 19, 35, "small"),
    SuiteRow("s713", 19, 35, "small"),
    SuiteRow("s820", 5, 18, "small"),
    SuiteRow("s832", 5, 18, "small"),
    SuiteRow("s838", 32, 34, "small", deep_counter_bits=32),
    SuiteRow("s953", 29, 16, "small"),
    SuiteRow("s1196", 18, 14, "small"),
    SuiteRow("s1238", 18, 14, "small"),
    SuiteRow("s1423", 74, 17, "medium"),
    SuiteRow("s1488", 6, 8, "small"),
    SuiteRow("s1494", 6, 8, "small"),
    SuiteRow("s3271", 116, 26, "medium"),
    SuiteRow("s3330", 132, 40, "medium"),
    SuiteRow("s3384", 183, 43, "large", mixer_width=12),
    SuiteRow("s5378", 164, 35, "large"),
    SuiteRow("s6669", 239, 83, "large", mixer_width=14),
]


def table1_suite(scales=("small",)):
    """The Table-1 rows restricted to the given scales.

    The default covers the rows a pure-Python run completes quickly; pass
    ``("small", "medium", "large")`` for the full table (see
    ``examples/table1.py``).
    """
    wanted = set(scales)
    return [row for row in TABLE1_ROWS if row.scale in wanted]


def row_by_name(name):
    for row in TABLE1_ROWS:
        if row.name == name:
            return row
    raise KeyError(name)
