"""The paper's worked examples, built as concrete circuits.

* :func:`fig2_pair` — the running example of Fig. 2: a two-register circuit
  and its forward-retimed, logically optimized counterpart.  The maximum
  signal correspondence relation pairs {v3, v6} and {v4, v7}, the
  correspondence condition simplifies to ``v1·v2 ≡ v6``, and the functional
  dependency substitution replaces the state variable v6 by ``v1·v2``.
* :func:`fig3_pair` — a pair that is provable *only after* one round of
  retiming-with-lag-1 augmentation (Fig. 3): the implementation merges the
  moved registers' input logic into a single new signal that has no
  counterpart in the specification until the augmenter adds it.
* :func:`mod3_counter_pair` — two mod-3 counters with different state
  encodings: sequentially equivalent, but *no* signal correspondence
  relation proves it (the paper's §6 incompleteness).  The proof goes
  through once the correspondence condition is strengthened with the exact
  reachable state space (§3's sequential don't cares).
"""

from ..netlist.circuit import Circuit, GateType


def fig2_spec():
    """Fig. 2, left: x feeds two registers; output v4 = v1·v2·x."""
    c = Circuit("fig2_spec")
    c.add_input("x")
    c.add_register("v1", "x", init=True)
    c.add_register("v2", "v1", init=True)
    c.add_gate("v3", GateType.AND, ["v1", "v2"])
    c.add_gate("v4", GateType.AND, ["v3", "x"])
    c.add_output("v4")
    return c.validate()


def fig2_impl():
    """Fig. 2, right: the retimed and optimized version.

    The AND over (v1, v2) has been retimed forward into the register v6
    (initial value 1·1 = 1) whose input v5 = x·v1' recomputes it one frame
    early; the output v7 = v6·x matches v4.
    """
    c = Circuit("fig2_impl")
    c.add_input("x")
    c.add_register("w1", "x", init=True)
    c.add_gate("v5", GateType.AND, ["x", "w1"])
    c.add_register("v6", "v5", init=True)
    c.add_gate("v7", GateType.AND, ["v6", "x"])
    c.add_output("v7")
    return c.validate()


def fig2_pair():
    return fig2_spec(), fig2_impl()


def fig3_spec():
    """Two 2-deep shift chains feeding an AND (Fig. 3, left shape)."""
    c = Circuit("fig3_spec")
    c.add_input("a")
    c.add_input("b")
    c.add_register("p1", "a", init=False)
    c.add_register("p2", "p1", init=False)
    c.add_register("q1", "b", init=False)
    c.add_register("q2", "q1", init=False)
    c.add_gate("v", GateType.AND, ["p2", "q2"])
    c.add_output("v")
    return c.validate()


def fig3_impl():
    """The forward-retimed implementation: the AND moved across both
    register stages and merged, so the intermediate product signal
    ``p1·q1`` exists nowhere — until lag-1 augmentation recreates it."""
    c = Circuit("fig3_impl")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("w", GateType.AND, ["a", "b"])
    c.add_register("c1", "w", init=False)
    c.add_register("m", "c1", init=False)
    c.add_output("m")
    return c.validate()


def fig3_pair():
    return fig3_spec(), fig3_impl()


def mod3_counter_pair():
    """Free-running mod-3 counters over different state encodings.

    Specification cycles 00 -> 01 -> 10 -> 00; implementation cycles
    00 -> 01 -> 11 -> 00.  Both output their high bit, which rises every
    third cycle.  Despite the different encodings the method proves this
    pair: the registers' *data-input gates* are sequentially equivalent
    signals, and their pairing supplies exactly the cross-encoding invariant
    the output registers' induction needs — a good illustration of why
    working on all signals (not just registers) matters.
    """
    spec = Circuit("mod3_spec")
    spec.add_gate("nb1", GateType.NOT, ["b1"])
    spec.add_gate("nb0", GateType.NOT, ["b0"])
    spec.add_gate("d1", GateType.AND, ["nb1", "b0"])
    spec.add_gate("d0", GateType.AND, ["nb1", "nb0"])
    spec.add_register("b1", "d1", init=False)
    spec.add_register("b0", "d0", init=False)
    spec.add_output("b1")
    spec.validate()

    impl = Circuit("mod3_impl")
    impl.add_gate("nc1", GateType.NOT, ["c1"])
    impl.add_gate("e1", GateType.AND, ["nc1", "c0"])
    impl.add_gate("e0", GateType.NOT, ["c1"])
    impl.add_register("c1", "e1", init=False)
    impl.add_register("c0", "e0", init=False)
    impl.add_output("c1")
    impl.validate()
    return spec, impl


def onehot_ring_pair(enable=False):
    """Incompleteness witnesses (§6): equivalent, but hard or impossible
    for signal correspondence alone.

    The implementation is a one-hot 3-register ring (exactly one register is
    set in every reachable state) whose output ``¬(a·b)`` is constant 1 on
    the reachable states; the specification is the constant 1.  One-hotness
    is not a conjunction of signal equivalences, so the bare fixed point
    cannot prove the pair.

    * ``enable=False``: a free-running ring.  Retiming-with-lag-1
      augmentation *recovers completeness* here — the augmented signals are
      the rotated products ``¬(c·a)``, ``¬(b·c)``, whose constant-1
      equivalences jointly express mutual exclusion.
    * ``enable=True``: the rotation is gated by an input, which blocks
      augmentation past the mux logic; the pair is then genuinely beyond the
      whole method (Fig. 4 terminates undecided), while strengthening the
      correspondence condition with the exact reachable state space (§3)
      or plain traversal prove it.
    """
    spec = Circuit("onehot_spec")
    if enable:
        spec.add_input("en")
    spec.add_gate("one", GateType.CONST1, [])
    spec.add_output("one")
    spec.validate()

    impl = Circuit("onehot_impl")
    ring = [("a", "c", True), ("b", "a", False), ("c", "b", False)]
    if enable:
        impl.add_input("en")
        impl.add_gate("nen", GateType.NOT, ["en"])
        for reg, src, init in ring:
            impl.add_gate("m1_" + reg, GateType.AND, ["en", src])
            impl.add_gate("m0_" + reg, GateType.AND, ["nen", reg])
            impl.add_gate("d_" + reg, GateType.OR, ["m1_" + reg, "m0_" + reg])
            impl.add_register(reg, "d_" + reg, init=init)
    else:
        for reg, src, init in ring:
            impl.add_register(reg, src, init=init)
    impl.add_gate("g", GateType.AND, ["a", "b"])
    impl.add_gate("out", GateType.NOT, ["g"])
    impl.add_output("out")
    impl.validate()
    return spec, impl
