"""Parametric sequential circuit generators.

The ISCAS'89 netlists themselves are not redistributable here, so the
Table-1 suite is generated from the structural motifs the real circuits are
built from — counters and fraction counters (the s208/s420/s838 family),
shift chains and LFSRs, decoded control FSMs, and shared combinational
cones — with register counts matching the real benchmarks.  Supports are
kept local, which is the property of the real circuits that makes their
next-state BDDs tractable (and which the paper's method exploits).

Everything is deterministic in the seed.
"""

import random

from ..netlist.circuit import Circuit, GateType

_BINARY = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
           GateType.XOR, GateType.XNOR]


class _Builder:
    """Incremental construction context shared by the motifs."""

    def __init__(self, name, n_inputs, seed):
        self.circuit = Circuit(name)
        self.rng = random.Random(seed)
        for i in range(n_inputs):
            self.circuit.add_input("in{}".format(i))
        self.module_count = 0
        self.taps = list(self.circuit.inputs)  # observable signals so far
        self.observe = []  # one representative signal per motif

    def input_signal(self):
        return self.rng.choice(self.circuit.inputs)

    def local_tap(self, span=12):
        """A recently created signal (keeps supports local)."""
        window = self.taps[-span:] if span is not None else self.taps
        return self.rng.choice(window)

    def fresh(self, stem):
        self.module_count += 1
        return "{}_{}".format(stem, self.module_count)


def add_counter(builder, bits, enable=None):
    """Binary up-counter; the s208/s420/s838 fraction-counter motif."""
    c = builder.circuit
    prefix = builder.fresh("cnt")
    if enable is None:
        enable = builder.input_signal()
    regs = []
    for i in range(bits):
        regs.append(c.add_register("{}_q{}".format(prefix, i), "__pending",
                                   init=False))
    carry = enable
    for i, q in enumerate(regs):
        d = "{}_d{}".format(prefix, i)
        c.add_gate(d, GateType.XOR, [q, carry])
        c.set_register_input(q, d)
        if i < bits - 1:
            nxt = "{}_c{}".format(prefix, i)
            c.add_gate(nxt, GateType.AND, [q, carry])
            carry = nxt
    builder.taps.extend(regs)
    builder.observe.append(regs[-1])
    return regs


def add_shift_chain(builder, bits, data=None):
    """Serial shift register fed by an existing signal."""
    c = builder.circuit
    prefix = builder.fresh("sh")
    if data is None:
        data = builder.local_tap()
    regs = []
    src = data
    for i in range(bits):
        q = c.add_register("{}_q{}".format(prefix, i), src,
                           init=builder.rng.random() < 0.3)
        regs.append(q)
        src = q
    builder.taps.extend(regs)
    builder.observe.append(regs[-1])
    return regs


def add_lfsr(builder, bits):
    """Fibonacci LFSR with random taps (initialized non-zero)."""
    c = builder.circuit
    prefix = builder.fresh("lfsr")
    regs = []
    for i in range(bits):
        regs.append(c.add_register("{}_q{}".format(prefix, i), "__pending",
                                   init=(i == 0)))
    n_taps = builder.rng.randint(2, min(4, bits))
    taps = builder.rng.sample(regs, n_taps)
    feedback = "{}_fb".format(prefix)
    c.add_gate(feedback, GateType.XOR, taps)
    src = feedback
    for q in regs:
        c.set_register_input(q, src)
        src = q
    builder.taps.extend(regs)
    builder.observe.append(regs[-1])
    return regs


def add_control_fsm(builder, bits, n_inputs_used=2):
    """Random Moore-style control FSM: each state bit reloads from a small
    random cone over the state bits and a couple of inputs."""
    c = builder.circuit
    rng = builder.rng
    prefix = builder.fresh("fsm")
    regs = []
    for i in range(bits):
        regs.append(c.add_register("{}_q{}".format(prefix, i), "__pending",
                                   init=rng.random() < 0.4))
    controls = [builder.input_signal() for _ in range(n_inputs_used)]
    for i, q in enumerate(regs):
        sources = regs + controls
        depth = rng.randint(1, 2)
        current = rng.sample(sources, min(len(sources), rng.randint(2, 3)))
        net = None
        for level in range(depth):
            gtype = rng.choice(_BINARY)
            net = "{}_l{}_{}".format(prefix, level, i)
            c.add_gate(net, gtype, current)
            current = [net, rng.choice(sources)]
        c.set_register_input(q, net)
    builder.taps.extend(regs)
    # Random FSM bits are not guaranteed to feed one another, so every bit
    # is observed individually (counters/chains only need their last stage).
    builder.observe.extend(regs)
    return regs


def add_multiplier_mixer(builder, width):
    """Array multiplier over two register words; its middle product bits
    have exponential BDDs under every variable order — the motif that makes
    the s3384/s6669-class circuits defeat BDD-based engines."""
    c = builder.circuit
    rng = builder.rng
    prefix = builder.fresh("mul")
    a_regs = add_shift_chain(builder, width, data=builder.input_signal())
    b_regs = add_lfsr(builder, width)
    # Partial products.
    rows = []
    for i in range(width):
        row = []
        for j in range(width):
            pp = "{}_pp{}_{}".format(prefix, i, j)
            c.add_gate(pp, GateType.AND, [a_regs[i], b_regs[j]])
            row.append(pp)
        rows.append(row)
    # Carry-save reduction along anti-diagonals (ripple style).
    acc = rows[0]
    for i in range(1, width):
        nxt = []
        carry = None
        for j in range(width - i):
            s = "{}_s{}_{}".format(prefix, i, j)
            operands = [acc[j + 1] if j + 1 < len(acc) else rows[i][j],
                        rows[i][j]]
            if carry is not None:
                operands.append(carry)
            c.add_gate(s, GateType.XOR, operands)
            carry_net = "{}_c{}_{}".format(prefix, i, j)
            c.add_gate(carry_net, GateType.AND, operands[:2])
            carry = carry_net
            nxt.append(s)
        acc = nxt if nxt else acc
    out = acc[0] if acc else rows[0][0]
    builder.taps.append(out)
    builder.observe.append(out)
    return out


def add_output_cone(builder, depth=3, span=16):
    """A small random combinational cone; ``span=None`` samples globally."""
    c = builder.circuit
    rng = builder.rng
    prefix = builder.fresh("po")
    current = [builder.local_tap(span) for _ in range(rng.randint(2, 3))]
    net = current[0]
    for level in range(depth):
        gtype = rng.choice(_BINARY)
        net = "{}_l{}".format(prefix, level)
        c.add_gate(net, gtype, current)
        current = [net, builder.local_tap(span)]
    return net


def generate_benchmark(name, n_regs, n_inputs=4, n_outputs=None, seed=0,
                       deep_counter_bits=0, mixer_width=0):
    """Generate an ISCAS-like sequential benchmark.

    ``deep_counter_bits`` forces one large counter (the deep-state-space
    s838 shape); ``mixer_width`` adds a multiplier mixer (the BDD-hostile
    s3384/s6669 shape).  Remaining registers are spread over random motifs.
    """
    builder = _Builder(name, n_inputs, seed)
    remaining = n_regs
    if deep_counter_bits:
        used = min(deep_counter_bits, remaining)
        add_counter(builder, used)
        remaining -= used
    if mixer_width and remaining >= 2 * mixer_width:
        add_multiplier_mixer(builder, mixer_width)
        remaining -= 2 * mixer_width
    rng = builder.rng
    while remaining > 0:
        motif = rng.choice(["counter", "shift", "lfsr", "fsm"])
        size = min(remaining, rng.randint(3, 8))
        if motif == "counter":
            add_counter(builder, size)
        elif motif == "shift":
            add_shift_chain(builder, size)
        elif motif == "lfsr" and size >= 3:
            add_lfsr(builder, size)
        else:
            add_control_fsm(builder, size)
        remaining -= size
    circuit = builder.circuit
    if n_outputs is None:
        n_outputs = max(2, n_regs // 8)
    for _ in range(n_outputs):
        circuit.add_output(add_output_cone(builder, span=None))
    # Parity checksums over representative signals keep every module
    # observable (nothing is synthesized away as dead logic).  Chunked into
    # narrow XORs so no single output cone observes the whole register file.
    observe = builder.observe
    if len(observe) >= 2:
        for idx in range(0, len(observe), 8):
            chunk = observe[idx:idx + 8]
            if len(chunk) == 1:
                circuit.add_output(chunk[0])
                continue
            name = "po_checksum{}".format(idx // 8)
            circuit.add_gate(name, GateType.XOR, chunk)
            circuit.add_output(name)
    elif observe:
        circuit.add_output(observe[0])
    circuit.validate()
    return circuit


# --------------------------------------------------------------------------
# Datapath pairs: arithmetic circuits equivalent (or buggy) by construction
# --------------------------------------------------------------------------
#
# The word-level literature (arXiv:2308.00431, arXiv:2501.14740) stresses
# that arithmetic datapaths are where AIG-level sweeping behaves worst:
# internal equivalences are scarce, so the engines must reason through
# carry chains instead of merging nodes.  Each family below builds one
# function two structurally different ways — the pair is *equivalent by
# construction* — or, with ``bug`` set, plants one classic arithmetic bug
# so the pair is *inequivalent by construction* with a depth-1
# counterexample.  Operands are registered (loaded from primary inputs
# every cycle), which makes every pair genuinely sequential while keeping
# register counts small enough for the traversal baseline to discharge the
# label.

DATAPATH_FAMILIES = ("adder", "multiplier", "mux", "shifter")


def _registered_word(circuit, prefix, width):
    """``width`` primary inputs loaded into registers each cycle; the
    datapath computes on the registered copies."""
    regs = []
    for i in range(width):
        pin = circuit.add_input("{}{}".format(prefix, i))
        regs.append(circuit.add_register("{}_r{}".format(prefix, i), pin,
                                         init=False))
    return regs


def _full_adder(c, prefix, a, b, cin=None):
    """Returns (sum, carry) nets; half adder when ``cin`` is None."""
    t = c.add_gate("{}_t".format(prefix), GateType.XOR, [a, b])
    g = c.add_gate("{}_g".format(prefix), GateType.AND, [a, b])
    if cin is None:
        return t, g
    s = c.add_gate("{}_s".format(prefix), GateType.XOR, [t, cin])
    p = c.add_gate("{}_p".format(prefix), GateType.AND, [t, cin])
    cout = c.add_gate("{}_c".format(prefix), GateType.OR, [g, p])
    return s, cout


def _mux2(c, name, sel, then_net, else_net):
    ns = c.add_gate("{}_ns".format(name), GateType.NOT, [sel])
    hi = c.add_gate("{}_hi".format(name), GateType.AND, [sel, then_net])
    lo = c.add_gate("{}_lo".format(name), GateType.AND, [ns, else_net])
    return c.add_gate(name, GateType.OR, [hi, lo])


def _ripple_adder(c, a, b, cin, prefix, bug=None):
    """Sum bits plus carry-out.  ``bug="xor_carry"`` replaces the final
    stage's majority carry with a plain XOR (wrong when exactly two of the
    three operand bits are set)."""
    sums, carry = [], cin
    for i in range(len(a)):
        stem = "{}_fa{}".format(prefix, i)
        if bug == "xor_carry" and i == len(a) - 1:
            s = c.add_gate("{}_s".format(stem), GateType.XOR,
                           [a[i], b[i], carry])
            carry = c.add_gate("{}_c".format(stem), GateType.XOR,
                               [a[i], b[i]])
            sums.append(s)
            continue
        s, carry = _full_adder(c, stem, a[i], b[i], carry)
        sums.append(s)
    return sums, carry


def _carry_select_adder(c, a, b, cin, prefix):
    """Per-bit carry select: both carry polarities precomputed, the real
    carry picks.  Same function as the ripple adder, different structure."""
    sums, carry = [], cin
    for i in range(len(a)):
        stem = "{}_cs{}".format(prefix, i)
        t = c.add_gate("{}_t".format(stem), GateType.XOR, [a[i], b[i]])
        # carry-out with cin=0 is a&b; with cin=1 it is a|b.
        c0 = c.add_gate("{}_c0".format(stem), GateType.AND, [a[i], b[i]])
        c1 = c.add_gate("{}_c1".format(stem), GateType.OR, [a[i], b[i]])
        s = c.add_gate("{}_s".format(stem), GateType.XNOR,
                       [t, c.add_gate("{}_nc".format(stem), GateType.NOT,
                                      [carry])])
        sums.append(s)
        carry = _mux2(c, "{}_cmux".format(stem), carry, c1, c0)
    return sums, carry


def _adder_pair(width, bug):
    spec = Circuit("add{}_ripple".format(width))
    a = _registered_word(spec, "a", width)
    b = _registered_word(spec, "b", width)
    cin = spec.add_input("cin")
    cin_r = spec.add_register("cin_r", "cin", init=False)
    sums, cout = _ripple_adder(spec, a, b, cin_r, "add")
    for s in sums:
        spec.add_output(s)
    spec.add_output(cout)

    impl = Circuit("add{}_select".format(width))
    a = _registered_word(impl, "a", width)
    b = _registered_word(impl, "b", width)
    impl.add_input("cin")
    cin_r = impl.add_register("cin_r", "cin", init=False)
    if bug:
        sums, cout = _ripple_adder(impl, a, b, cin_r, "add",
                                   bug="xor_carry")
    else:
        sums, cout = _carry_select_adder(impl, a, b, cin_r, "add")
    for s in sums:
        impl.add_output(s)
    impl.add_output(cout)
    return spec, impl


def _compress_columns(c, columns, width, prefix, reverse=False):
    """Reduce per-column partial-product lists to one bit per column with
    full/half adders (modulo ``2**width``).  ``reverse`` picks operands
    from the back of each column — a different but function-preserving
    reduction order, so forward and reverse compressions are equivalent by
    construction."""
    counter = [0]
    for i in range(width):
        col = columns[i]
        while len(col) > 1:
            stem = "{}_m{}_{}".format(prefix, i, counter[0])
            counter[0] += 1
            if reverse:
                operands = [col.pop(), col.pop()]
            else:
                operands = [col.pop(0), col.pop(0)]
            cin = None
            if col:
                cin = col.pop() if reverse else col.pop(0)
            s, carry = _full_adder(c, stem, operands[0], operands[1],
                                   cin=cin)
            col.append(s)
            if i + 1 < width:
                columns[i + 1].append(carry)
    return [columns[i][0] for i in range(width)]


def _partial_products(c, a, b, width, prefix, bug=False):
    """AND partial products by column weight.  ``bug`` replaces the
    weight-0 product with an OR — the planted multiplier bug (wrong
    whenever exactly one of ``a0``/``b0`` is set), distinguishable at
    every width."""
    columns = [[] for _ in range(width)]
    for i in range(width):
        for j in range(width - i):
            gtype = GateType.OR if bug and i == 0 and j == 0 else GateType.AND
            pp = c.add_gate("{}_pp{}_{}".format(prefix, i, j), gtype,
                            [a[i], b[j]])
            columns[i + j].append(pp)
    return columns


def _multiplier_pair(width, bug):
    spec = Circuit("mul{}_fwd".format(width))
    a = _registered_word(spec, "a", width)
    b = _registered_word(spec, "b", width)
    for net in _compress_columns(spec, _partial_products(spec, a, b, width,
                                                         "mul"),
                                 width, "mul"):
        spec.add_output(net)

    impl = Circuit("mul{}_rev".format(width))
    a = _registered_word(impl, "a", width)
    b = _registered_word(impl, "b", width)
    for net in _compress_columns(impl, _partial_products(impl, a, b, width,
                                                         "mul",
                                                         bug=bool(bug)),
                                 width, "mul", reverse=True):
        impl.add_output(net)
    return spec, impl


def _mux_tree_pair(select_bits, bug):
    n_leaves = 1 << select_bits
    spec = Circuit("mux{}_tree".format(select_bits))
    d = _registered_word(spec, "d", n_leaves)
    s = _registered_word(spec, "s", select_bits)
    level = list(d)
    for bit in range(select_bits):
        level = [
            _mux2(spec, "mx_{}_{}".format(bit, k), s[bit],
                  level[2 * k + 1], level[2 * k])
            for k in range(len(level) // 2)
        ]
    spec.add_output(level[0])

    impl = Circuit("mux{}_onehot".format(select_bits))
    d = _registered_word(impl, "d", n_leaves)
    s = _registered_word(impl, "s", select_bits)
    inv = [impl.add_gate("ns{}".format(bit), GateType.NOT, [s[bit]])
           for bit in range(select_bits)]
    terms = []
    for leaf in range(n_leaves):
        # The classic decode bug: leaves 0 and 1 swapped.
        source = leaf
        if bug and leaf in (0, 1):
            source = 1 - leaf
        fanins = [d[source]]
        for bit in range(select_bits):
            fanins.append(s[bit] if (leaf >> bit) & 1 else inv[bit])
        terms.append(impl.add_gate("term{}".format(leaf), GateType.AND,
                                   fanins))
    impl.add_output(impl.add_gate("onehot_out", GateType.OR, terms))
    return spec, impl


def _rotate_stage(c, word, sel, amount, prefix):
    width = len(word)
    return [
        _mux2(c, "{}_b{}".format(prefix, i), sel,
              word[(i - amount) % width], word[i])
        for i in range(width)
    ]


def _shifter_pair(width, select_bits, bug):
    spec = Circuit("rot{}_lsb".format(width))
    d = _registered_word(spec, "d", width)
    s = _registered_word(spec, "s", select_bits)
    word = list(d)
    for bit in range(select_bits):
        word = _rotate_stage(spec, word, s[bit], 1 << bit,
                             "st{}".format(bit))
    for net in word:
        spec.add_output(net)

    # Rotations by fixed amounts commute, so msb-first stages compute the
    # same rotation.
    impl = Circuit("rot{}_msb".format(width))
    d = _registered_word(impl, "d", width)
    s = _registered_word(impl, "s", select_bits)
    word = list(d)
    for bit in reversed(range(select_bits)):
        if bug and bit == select_bits - 1:
            # Dropped stage: the top select bit is ignored.
            continue
        word = _rotate_stage(impl, word, s[bit], 1 << bit,
                             "st{}".format(bit))
    for net in word:
        impl.add_output(net)
    return spec, impl


def datapath_pair(family, width=3, bug=False, seed=0):
    """Build one datapath (spec, impl) pair.

    ``family`` is one of :data:`DATAPATH_FAMILIES`; ``width`` is the
    operand width (mux: select bits; shifter: word width).  With ``bug``
    False the pair is equivalent by construction; with ``bug`` True the
    implementation carries one planted arithmetic bug and the pair is
    inequivalent with a shallow counterexample.  ``seed`` is accepted for
    recipe-format uniformity (construction is deterministic).
    """
    del seed
    if family == "adder":
        spec, impl = _adder_pair(max(2, min(width, 4)), bug)
    elif family == "multiplier":
        spec, impl = _multiplier_pair(max(2, min(width, 3)), bug)
    elif family == "mux":
        spec, impl = _mux_tree_pair(max(1, min(width, 2)), bug)
    elif family == "shifter":
        # Width >= 3 keeps every stage's rotation non-trivial (a rotate-by-2
        # over 2 bits is the identity, which would unplant the bug).
        spec, impl = _shifter_pair(max(3, min(width, 4)), 2, bug)
    else:
        raise ValueError("unknown datapath family {!r}; known: {}".format(
            family, ", ".join(DATAPATH_FAMILIES)))
    spec.validate()
    impl.validate()
    return spec, impl


def delay_line_pair(delay, width=8):
    """A pair whose BMC refutation depth — and hence runtime — is dialable.

    The spec's single output is constantly 0.  The impl hides a one-hot
    token at the far end of a ``delay``-register shift line; the token
    reaches the output after exactly ``delay - 1`` cycles, so the pair is
    inequivalent with its first counterexample at a known depth.  A
    ``width``-input XOR mixing layer feeds parasitic registers to give
    every unrolled frame real solver work: at width 8, ``delay=500`` is
    roughly 1.5 s of BMC and ``delay=1000`` roughly 6 s on one 2025-era
    core.  The fleet tests use it as a *finite* long-running job — long
    enough to SIGKILL a worker mid-solve, deterministic enough that the
    survivor's verdict must match a single daemon's.  Use matched-order
    outputs (the output names differ deliberately).
    """
    if delay < 1:
        raise ValueError("delay must be >= 1")
    spec = Circuit("delay{}_spec".format(delay))
    for w in range(width):
        spec.add_input("a{}".format(w))
    spec.add_register("z", "z", init=False)
    spec.add_gate("o", GateType.BUF, ["z"])
    spec.add_output("o")

    impl = Circuit("delay{}_impl".format(delay))
    for w in range(width):
        impl.add_input("a{}".format(w))
    impl.add_register("zero", "zero", init=False)
    prev = "a0"
    for w in range(1, width):
        impl.add_gate("mix{}".format(w), GateType.XOR,
                      [prev, "a{}".format(w)])
        prev = "mix{}".format(w)
    for w in range(width):
        impl.add_register("m{}".format(w), prev, init=False)
    # The mixing registers are anchored below the delay line (ANDed with
    # the constant-0 register) so optimization cannot drop them, yet the
    # token's arrival is unaffected.
    impl.add_gate("mz", GateType.AND, ["m0", "zero"])
    for i in range(delay):
        src = "r{}".format(i + 1) if i + 1 < delay else "mz"
        impl.add_register("r{}".format(i), src, init=(i == delay - 1))
    impl.add_gate("out", GateType.BUF, ["r0"])
    impl.add_output("out")
    return spec, impl
