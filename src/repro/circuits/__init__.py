"""Benchmark circuits: the paper's worked examples and the Table-1 suite."""

from .paper_example import (
    fig2_impl,
    fig2_pair,
    fig2_spec,
    fig3_impl,
    fig3_pair,
    fig3_spec,
    mod3_counter_pair,
    onehot_ring_pair,
)
from .induction_hard import onehot_chain_pair
from .generators import (
    DATAPATH_FAMILIES,
    add_control_fsm,
    add_counter,
    add_lfsr,
    add_multiplier_mixer,
    add_output_cone,
    add_shift_chain,
    datapath_pair,
    delay_line_pair,
    generate_benchmark,
)
from .suite import TABLE1_ROWS, SuiteRow, row_by_name, table1_suite

__all__ = [
    "DATAPATH_FAMILIES",
    "TABLE1_ROWS",
    "SuiteRow",
    "add_control_fsm",
    "datapath_pair",
    "add_counter",
    "add_lfsr",
    "add_multiplier_mixer",
    "add_output_cone",
    "add_shift_chain",
    "delay_line_pair",
    "fig2_impl",
    "fig2_pair",
    "fig2_spec",
    "fig3_impl",
    "fig3_pair",
    "fig3_spec",
    "generate_benchmark",
    "mod3_counter_pair",
    "onehot_chain_pair",
    "onehot_ring_pair",
    "row_by_name",
    "table1_suite",
]
