"""Induction stress pairs: correspondence-inconclusive, induction-provable.

:func:`onehot_chain_pair` composes the §6 one-hot ring witness with a pair
of duplicated register chains fed by the same input.  The ring keeps the
pair out of signal correspondence's reach (one-hotness is not a conjunction
of signal equivalences), while the chains control the *induction depth*:

* plain k-induction must unroll until the simple-path constraints exclude a
  phantom mismatch shifting down the duplicated chains — proof depth grows
  with the chain length ``m``;
* with the correspondence partition as a strengthening invariant the
  chain-stage equalities ``x_i == y_i`` are 1-inductive as a set, the
  phantom paths vanish, and the proof depth collapses to the ring's
  simple-path diameter (3).

This is the benchmark family demonstrating that partition strengthening
lowers the proof depth, not just the solver effort.
"""

from ..netlist.circuit import Circuit, GateType


def onehot_chain_pair(m=6):
    """A one-hot ring composed with duplicated ``m``-stage shift chains.

    The specification outputs constant 1.  The implementation outputs
    ``¬(a·b) AND (x_m == y_m)`` where (a, b, c) is the free-running one-hot
    ring and ``x_1..x_m`` / ``y_1..y_m`` are two copies of a shift chain
    loading the shared input ``w`` — reachable-state equivalent, but
    inconclusive for the bare correspondence fixed point.
    """
    if m < 1:
        raise ValueError("chain length m must be >= 1")
    spec = Circuit("chain_spec")
    spec.add_input("w")
    spec.add_gate("one", GateType.CONST1, [])
    spec.add_output("one")
    spec.validate()

    impl = Circuit("chain_impl")
    impl.add_input("w")
    for reg, src, init in (("a", "c", True), ("b", "a", False),
                           ("c", "b", False)):
        impl.add_register(reg, src, init=init)
    impl.add_gate("g", GateType.AND, ["a", "b"])
    impl.add_gate("ring_ok", GateType.NOT, ["g"])
    for prefix in ("x", "y"):
        prev = "w"
        for i in range(1, m + 1):
            name = "{}{}".format(prefix, i)
            impl.add_register(name, prev, init=False)
            prev = name
    impl.add_gate("tails_eq", GateType.XNOR,
                  ["x{}".format(m), "y{}".format(m)])
    impl.add_gate("out", GateType.AND, ["ring_ok", "tails_eq"])
    impl.add_output("out")
    impl.validate()
    return spec, impl
