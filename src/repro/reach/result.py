"""Result records shared by both SEC methods (traversal and van Eijk)."""


class CexTrace:
    """An input sequence demonstrating inequivalence.

    ``inputs`` drives the product machine from the initial state to the
    distinguishing state; ``final_input`` is the input vector under which
    some output pair differs there.  ``state`` records the product state (for
    diagnostics; it is implied by the inputs).
    """

    def __init__(self, inputs, final_input, state=None):
        self.inputs = list(inputs)
        self.final_input = dict(final_input)
        self.state = dict(state or {})

    @property
    def length(self):
        return len(self.inputs) + 1

    def full_sequence(self):
        """Input vectors frame by frame, including the distinguishing frame."""
        return self.inputs + [self.final_input]

    def as_dict(self):
        """JSON-serializable form (net values become 0/1 integers)."""
        return {
            "inputs": [
                {net: int(v) for net, v in frame.items()} for frame in self.inputs
            ],
            "final_input": {net: int(v) for net, v in self.final_input.items()},
            "state": {net: int(v) for net, v in self.state.items()},
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            inputs=[
                {net: bool(v) for net, v in frame.items()}
                for frame in data.get("inputs", [])
            ],
            final_input={
                net: bool(v) for net, v in data.get("final_input", {}).items()
            },
            state={net: bool(v) for net, v in data.get("state", {}).items()},
        )

    def __repr__(self):
        return "CexTrace(length={})".format(self.length)


class SecResult:
    """Outcome of one sequential equivalence check.

    ``equivalent`` is True (proved), False (refuted, with counterexample) or
    None — the method gave up: resource budget for traversal, or
    *inconclusive* for the (sound but incomplete) signal-correspondence
    method.
    """

    def __init__(self, equivalent, method, iterations=None, peak_nodes=None,
                 seconds=None, counterexample=None, details=None):
        self.equivalent = equivalent
        self.method = method
        self.iterations = iterations
        self.peak_nodes = peak_nodes
        self.seconds = seconds
        self.counterexample = counterexample
        self.details = details or {}

    @property
    def proved(self):
        return self.equivalent is True

    @property
    def refuted(self):
        return self.equivalent is False

    @property
    def inconclusive(self):
        return self.equivalent is None

    def as_dict(self):
        """JSON-serializable form — the one serialization shared by the
        ``--json`` CLI mode, the result cache and the service event log."""
        verdict = {True: "equivalent", False: "inequivalent", None: "undecided"}[
            self.equivalent
        ]
        return {
            "verdict": verdict,
            "equivalent": self.equivalent,
            "method": self.method,
            "iterations": self.iterations,
            "peak_nodes": self.peak_nodes,
            "seconds": self.seconds,
            "counterexample": (
                None if self.counterexample is None else self.counterexample.as_dict()
            ),
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data):
        cex = data.get("counterexample")
        return cls(
            equivalent=data.get("equivalent"),
            method=data.get("method"),
            iterations=data.get("iterations"),
            peak_nodes=data.get("peak_nodes"),
            seconds=data.get("seconds"),
            counterexample=None if cex is None else CexTrace.from_dict(cex),
            details=dict(data.get("details") or {}),
        )

    def __repr__(self):
        verdict = {True: "EQUIVALENT", False: "INEQUIVALENT", None: "UNDECIDED"}[
            self.equivalent
        ]
        return "SecResult({}, method={}, its={}, nodes={}, {:.3f}s)".format(
            verdict,
            self.method,
            self.iterations,
            self.peak_nodes,
            self.seconds if self.seconds is not None else float("nan"),
        )
