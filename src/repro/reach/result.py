"""Result records shared by both SEC methods (traversal and van Eijk)."""


class CexTrace:
    """An input sequence demonstrating inequivalence.

    ``inputs`` drives the product machine from the initial state to the
    distinguishing state; ``final_input`` is the input vector under which
    some output pair differs there.  ``state`` records the product state (for
    diagnostics; it is implied by the inputs).
    """

    def __init__(self, inputs, final_input, state=None):
        self.inputs = list(inputs)
        self.final_input = dict(final_input)
        self.state = dict(state or {})

    @property
    def length(self):
        return len(self.inputs) + 1

    def full_sequence(self):
        """Input vectors frame by frame, including the distinguishing frame."""
        return self.inputs + [self.final_input]

    def __repr__(self):
        return "CexTrace(length={})".format(self.length)


class SecResult:
    """Outcome of one sequential equivalence check.

    ``equivalent`` is True (proved), False (refuted, with counterexample) or
    None — the method gave up: resource budget for traversal, or
    *inconclusive* for the (sound but incomplete) signal-correspondence
    method.
    """

    def __init__(self, equivalent, method, iterations=None, peak_nodes=None,
                 seconds=None, counterexample=None, details=None):
        self.equivalent = equivalent
        self.method = method
        self.iterations = iterations
        self.peak_nodes = peak_nodes
        self.seconds = seconds
        self.counterexample = counterexample
        self.details = details or {}

    @property
    def proved(self):
        return self.equivalent is True

    @property
    def refuted(self):
        return self.equivalent is False

    @property
    def inconclusive(self):
        return self.equivalent is None

    def __repr__(self):
        verdict = {True: "EQUIVALENT", False: "INEQUIVALENT", None: "UNDECIDED"}[
            self.equivalent
        ]
        return "SecResult({}, method={}, its={}, nodes={}, {:.3f}s)".format(
            verdict,
            self.method,
            self.iterations,
            self.peak_nodes,
            self.seconds if self.seconds is not None else float("nan"),
        )
