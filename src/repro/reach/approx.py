"""Approximate reachability (machine-by-machine traversal, Cho et al. [4]).

Registers are partitioned into blocks; each block is traversed as its own
sub-machine with all other state variables and inputs treated as free.  The
conjunction of the per-block reached sets is an *upper bound* of the exact
reachable state space — exactly the kind of approximation §3 of the paper
suggests for strengthening the correspondence condition with sequential
don't cares.
"""

from ..errors import ReproError
from ..netlist.cones import register_blocks


def approximate_reachable(ts, max_block=6, passes=1, max_iterations=1000):
    """Over-approximate the reachable states of a transition system.

    Returns a BDD over the system's current-state variables.  ``passes > 1``
    re-runs the per-block traversals constraining the environment with the
    previous approximation (a cheap refinement).
    """
    mgr = ts.manager
    blocks = register_blocks(ts.circuit, max_block=max_block)
    approx = mgr.true
    approx_token = mgr.register_root(approx)
    quantifiable = ts.state_var_ids() | ts.input_var_ids()
    try:
        for _ in range(max(1, passes)):
            per_block = []
            for block in blocks:
                per_block.append(
                    _block_reachable(ts, block, approx, quantifiable,
                                     max_iterations)
                )
            approx = mgr.and_many(per_block)
            mgr.update_root(approx_token, approx)
        return approx
    finally:
        mgr.release_root(approx_token)


def _block_reachable(ts, block, environment, quantifiable, max_iterations):
    mgr = ts.manager
    relation = mgr.and_many(
        mgr.apply_xnor(mgr.var_edge(ts.nxt_id[name]), ts.delta[name])
        for name in block
    )
    rel_token = mgr.register_root(relation)
    rename = {ts.nxt_id[name]: ts.cur_id[name] for name in block}
    init_cube = mgr.cube(
        {ts.cur_id[name]: ts.circuit.registers[name].init for name in block}
    )
    reached = init_cube
    frontier = init_cube
    reached_token = mgr.register_root(reached)
    try:
        for _ in range(max_iterations):
            if frontier == mgr.false:
                break
            constrained = mgr.apply_and(frontier, environment)
            image = mgr.and_exists(constrained, relation, quantifiable)
            image = mgr.rename_vars(image, rename)
            frontier = mgr.apply_and(image, mgr.apply_not(reached))
            reached = mgr.apply_or(reached, image)
            mgr.update_root(reached_token, reached)
        else:
            raise ReproError("block traversal did not converge")
        return reached
    finally:
        mgr.release_root(reached_token)
        mgr.release_root(rel_token)
