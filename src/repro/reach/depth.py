"""Sequential depth analysis.

The sequential depth (the BFS diameter of the reachable state graph) is
what makes traversal-based SEC intractable on the fraction-counter family
(s208/s420/s838): each BFS step discovers one new state, so the iteration
count equals the depth.  These helpers measure it — exactly for small
circuits, symbolically up to a budget otherwise — and are used by the
experiment reports.
"""

from ..errors import ResourceBudgetExceeded
from .transition import TransitionSystem
from .explicit import explicit_reachable


def sequential_depth_explicit(circuit, max_states=1 << 16, max_inputs=12):
    """Exact sequential depth by explicit BFS (small circuits)."""
    _, depth = explicit_reachable(circuit, max_states=max_states,
                                  max_inputs=max_inputs)
    return depth


def sequential_depth_symbolic(circuit, max_iterations=10000,
                              node_limit=None):
    """Sequential depth by symbolic BFS; returns (depth, exact_flag).

    When the iteration budget is exhausted the returned depth is a lower
    bound and ``exact_flag`` is False.
    """
    ts = TransitionSystem(circuit, node_limit=node_limit)
    mgr = ts.manager
    reached = ts.initial_states()
    frontier = reached
    reached_token = mgr.register_root(reached)
    frontier_token = mgr.register_root(frontier)
    depth = 0
    try:
        while frontier != mgr.false:
            if depth >= max_iterations:
                return depth, False
            image = ts.image(frontier)
            frontier = mgr.apply_and(image, mgr.apply_not(reached))
            reached = mgr.apply_or(reached, image)
            mgr.update_root(reached_token, reached)
            mgr.update_root(frontier_token, frontier)
            if frontier != mgr.false:
                depth += 1
        return depth, True
    finally:
        mgr.release_root(reached_token)
        mgr.release_root(frontier_token)


def depth_report(circuit, symbolic_budget=2000):
    """Dict report: registers, depth (exact or bound), reachable count."""
    result = {"registers": circuit.num_registers}
    try:
        depth, exact = sequential_depth_symbolic(
            circuit, max_iterations=symbolic_budget
        )
        result["depth"] = depth
        result["depth_exact"] = exact
    except ResourceBudgetExceeded:
        result["depth"] = None
        result["depth_exact"] = False
    return result
