"""Explicit-state breadth-first reachability — the test oracle.

Feasible only for small circuits (the per-state input enumeration is
exhaustive), but completely independent of the BDD machinery, which is what
makes it a trustworthy oracle for the symbolic engines.
"""

from ..errors import ResourceBudgetExceeded, VerificationError
from ..netlist.simulate import bit_parallel_eval
from .result import CexTrace, SecResult


def _input_pattern_words(inputs):
    """Truth-table masks: input i toggles with period 2^i over all patterns."""
    width = 1 << len(inputs)
    words = {}
    for i, net in enumerate(inputs):
        word = 0
        for pattern in range(width):
            if (pattern >> i) & 1:
                word |= 1 << pattern
        words[net] = word
    return words, width


def explicit_reachable(circuit, max_states=1 << 16, max_inputs=12):
    """BFS enumeration of reachable states.

    Returns ``(states, depth)`` where ``states`` is a set of register-value
    tuples ordered like ``list(circuit.registers)``.
    """
    circuit.validate()
    if len(circuit.inputs) > max_inputs:
        raise VerificationError(
            "explicit oracle limited to {} inputs".format(max_inputs)
        )
    regs = list(circuit.registers)
    words, width = _input_pattern_words(circuit.inputs)
    full = (1 << width) - 1
    init = tuple(circuit.registers[r].init for r in regs)
    seen = {init}
    frontier = [init]
    depth = 0
    while frontier:
        next_frontier = []
        for state in frontier:
            env = dict(words)
            for name, value in zip(regs, state):
                env[name] = full if value else 0
            values = bit_parallel_eval(circuit, env, width)
            data = [values[circuit.registers[r].data_in] for r in regs]
            for pattern in range(width):
                succ = tuple(bool((d >> pattern) & 1) for d in data)
                if succ not in seen:
                    seen.add(succ)
                    if len(seen) > max_states:
                        raise ResourceBudgetExceeded(
                            "explicit state budget exceeded"
                        )
                    next_frontier.append(succ)
        frontier = next_frontier
        if frontier:
            depth += 1
    return seen, depth


def explicit_check_equivalence(product, max_states=1 << 16, max_inputs=12):
    """Oracle SEC on a product machine; returns a :class:`SecResult`."""
    circuit = product.circuit
    circuit.validate()
    if len(circuit.inputs) > max_inputs:
        raise VerificationError(
            "explicit oracle limited to {} inputs".format(max_inputs)
        )
    regs = list(circuit.registers)
    words, width = _input_pattern_words(circuit.inputs)
    full = (1 << width) - 1
    init = tuple(circuit.registers[r].init for r in regs)
    parents = {init: None}  # state -> (predecessor, input_assignment)
    frontier = [init]
    iterations = 0
    while frontier:
        iterations += 1
        next_frontier = []
        for state in frontier:
            env = dict(words)
            for name, value in zip(regs, state):
                env[name] = full if value else 0
            values = bit_parallel_eval(circuit, env, width)
            # Output check under every input.
            for s_out, i_out in product.output_pairs:
                mismatch = values[s_out] ^ values[i_out]
                if mismatch:
                    pattern = (mismatch & -mismatch).bit_length() - 1
                    final_input = {
                        net: bool((pattern >> i) & 1)
                        for i, net in enumerate(circuit.inputs)
                    }
                    trace = _backtrace(parents, state, circuit.inputs)
                    return SecResult(
                        equivalent=False,
                        method="explicit",
                        iterations=iterations,
                        counterexample=CexTrace(
                            inputs=trace,
                            final_input=final_input,
                            state=dict(zip(regs, state)),
                        ),
                    )
            data = [values[circuit.registers[r].data_in] for r in regs]
            for pattern in range(width):
                succ = tuple(bool((d >> pattern) & 1) for d in data)
                if succ not in parents:
                    if len(parents) >= max_states:
                        raise ResourceBudgetExceeded(
                            "explicit state budget exceeded"
                        )
                    parents[succ] = (
                        state,
                        {
                            net: bool((pattern >> i) & 1)
                            for i, net in enumerate(circuit.inputs)
                        },
                    )
                    next_frontier.append(succ)
        frontier = next_frontier
    return SecResult(
        equivalent=True,
        method="explicit",
        iterations=iterations,
        details={"reached_states": len(parents)},
    )


def _backtrace(parents, state, inputs):
    trace = []
    current = state
    while parents[current] is not None:
        predecessor, input_assignment = parents[current]
        trace.append(input_assignment)
        current = predecessor
    trace.reverse()
    return trace
