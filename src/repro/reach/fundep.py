"""Register correspondence and functional dependencies.

Two pieces of prior work the paper builds on and compares against:

* *Register correspondence* ([5] van Eijk & Jess, [9] Filkorn): the greatest
  fixed point over register state variables only — the specialization of the
  paper's signal correspondence to registers.  Used here to reduce the
  product machine before symbolic traversal (the functional-dependency
  baseline [6] of Table 1).
* *Functional dependency detection on a reached set* ([6]): a state variable
  is functionally determined by the others within a state set when no two
  states of the set differ only in that variable.
"""

from ..netlist.circuit import GateType
from .transition import TransitionSystem


def register_correspondence(circuit, manager=None):
    """Greatest fixed point of equivalent/antivalent registers.

    Returns ``{register: (representative, inverted)}`` for every register;
    representatives map to themselves with ``inverted=False``.  Registers are
    normalized by their initial values, so a register that always carries the
    complement of another is detected as antivalent (``inverted=True``).
    """
    ts = TransitionSystem(circuit, manager=manager)
    mgr = ts.manager
    regs = list(circuit.registers)
    if not regs:
        return {}, ts
    init = {r: circuit.registers[r].init for r in regs}
    # All registers start in one class: their polarity-normalized functions
    # are identically 1 in the initial state (T0 over constant functions).
    classes = [list(regs)]
    while True:
        # Substitution: every register variable is replaced by (possibly
        # complemented) representative literal.
        substitution = {}
        for cls in classes:
            rep = cls[0]
            rep_edge = mgr.var_edge(ts.cur_id[rep])
            for member in cls:
                edge = rep_edge
                if init[member] != init[rep]:
                    edge = mgr.apply_not(rep_edge)
                substitution[ts.cur_id[member]] = edge
        new_classes = []
        changed = False
        for cls in classes:
            buckets = []
            for member in cls:
                delta = mgr.vector_compose(ts.delta[member], substitution)
                if not init[member]:
                    # Compare polarity-normalized next-state functions.
                    delta = mgr.apply_not(delta)
                placed = False
                for key, bucket in buckets:
                    if key == delta:
                        bucket.append(member)
                        placed = True
                        break
                if not placed:
                    buckets.append((delta, [member]))
            if len(buckets) > 1:
                changed = True
            new_classes.extend(bucket for _, bucket in buckets)
        classes = new_classes
        if not changed:
            break
    mapping = {}
    for cls in classes:
        rep = cls[0]
        for member in cls:
            mapping[member] = (rep, init[member] != init[rep])
    return mapping, ts


def reduce_by_register_correspondence(product):
    """Substitute corresponding registers away in the product circuit.

    Returns ``(reduced_circuit, merged_count, net_map)``; ``net_map`` sends
    every merged register to its replacement net (identity for everything
    else), so callers can remap output pairs.  Sound: members of a
    correspondence class are sequentially equivalent (or antivalent), so
    every read of a non-representative register can be redirected to (the
    complement of) its representative, after which the register is dead.
    """
    circuit = product.circuit.copy()
    mapping, _ = register_correspondence(circuit)
    merged = 0
    net_map = {}
    for member, (rep, inverted) in mapping.items():
        if member == rep:
            continue
        if inverted:
            inv = circuit.fresh_name("rc_not_{}".format(rep))
            circuit.add_gate(inv, GateType.NOT, [rep])
            replacement = inv
        else:
            replacement = rep
        circuit.replace_fanin(member, replacement)
        del circuit.registers[member]
        net_map[member] = replacement
        merged += 1
    circuit._topo_cache = None
    from ..transform.optimize import sweep

    # Keep all original outputs alive; sweep only removes dead state.
    reduced = sweep(circuit)
    reduced.validate()
    return reduced, merged, net_map


def functional_dependencies(manager, state_set, var_ids):
    """Variables functionally determined by the others within ``state_set``.

    Returns ``{var_id: function_edge}`` where the function (over the other
    variables) agrees with the variable on every state of the set.  This is
    the dependency analysis of [6], used to shrink traversal state.
    """
    result = {}
    for var in var_ids:
        pos = manager.restrict(state_set, {var: True})
        neg = manager.restrict(state_set, {var: False})
        if manager.apply_and(pos, neg) == manager.false:
            result[var] = pos
    return result
