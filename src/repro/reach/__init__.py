"""Symbolic and explicit reachability: the traversal baseline and oracles."""

from .result import CexTrace, SecResult
from .transition import TransitionSystem
from .traversal import check_equivalence_traversal, symbolic_reachability
from .fundep import (
    functional_dependencies,
    reduce_by_register_correspondence,
    register_correspondence,
)
from .approx import approximate_reachable
from .explicit import explicit_check_equivalence, explicit_reachable
from .depth import depth_report, sequential_depth_explicit, sequential_depth_symbolic

__all__ = [
    "CexTrace",
    "SecResult",
    "TransitionSystem",
    "approximate_reachable",
    "depth_report",
    "sequential_depth_explicit",
    "sequential_depth_symbolic",
    "check_equivalence_traversal",
    "explicit_check_equivalence",
    "explicit_reachable",
    "functional_dependencies",
    "reduce_by_register_correspondence",
    "register_correspondence",
    "symbolic_reachability",
]
