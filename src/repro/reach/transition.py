"""Symbolic transition system: BDD variables, next-state functions, and a
partitioned transition relation with early quantification.

Variable order: the netlist's static order over inputs and registers, with
each register's next-state variable placed directly after its current-state
variable — the standard interleaving for image computation.
"""

from ..bdd import BddManager
from ..netlist.bddnet import build_bdds
from ..netlist.cones import static_variable_order


class TransitionSystem:
    """BDD-level view of a sequential circuit.

    Exposes per-net BDDs over (state, input) variables, the initial-state
    cube, clustered transition relations, and forward image computation.
    """

    def __init__(self, circuit, manager=None, node_limit=None, cluster_size=4):
        circuit.validate()
        self.circuit = circuit
        self.manager = manager if manager is not None else BddManager(node_limit)
        mgr = self.manager
        self.cur_id = {}
        self.nxt_id = {}
        self.in_id = {}
        leaves = {}
        for net in static_variable_order(circuit):
            if net in circuit.registers:
                cur = mgr.add_var("s.{}".format(net))
                nxt = mgr.add_var("ns.{}".format(net))
                self.cur_id[net] = mgr.var_of(cur)
                self.nxt_id[net] = mgr.var_of(nxt)
                leaves[net] = cur
            else:
                edge = mgr.add_var("x.{}".format(net))
                self.in_id[net] = mgr.var_of(edge)
                leaves[net] = edge
        self.leaves = leaves
        # All net functions over (current state, inputs).
        self.values = build_bdds(circuit, mgr, leaves)
        self.delta = {
            name: self.values[reg.data_in]
            for name, reg in circuit.registers.items()
        }
        self._build_clusters(cluster_size)
        self._nxt_to_cur = {
            self.nxt_id[net]: self.cur_id[net] for net in self.cur_id
        }
        for edge in list(self.delta.values()):
            mgr.register_root(edge)

    # -- basic objects ----------------------------------------------------

    def initial_states(self):
        """Cube BDD of the single initial state s0 (over current vars)."""
        return self.manager.cube(
            {
                self.cur_id[name]: reg.init
                for name, reg in self.circuit.registers.items()
            }
        )

    def state_var_ids(self):
        return set(self.cur_id.values())

    def input_var_ids(self):
        return set(self.in_id.values())

    def net_bdd(self, net):
        """BDD of any net over (state, input) variables."""
        return self.values[net]

    # -- transition relation ------------------------------------------------

    def _build_clusters(self, cluster_size):
        mgr = self.manager
        relations = []
        for name in self.circuit.registers:
            nxt = mgr.var_edge(self.nxt_id[name])
            relations.append(mgr.apply_xnor(nxt, self.delta[name]))
        clusters = []
        for i in range(0, len(relations), max(1, cluster_size)):
            chunk = relations[i:i + cluster_size]
            clusters.append(mgr.and_many(chunk))
        self.clusters = clusters
        for edge in clusters:
            mgr.register_root(edge)
        # Early-quantification schedule: a (state or input) variable is
        # quantified at the last cluster whose support mentions it.
        quantifiable = self.state_var_ids() | self.input_var_ids()
        last_seen = {}
        for idx, cluster in enumerate(clusters):
            for var in mgr.support(cluster) & quantifiable:
                last_seen[var] = idx
        self.schedule = [set() for _ in clusters]
        for var, idx in last_seen.items():
            self.schedule[idx].add(var)
        self.unconstrained = quantifiable - set(last_seen)

    def image(self, states):
        """Forward image: states reachable in one step from ``states``.

        Input and output are BDDs over current-state variables.
        """
        mgr = self.manager
        current = states
        if self.unconstrained:
            current = mgr.exists(current, self.unconstrained)
        for cluster, qvars in zip(self.clusters, self.schedule):
            current = mgr.and_exists(current, cluster, qvars)
        return mgr.rename_vars(current, self._nxt_to_cur)

    def successor_constraint(self, target_assignment):
        """BDD over (s, x) of transitions into the given concrete next state.

        ``target_assignment`` maps register names to booleans; used for
        counterexample trace reconstruction.
        """
        mgr = self.manager
        literals = []
        for name, value in target_assignment.items():
            delta = self.delta[name]
            literals.append(delta if value else mgr.apply_not(delta))
        return mgr.and_many(literals)

    def state_assignment_from_model(self, model):
        """Extract ``{register: bool}`` from a BDD model over current vars."""
        return {
            name: model.get(var, False)
            for name, var in self.cur_id.items()
        }

    def input_assignment_from_model(self, model):
        return {
            name: model.get(var, False)
            for name, var in self.in_id.items()
        }
