"""Symbolic forward traversal of the product machine — the conventional
sequential equivalence checking algorithm the paper compares against.

``check_equivalence_traversal`` implements the baseline of Table 1's
"symbolic traversal" columns: breadth-first symbolic reachability with a
partitioned transition relation, an output check on every frontier, optional
register-correspondence reduction (the functional-dependency exploitation of
[6]), and time/node budgets mirroring the paper's 3600 s / 100 MB limits.
"""

import time

from ..errors import NodeLimitExceeded, ResourceBudgetExceeded
from .transition import TransitionSystem
from .result import SecResult, CexTrace


def symbolic_reachability(ts, max_iterations=None, deadline=None,
                          frontier_hook=None, rings_out=None):
    """BFS fixpoint; returns (reached_bdd, rings, iterations).

    ``rings`` is the list of onion rings (new states per step, ring 0 being
    the initial state) needed for counterexample reconstruction.  When
    ``rings_out`` (a list) is given, rings are appended to it as they are
    discovered, so they survive an abort raised from ``frontier_hook``.
    """
    mgr = ts.manager
    reached = ts.initial_states()
    frontier = reached
    rings = rings_out if rings_out is not None else []
    rings.append(frontier)
    reached_token = mgr.register_root(reached)
    frontier_token = mgr.register_root(frontier)
    iterations = 0
    try:
        while frontier != mgr.false:
            if frontier_hook is not None:
                frontier_hook(frontier, iterations)
            if max_iterations is not None and iterations >= max_iterations:
                raise ResourceBudgetExceeded(
                    "reachability iteration budget exhausted"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise ResourceBudgetExceeded("reachability time budget exhausted")
            image = ts.image(frontier)
            frontier = mgr.apply_and(image, mgr.apply_not(reached))
            reached = mgr.apply_or(reached, image)
            mgr.update_root(reached_token, reached)
            mgr.update_root(frontier_token, frontier)
            if frontier != mgr.false:
                rings.append(frontier)
                mgr.register_root(frontier)
            iterations += 1
        return reached, rings, iterations
    finally:
        mgr.release_root(reached_token)
        mgr.release_root(frontier_token)


def check_equivalence_traversal(product, use_register_correspondence=True,
                                node_limit=None, time_limit=None,
                                cluster_size=4, max_iterations=None,
                                progress=None, cancel_check=None):
    """Full SEC by product-machine state space traversal.

    Returns a :class:`SecResult`.  With ``use_register_correspondence`` the
    product machine is first reduced by substituting equivalent/antivalent
    registers ([5]/[9]/[6]); without it the traversal runs on the raw
    product (the paper notes this variant "performs considerably worse").

    ``progress(kind, **data)`` fires once per BFS ring; ``cancel_check()``
    is polled at the same cadence and aborts the traversal with an
    inconclusive ("cancelled") result.
    """
    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    circuit = product.circuit
    pairs = list(product.output_pairs)
    reduction_classes = 0
    if use_register_correspondence:
        from .fundep import reduce_by_register_correspondence

        circuit, merged, net_map = reduce_by_register_correspondence(product)
        reduction_classes = merged
        pairs = [
            (net_map.get(s_out, s_out), net_map.get(i_out, i_out))
            for s_out, i_out in pairs
        ]
    try:
        ts = TransitionSystem(circuit, node_limit=node_limit,
                              cluster_size=cluster_size)
        mgr = ts.manager
        diff = mgr.or_many(
            mgr.apply_xor(ts.net_bdd(s_out), ts.net_bdd(i_out))
            for s_out, i_out in pairs
        )
        mgr.register_root(diff)
        bad_states = mgr.exists(diff, ts.input_var_ids())
        mgr.register_root(bad_states)

        failure = {}
        rings_out = []

        def frontier_hook(frontier, iteration):
            if cancel_check is not None and cancel_check():
                raise ResourceBudgetExceeded("cancelled")
            if progress is not None:
                progress("ring", iteration=iteration,
                         nodes=mgr.peak_live_nodes)
            hit = mgr.apply_and(frontier, bad_states)
            if hit != mgr.false:
                failure["state"] = hit
                failure["iteration"] = iteration
                failure["rings"] = rings_out[: iteration + 1]
                raise _BadStateFound()

        try:
            reached, rings, iterations = symbolic_reachability(
                ts,
                max_iterations=max_iterations,
                deadline=deadline,
                frontier_hook=frontier_hook,
                rings_out=rings_out,
            )
        except _BadStateFound:
            trace = _reconstruct_trace(ts, mgr, failure, diff)
            return SecResult(
                equivalent=False,
                method="traversal",
                iterations=failure["iteration"] + 1,
                peak_nodes=mgr.peak_live_nodes,
                seconds=time.monotonic() - start,
                counterexample=trace,
                details={"register_classes_merged": reduction_classes},
            )
        return SecResult(
            equivalent=True,
            method="traversal",
            iterations=iterations,
            peak_nodes=mgr.peak_live_nodes,
            seconds=time.monotonic() - start,
            details={
                "register_classes_merged": reduction_classes,
                "reached_states": mgr.sat_count(
                    mgr.exists(reached, ts.input_var_ids()),
                    nvars=mgr.num_vars,
                ) // (2 ** (mgr.num_vars - len(ts.cur_id)))
                if ts.cur_id else 1,
            },
        )
    except (NodeLimitExceeded, ResourceBudgetExceeded) as exc:
        return SecResult(
            equivalent=None,
            method="traversal",
            iterations=None,
            peak_nodes=None,
            seconds=time.monotonic() - start,
            details={"aborted": str(exc)},
        )


class _BadStateFound(Exception):
    pass


def _reconstruct_trace(ts, mgr, failure, diff):
    """Build an input trace from s0 to a distinguishing state + input."""
    # Choose one concrete failing state, preferring a distinguishing input.
    hit = failure["state"]
    model = mgr.pick_one(mgr.apply_and(hit, diff)) or mgr.pick_one(hit)
    state = ts.state_assignment_from_model(model)
    final_input = ts.input_assignment_from_model(model)
    # Walk the onion rings backwards.  failure["iteration"] gives the ring
    # index of the hit; rings for earlier indices are reachable via the
    # recorded frontier BDDs, which symbolic_reachability stored as roots.
    rings = failure.get("rings")
    inputs = []
    if rings:
        target = state
        for ring in reversed(rings[:-1]):
            constraint = ts.successor_constraint(target)
            model = mgr.pick_one(mgr.apply_and(ring, constraint))
            if model is None:
                break
            inputs.append(ts.input_assignment_from_model(model))
            target = ts.state_assignment_from_model(model)
        inputs.reverse()
    return CexTrace(inputs=inputs, final_input=final_input, state=state)
