"""Remote client for the verification daemon (:mod:`repro.server`).

:class:`ServerClient` is a thin stdlib-only (``urllib``) HTTP client with
retry/backoff: transient failures — connection errors, 5xx responses and
``429`` rate-limit/backpressure rejections (honouring ``Retry-After``) —
are retried with exponential backoff before surfacing as
:class:`ServerError`.  :meth:`ServerClient.events` iterates a job's
Server-Sent-Events progress stream as live
:class:`~repro.service.events.Event` dicts.

:class:`RemoteScheduler` adapts the client to the
:class:`~repro.service.scheduler.BatchScheduler` interface (``run(jobs) ->
[JobResult]``), so anything built on the local scheduler — the fuzz
harness, ``eval/table1.py``, ``repro-sec batch`` — can target a remote
daemon unchanged via ``--server URL``.
"""

import json
import time
import urllib.error
import urllib.request

from .errors import ReproError
from .netlist import bench
from .server.httpd import parse_sse_stream
from .service.events import (
    EventBus,
    JOB_CACHED,
    JOB_FINISHED,
    JOB_QUEUED,
)
from .service.job import JobResult

#: HTTP statuses worth retrying: backpressure and transient server trouble.
_RETRYABLE_STATUSES = (429, 500, 502, 503, 504)


class ServerError(ReproError):
    """A request that failed after exhausting retries."""

    def __init__(self, message, status=None):
        super(ServerError, self).__init__(message)
        self.status = status


def job_payload(spec, impl, name=None, method="van_eijk", options=None,
                match_inputs="name", match_outputs="order", tags=None):
    """Serialize a circuit pair into a daemon submission payload."""
    return {
        "name": name or spec.name or "job",
        "spec_bench": bench.dumps(spec),
        "impl_bench": bench.dumps(impl),
        "method": method,
        "options": dict(options or {}),
        "match_inputs": match_inputs,
        "match_outputs": match_outputs,
        "tags": dict(tags or {}),
    }


class ServerClient:
    """One daemon endpoint; every method retries transient failures."""

    def __init__(self, base_url, timeout=30.0, retries=4, backoff=0.25,
                 backoff_cap=4.0, sleep=time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.sleep = sleep

    # -- transport ----------------------------------------------------------

    def _request(self, method, path, body=None, stream=False, timeout=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data,
                                             headers=dict(headers),
                                             method=method)
            try:
                response = urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None
                    else timeout)
                if stream:
                    return response
                with response:
                    payload = response.read()
                return json.loads(payload.decode("utf-8")) if payload else {}
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code not in _RETRYABLE_STATUSES:
                    raise ServerError("{} {} -> {}: {}".format(
                        method, path, exc.code, detail), status=exc.code)
                last_error = ServerError("{} {} -> {}: {}".format(
                    method, path, exc.code, detail), status=exc.code)
                delay = self._delay(attempt, exc.headers.get("Retry-After"))
            except (urllib.error.URLError, ConnectionError, OSError,
                    ValueError) as exc:
                last_error = ServerError("{} {} failed: {}".format(
                    method, path, exc))
                delay = self._delay(attempt, None)
            if attempt < self.retries:
                self.sleep(delay)
        raise last_error

    @staticmethod
    def _error_detail(exc):
        try:
            payload = exc.read().decode("utf-8")
            return json.loads(payload).get("error", payload)
        except Exception:
            return exc.reason

    def _delay(self, attempt, retry_after):
        delay = min(self.backoff_cap, self.backoff * (2 ** attempt))
        if retry_after:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return delay

    # -- API ----------------------------------------------------------------

    def healthz(self):
        return self._request("GET", "/v1/healthz")

    def stats(self):
        return self._request("GET", "/v1/stats")

    def submit_payload(self, payload):
        """Submit one raw payload dict; returns the job id."""
        return self._request("POST", "/v1/jobs", body=payload)["id"]

    def submit_payloads(self, payloads):
        """Submit many payloads in one request; returns the id list."""
        return self._request("POST", "/v1/jobs",
                             body={"jobs": list(payloads)})["ids"]

    def submit(self, spec, impl, **kwargs):
        """Submit a circuit pair (see :func:`job_payload`); returns the id."""
        return self.submit_payload(job_payload(spec, impl, **kwargs))

    def submit_suite(self, row, name=None, method="van_eijk", options=None,
                     optimize_level=2):
        """Submit a named Table-1 suite row built server-side."""
        return self.submit_payload({
            "name": name or row, "suite": row, "method": method,
            "options": dict(options or {}),
            "optimize_level": optimize_level,
        })

    def job(self, job_id):
        return self._request("GET", "/v1/jobs/{}".format(job_id))

    def jobs(self):
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id):
        return self._request("DELETE", "/v1/jobs/{}".format(job_id))

    def wait(self, job_id, poll=0.2, timeout=None):
        """Poll until the job is terminal; returns the final record dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "cancelled", "error"):
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServerError("timed out waiting for job {}".format(
                    job_id))
            self.sleep(poll)

    def result(self, job_id, poll=0.2, timeout=None):
        """Wait for the job and return its :class:`JobResult`."""
        record = self.wait(job_id, poll=poll, timeout=timeout)
        return remote_job_result(record)

    def events(self, job_id, timeout=None):
        """Yield the job's event dicts from its SSE stream, live.

        Replays the job's history first, then streams until the terminal
        ``done`` event — whose payload is the final job record and which is
        yielded last as ``{"type": "done", "record": ...}``.
        """
        response = self._request(
            "GET", "/v1/jobs/{}/events".format(job_id), stream=True,
            timeout=timeout)
        with response:
            lines = (raw.decode("utf-8", "replace") for raw in response)
            for event_type, data in parse_sse_stream(lines):
                payload = json.loads(data)
                if event_type == "done":
                    yield {"type": "done", "record": payload}
                    return
                yield payload


def remote_job_result(record):
    """Map a terminal daemon job record onto a local :class:`JobResult`."""
    data = record.get("result")
    if data is not None:
        result = JobResult.from_dict(data)
    else:
        result = JobResult(record.get("name"), None,
                           error=record.get("error"))
    result.name = record.get("name") or result.name
    result.cached = bool(record.get("cached", result.cached))
    if record.get("error") and not result.error:
        result.error = record["error"]
    return result


class RemoteScheduler:
    """Drop-in ``run(jobs)`` that routes a batch through one or more daemons.

    Accepts the same :class:`~repro.service.job.JobSpec` lists as
    :class:`~repro.service.scheduler.BatchScheduler` and returns
    :class:`JobResult`\\ s in submission order.  Per-job lifecycle events
    (queued / cached / finished) are emitted on ``bus`` so the live
    renderer works unchanged; engine-internal progress stays on the daemon
    (use ``repro-sec remote watch`` for it).

    ``client`` may be one endpoint (a :class:`ServerClient` or URL), a
    comma-separated URL string, or a list of endpoints.  The scheduler is
    *coordinator-aware*: endpoints whose ``/v1/healthz`` reports
    ``role: coordinator`` (a :class:`repro.fleet.CoordinatorServer`) are
    preferred exclusively — the coordinator shards across its fleet, so
    client-side spreading would fight its placement.  With only plain
    worker daemons, submission chunks round-robin across the endpoints,
    and a chunk whose endpoint fails hard is retried on the next one.
    """

    def __init__(self, client, bus=None, poll=0.2, timeout=None,
                 chunk_size=8):
        if isinstance(client, str):
            client = [url.strip() for url in client.split(",")
                      if url.strip()]
        if not isinstance(client, (list, tuple)):
            client = [client]
        self.clients = [ServerClient(c) if isinstance(c, str) else c
                        for c in client]
        if not self.clients:
            raise ValueError("RemoteScheduler needs at least one endpoint")
        self.client = self.clients[0]
        self.bus = bus or EventBus()
        self.poll = poll
        self.timeout = timeout
        self.chunk_size = chunk_size
        self._endpoints = None

    def endpoints(self):
        """The endpoints submissions go to, after the one-time role probe."""
        if self._endpoints is None:
            if len(self.clients) == 1:
                self._endpoints = list(self.clients)
            else:
                coordinators = []
                healthy = []
                for client in self.clients:
                    try:
                        health = client.healthz()
                    except ServerError:
                        continue
                    healthy.append(client)
                    if health.get("role") == "coordinator":
                        coordinators.append(client)
                self._endpoints = (coordinators or healthy
                                   or list(self.clients))
        return self._endpoints

    def _submit_all(self, payloads, deadline):
        """Submit in chunks; returns ``[(endpoint, job_id), ...]``.

        Chunks round-robin across :meth:`endpoints`; queue-full
        backpressure (429) is waited out on the same endpoint, while a
        hard failure rotates the chunk to the next endpoint (raising only
        once every endpoint refused it).
        """
        endpoints = self.endpoints()
        placed = []
        for number, start in enumerate(
                range(0, len(payloads), self.chunk_size)):
            chunk = payloads[start:start + self.chunk_size]
            attempts = 0
            while True:
                client = endpoints[(number + attempts) % len(endpoints)]
                try:
                    ids = client.submit_payloads(chunk)
                    placed.extend((client, job_id) for job_id in ids)
                    break
                except ServerError as exc:
                    if exc.status == 429:
                        if (deadline is not None
                                and time.monotonic() > deadline):
                            raise
                        client.sleep(max(self.poll, 1.0))
                        continue
                    attempts += 1
                    if attempts >= len(endpoints):
                        raise
        return placed

    def run(self, jobs):
        if not jobs:
            return []
        deadline = (None if self.timeout is None
                    else time.monotonic() + self.timeout)
        payloads = []
        for index, job in enumerate(jobs):
            payload = job_payload(
                job.spec, job.impl, name=job.name, method=job.method,
                options=job.options, match_inputs=job.match_inputs,
                match_outputs=job.match_outputs, tags=job.tags)
            payloads.append(payload)
            self.bus.emit(JOB_QUEUED, job=job.name, index=index,
                          method=job.method, remote=True)
        placed = self._submit_all(payloads, deadline)
        results = [None] * len(jobs)
        pending = {job_id: (index, client)
                   for index, (client, job_id) in enumerate(placed)}
        while pending:
            for job_id in list(pending):
                index, client = pending[job_id]
                record = client.job(job_id)
                if record["state"] not in ("done", "cancelled", "error"):
                    continue
                pending.pop(job_id)
                job_result = remote_job_result(record)
                job_result.name = jobs[index].name
                results[index] = job_result
                event = JOB_CACHED if job_result.cached else JOB_FINISHED
                self.bus.emit(event, job=jobs[index].name, index=index,
                              verdict=job_result.verdict,
                              method=job_result.method or jobs[index].method,
                              error=job_result.error, remote=True)
            if pending:
                if deadline is not None and time.monotonic() > deadline:
                    raise ServerError(
                        "timed out waiting for {} remote jobs".format(
                            len(pending)))
                self.client.sleep(self.poll)
        return results
