"""Format-independent structural fingerprints.

:func:`repro.netlist.strash.structural_fingerprint` hashes the *gate-level*
structure of a circuit, which makes it rename-invariant but **not**
format-invariant: a ``.bench`` XOR gate and the four AND/NOT gates its
AIGER encoding decomposes into hash differently, so the same verification
problem handed to the fleet once as ``.bench`` and once as ``.aig`` would
miss the result cache.

:func:`aig_fingerprint` closes that gap by hashing the circuit *after*
AIG normalization: convert to an AIG (XOR/OR/MUX all decompose to
structurally-hashed AND/NOT), canonically renumber, and digest the binary
AIGER encoding with symbol table and comments stripped.  All four
encodings of one circuit — ``.bench``, BLIF, ``.aag``, ``.aig`` — produce
the same digest, as does any round trip through the AIGER writer.  The
service cache key (:mod:`repro.service.job`) is built on this digest.
"""

import hashlib

from ..netlist.aig import Aig, from_circuit
from .aiger import dumps_aiger_binary


def aig_fingerprint(obj):
    """Hex digest of a circuit's (or AIG's) canonical binary-AIGER bytes.

    Invariant under net renaming, gate-level re-expression (XOR vs its
    AND/NOT expansion), serialization format, and AIGER round trips.
    """
    if isinstance(obj, Aig):
        aig = obj
    else:
        aig, _ = from_circuit(obj)
    payload = dumps_aiger_binary(aig, symbols=False, comments=False)
    return hashlib.sha256(payload).hexdigest()
