"""Full AIGER reader/writer: ascii ``.aag`` and binary ``.aig``.

Implements the AIGER format (Biere, FMV TR 07/1, plus the 1.9 reset-value
extension) over the existing :class:`repro.netlist.aig.Aig` class:

* both the ascii (``aag``) and the binary delta-encoded (``aig``) variant;
* latches with explicit reset values ``0``/``1`` (the 1.9 "reset is the
  latch's own literal" spelling of an *uninitialized* latch is rejected
  with a clear error — the paper's model requires a known initial state);
* input/latch/output symbol tables and trailing comment sections;
* canonical re-encoding (:func:`reencode`): inputs ``1..I``, latches
  ``I+1..I+L``, AND nodes topologically ordered after them — the numbering
  the binary format requires, and the normal form the format-independent
  cache fingerprint hashes.

Circuit-level entry points (:func:`read_aiger_circuit`,
:func:`write_aiger_circuit`) convert losslessly to and from
:class:`repro.netlist.Circuit`: input and latch names survive via the
symbol table, initial values via reset values, and the per-frame output
functions exactly — so an AIGER-born circuit is verdict-identical to its
``.bench`` encoding under every engine.
"""

from ..errors import ParseError
from ..netlist.aig import (
    Aig,
    from_circuit,
    lit_neg,
    lit_sign,
    lit_var,
    to_circuit,
)

ASCII_MAGIC = b"aag"
BINARY_MAGIC = b"aig"


# --------------------------------------------------------------------------
# Canonical re-encoding
# --------------------------------------------------------------------------


def reencode(aig):
    """Renumber an AIG into the canonical AIGER variable order.

    Inputs become variables ``1..I`` (declaration order), latches
    ``I+1..I+L``, and AND nodes ``I+L+1..M`` in topological order — every
    node's fanins precede it, which is what the binary format's delta
    encoding requires.  Node structure is preserved verbatim (no
    simplification), as are names, output names and comments.  Returns a
    fresh :class:`Aig`.
    """
    out = Aig()
    mapping = {0: 0}
    for var in aig.inputs:
        lit = out.add_input(name=aig.names.get(var))
        mapping[var] = lit_var(lit)

    def map_lit(lit):
        var = lit_var(lit)
        if var not in mapping:
            raise ParseError("literal {} references undefined variable "
                             "{}".format(lit, var))
        return 2 * mapping[var] + lit_sign(lit)

    for var, _, init in aig.latches:
        lit = out.add_latch(init=init, name=aig.names.get(var))
        mapping[var] = lit_var(lit)
    for var in aig.topo_vars():
        rhs0, rhs1 = aig.ands[var]
        a, b = map_lit(rhs0), map_lit(rhs1)
        if a < b:
            a, b = b, a
        new_var = out._new_var()
        out.ands[new_var] = (a, b)
        out._strash[(a, b)] = new_var
        mapping[var] = new_var
    for (var, next_lit, init), entry in zip(aig.latches, out.latches):
        entry[1] = map_lit(next_lit)
    for idx, lit in enumerate(aig.outputs):
        out.add_output(map_lit(lit), name=aig.output_names.get(idx))
    out.comments = list(aig.comments)
    return out


def aiger_header_stats(aig):
    """The ``M I L O A`` header counts of an AIG's canonical encoding."""
    n_ands = len(aig.ands)
    n_in, n_latch = len(aig.inputs), len(aig.latches)
    return {
        "M": n_in + n_latch + n_ands,
        "I": n_in,
        "L": n_latch,
        "O": len(aig.outputs),
        "A": n_ands,
    }


# --------------------------------------------------------------------------
# Writers
# --------------------------------------------------------------------------


def _symbol_lines(aig):
    lines = []
    for idx, var in enumerate(aig.inputs):
        if var in aig.names:
            lines.append("i{} {}".format(idx, aig.names[var]))
    for idx, (var, _, _) in enumerate(aig.latches):
        if var in aig.names:
            lines.append("l{} {}".format(idx, aig.names[var]))
    for idx in range(len(aig.outputs)):
        if idx in aig.output_names:
            lines.append("o{} {}".format(idx, aig.output_names[idx]))
    return lines


def _latch_line(var, next_lit, init, ascii_form):
    head = "{} ".format(2 * var) if ascii_form else ""
    if init:
        return "{}{} 1".format(head, next_lit)
    return "{}{}".format(head, next_lit)


def dumps_aiger_ascii(aig, symbols=True, comments=True):
    """Serialize to the ascii ``aag`` variant (canonically renumbered)."""
    aig = reencode(aig)
    stats = aiger_header_stats(aig)
    lines = ["aag {M} {I} {L} {O} {A}".format(**stats)]
    for var in aig.inputs:
        lines.append(str(2 * var))
    for var, next_lit, init in aig.latches:
        lines.append(_latch_line(var, next_lit, init, ascii_form=True))
    for lit in aig.outputs:
        lines.append(str(lit))
    for var in sorted(aig.ands):
        rhs0, rhs1 = aig.ands[var]
        lines.append("{} {} {}".format(2 * var, rhs0, rhs1))
    if symbols:
        lines.extend(_symbol_lines(aig))
    if comments and aig.comments:
        lines.append("c")
        lines.extend(aig.comments)
    return "\n".join(lines) + "\n"


def _put_varint(value, buf):
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def dumps_aiger_binary(aig, symbols=True, comments=True):
    """Serialize to the binary ``aig`` variant (canonically renumbered).

    Returns ``bytes``.  AND nodes are delta-encoded per the AIGER spec:
    each node contributes ``lhs - rhs0`` and ``rhs0 - rhs1`` as 7-bit
    variable-length integers, with ``lhs > rhs0 >= rhs1`` guaranteed by
    the canonical numbering.
    """
    aig = reencode(aig)
    stats = aiger_header_stats(aig)
    lines = ["aig {M} {I} {L} {O} {A}".format(**stats)]
    for var, next_lit, init in aig.latches:
        lines.append(_latch_line(var, next_lit, init, ascii_form=False))
    for lit in aig.outputs:
        lines.append(str(lit))
    buf = bytearray(("\n".join(lines) + "\n").encode("ascii"))
    for var in sorted(aig.ands):
        rhs0, rhs1 = aig.ands[var]
        lhs = 2 * var
        _put_varint(lhs - rhs0, buf)
        _put_varint(rhs0 - rhs1, buf)
    tail = []
    if symbols:
        tail.extend(_symbol_lines(aig))
    if comments and aig.comments:
        tail.append("c")
        tail.extend(aig.comments)
    if tail:
        buf.extend(("\n".join(tail) + "\n").encode("utf-8"))
    return bytes(buf)


# --------------------------------------------------------------------------
# Readers
# --------------------------------------------------------------------------


def _parse_header(line, magic):
    parts = line.split()
    if not parts or parts[0] != magic:
        raise ParseError("not an AIGER {} header: {!r}".format(magic, line))
    if len(parts) < 6:
        raise ParseError("AIGER header needs M I L O A: {!r}".format(line))
    try:
        counts = [int(p) for p in parts[1:]]
    except ValueError:
        raise ParseError("non-numeric AIGER header field: {!r}".format(line))
    if any(c < 0 for c in counts):
        raise ParseError("negative AIGER header field: {!r}".format(line))
    m, i, l, o, a = counts[:5]
    extensions = counts[5:]
    if any(extensions):
        raise ParseError(
            "AIGER extension sections (B/C/J/F) are not supported; this "
            "reader handles the plain M I L O A subset")
    if m < i + l + a:
        raise ParseError(
            "inconsistent AIGER header: M={} < I+L+A={}".format(m, i + l + a))
    return m, i, l, o, a


def _check_lit(lit, max_var, context):
    if lit < 0 or lit_var(lit) > max_var:
        raise ParseError("{} literal {} out of range (max var {})".format(
            context, lit, max_var))
    return lit


def _parse_latch_reset(parts, out_lit, lineno):
    """Decode the optional 1.9 reset field of a latch line."""
    if len(parts) == 0:
        return False
    reset = parts[0]
    if reset == "0":
        return False
    if reset == "1":
        return True
    if reset == str(out_lit):
        raise ParseError(
            "uninitialized latch (reset = its own literal {}) is not "
            "supported: the sequential model requires a known initial "
            "state".format(out_lit), lineno)
    raise ParseError("bad latch reset value {!r}".format(reset), lineno)


def _attach_symbols_and_comments(aig, lines, start_lineno=0):
    """Parse the trailing symbol table and comment section."""
    in_comments = False
    for offset, raw in enumerate(lines):
        line = raw.rstrip("\n")
        if in_comments:
            aig.comments.append(line)
            continue
        if line == "c":
            in_comments = True
            continue
        if not line.strip():
            continue
        kind, _, name = line.partition(" ")
        lineno = start_lineno + offset
        if len(kind) < 2 or kind[0] not in "ilo" or not kind[1:].isdigit():
            raise ParseError(
                "bad symbol table line {!r}".format(line), lineno)
        pos = int(kind[1:])
        try:
            if kind[0] == "i":
                aig.names[aig.inputs[pos]] = name
            elif kind[0] == "l":
                aig.names[aig.latches[pos][0]] = name
            else:
                if pos >= len(aig.outputs):
                    raise IndexError(pos)
                aig.output_names[pos] = name
        except IndexError:
            raise ParseError(
                "symbol {!r} references a missing entry".format(line),
                lineno)


def loads_aiger_ascii(text):
    """Parse the ascii ``aag`` variant into an :class:`Aig`."""
    lines = text.splitlines()
    if not lines:
        raise ParseError("empty aag file")
    m, i, l, o, a = _parse_header(lines[0], "aag")
    aig = Aig()
    aig.num_vars = m
    idx = 1
    defined = {0}

    def next_line(what):
        nonlocal idx
        if idx >= len(lines):
            raise ParseError("truncated aag file: missing {}".format(what),
                             idx)
        line = lines[idx]
        idx += 1
        return line

    for _ in range(i):
        lineno = idx
        lit = int(next_line("input").split()[0])
        if lit_sign(lit) or lit == 0:
            raise ParseError("input literal {} must be positive and "
                             "even".format(lit), lineno)
        var = lit_var(_check_lit(lit, m, "input"))
        if var in defined:
            raise ParseError("variable {} defined twice".format(var), lineno)
        defined.add(var)
        aig.inputs.append(var)
    for _ in range(l):
        lineno = idx
        parts = next_line("latch").split()
        if len(parts) < 2:
            raise ParseError("latch line needs 'lit next [reset]'", lineno)
        out_lit, next_lit = int(parts[0]), int(parts[1])
        if lit_sign(out_lit) or out_lit == 0:
            raise ParseError("latch literal {} must be positive and "
                             "even".format(out_lit), lineno)
        var = lit_var(_check_lit(out_lit, m, "latch"))
        if var in defined:
            raise ParseError("variable {} defined twice".format(var), lineno)
        defined.add(var)
        init = _parse_latch_reset(parts[2:], out_lit, lineno)
        aig.latches.append([var, _check_lit(next_lit, m, "latch next"),
                            init])
    for _ in range(o):
        aig.outputs.append(
            _check_lit(int(next_line("output").split()[0]), m, "output"))
    for _ in range(a):
        lineno = idx
        parts = next_line("and").split()
        if len(parts) != 3:
            raise ParseError("and line needs 'lhs rhs0 rhs1'", lineno)
        lhs, rhs0, rhs1 = (int(p) for p in parts)
        if lit_sign(lhs) or lhs == 0:
            raise ParseError("and output literal {} must be positive and "
                             "even".format(lhs), lineno)
        var = lit_var(_check_lit(lhs, m, "and"))
        if var in defined:
            raise ParseError("variable {} defined twice".format(var), lineno)
        defined.add(var)
        _check_lit(rhs0, m, "and fanin")
        _check_lit(rhs1, m, "and fanin")
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        aig.ands[var] = (rhs0, rhs1)
        aig._strash[(rhs0, rhs1)] = var
    _validate_references(aig, defined)
    _attach_symbols_and_comments(aig, lines[idx:], start_lineno=idx)
    return aig


def _validate_references(aig, defined):
    for var, next_lit, _ in aig.latches:
        if lit_var(next_lit) not in defined:
            raise ParseError("latch next-state literal {} references "
                             "undefined variable".format(next_lit))
    for lit in aig.outputs:
        if lit_var(lit) not in defined:
            raise ParseError("output literal {} references undefined "
                             "variable".format(lit))
    for var, (rhs0, rhs1) in aig.ands.items():
        for lit in (rhs0, rhs1):
            if lit_var(lit) not in defined:
                raise ParseError(
                    "and node {} references undefined variable in literal "
                    "{}".format(var, lit))


def loads_aiger_binary(data):
    """Parse the binary ``aig`` variant into an :class:`Aig`."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    pos = 0

    def read_line(what):
        nonlocal pos
        end = data.find(b"\n", pos)
        if end < 0:
            raise ParseError("truncated aig file: missing {}".format(what))
        line = data[pos:end].decode("ascii", "replace")
        pos = end + 1
        return line

    m, i, l, o, a = _parse_header(read_line("header"), "aig")
    aig = Aig()
    aig.num_vars = m
    for idx in range(i):
        aig.inputs.append(idx + 1)
    for idx in range(l):
        lineno = idx + 1
        var = i + idx + 1
        parts = read_line("latch").split()
        if not parts:
            raise ParseError("latch line needs 'next [reset]'", lineno)
        next_lit = _check_lit(int(parts[0]), m, "latch next")
        init = _parse_latch_reset(parts[1:], 2 * var, lineno)
        aig.latches.append([var, next_lit, init])
    for _ in range(o):
        aig.outputs.append(
            _check_lit(int(read_line("output").split()[0]), m, "output"))

    def read_varint(node):
        nonlocal pos
        value, shift = 0, 0
        while True:
            if pos >= len(data):
                raise ParseError(
                    "truncated aig file in and section (node {})".format(
                        node))
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    for idx in range(a):
        var = i + l + idx + 1
        lhs = 2 * var
        delta0 = read_varint(idx)
        delta1 = read_varint(idx)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 <= 0 and delta0 > lhs:
            raise ParseError(
                "and node {}: delta {} exceeds lhs {}".format(
                    var, delta0, lhs))
        if rhs0 < 0 or rhs1 < 0:
            raise ParseError(
                "and node {}: negative fanin literal".format(var))
        aig.ands[var] = (rhs0, rhs1)
        aig._strash[(rhs0, rhs1)] = var
    remainder = data[pos:]
    if remainder:
        _attach_symbols_and_comments(
            aig, remainder.decode("utf-8", "replace").splitlines())
    return aig


def loads_aiger(data):
    """Parse either AIGER variant, sniffing the header magic."""
    if isinstance(data, bytes):
        head = data[:3]
    else:
        head = data[:3].encode("ascii", "replace")
    if head == BINARY_MAGIC:
        return loads_aiger_binary(data)
    if head == ASCII_MAGIC:
        if isinstance(data, bytes):
            data = data.decode("utf-8")
        return loads_aiger_ascii(data)
    raise ParseError(
        "not an AIGER file (header must start with 'aag' or 'aig')")


# --------------------------------------------------------------------------
# File + Circuit entry points
# --------------------------------------------------------------------------


def load_aiger(path):
    """Read an AIGER file (either variant) into an :class:`Aig`."""
    with open(str(path), "rb") as handle:
        return loads_aiger(handle.read())


def dump_aiger(aig, path, binary=None):
    """Write an AIGER file; variant chosen by ``binary`` or the extension."""
    path = str(path)
    if binary is None:
        binary = path.lower().endswith(".aig")
    if binary:
        with open(path, "wb") as handle:
            handle.write(dumps_aiger_binary(aig))
    else:
        with open(path, "w") as handle:
            handle.write(dumps_aiger_ascii(aig))


def read_aiger_circuit(path, name=None):
    """Read an AIGER file straight into a validated :class:`Circuit`."""
    aig = load_aiger(path)
    if name is None:
        name = str(path).rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return to_circuit(aig, name=name)


def write_aiger_circuit(circuit, path, binary=None):
    """Write a :class:`Circuit` as AIGER (names kept via the symbol table)."""
    aig, _ = from_circuit(circuit)
    aig.comments.append("circuit {}".format(circuit.name))
    dump_aiger(aig, path, binary=binary)
