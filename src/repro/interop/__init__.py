"""Interop subsystem: industry formats and external oracles.

Everything that lets the reproduction talk to the world outside its own
code:

* :mod:`repro.interop.aiger` — a full AIGER reader/writer (ascii ``.aag``
  and binary ``.aig``, latches with reset values, symbol tables, comments)
  over the existing :class:`repro.netlist.aig.Aig` substrate, with lossless
  conversion to and from :class:`repro.netlist.Circuit` — so HWMCC-scale
  benchmarks and anything ABC/yosys emit can feed every engine directly;
* :mod:`repro.interop.formats` — one extension-dispatched
  :func:`load_circuit`/:func:`save_circuit` entry point shared by the CLI,
  the remote client and the tests, with a clear error naming the supported
  extensions;
* :mod:`repro.interop.fingerprint` — the *format-independent* structural
  fingerprint (a canonical binary-AIGER digest) the result cache keys on:
  the ``.bench``, BLIF, ``.aag`` and ``.aig`` encodings of one circuit all
  hash to the same problem;
* :mod:`repro.interop.oracle` — the opt-in external cross-check: shell out
  to ABC (``cec``/``dsec``) and/or yosys (``equiv_make`` +
  ``equiv_induct``) when the binaries exist, compare their verdicts with
  ours, and *skip with a logged reason* — never fail — when they do not.
"""

from .aiger import (
    aiger_header_stats,
    dump_aiger,
    dumps_aiger_ascii,
    dumps_aiger_binary,
    load_aiger,
    loads_aiger,
    read_aiger_circuit,
    reencode,
    write_aiger_circuit,
)
from .fingerprint import aig_fingerprint
from .formats import (
    SUPPORTED_EXTENSIONS,
    detect_format,
    format_info,
    load_circuit,
    save_circuit,
)
from .oracle import ExternalOracle, OracleVerdict, cross_check

__all__ = [
    "ExternalOracle",
    "OracleVerdict",
    "SUPPORTED_EXTENSIONS",
    "aig_fingerprint",
    "aiger_header_stats",
    "cross_check",
    "detect_format",
    "dump_aiger",
    "dumps_aiger_ascii",
    "dumps_aiger_binary",
    "format_info",
    "load_aiger",
    "load_circuit",
    "loads_aiger",
    "read_aiger_circuit",
    "reencode",
    "save_circuit",
    "write_aiger_circuit",
]
