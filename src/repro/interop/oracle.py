"""Opt-in external equivalence oracles: ABC and yosys.

The differential fuzzer's oracles so far are all our own code (the engine
battery cross-checked against construction-known labels).  This module adds
the first independent one: when the ``abc`` and/or ``yosys`` binaries are
on ``PATH`` (or pointed at by the ``REPRO_SEC_ABC`` / ``REPRO_SEC_YOSYS``
environment variables), shell out to them with the same circuit pair and
compare verdicts.

Design rules, in decreasing order of importance:

* **Never fail when a tool is absent or misbehaves.**  A missing binary, a
  timeout, a crash, or unparseable output all produce an *inconclusive*
  :class:`OracleVerdict` (``verdict is None``) with a human-readable
  ``reason`` — callers log and move on.
* **Inconclusive is not a disagreement.**  yosys' ``equiv_induct`` failing
  to prove equivalence does not mean the pair is inequivalent; only a tool
  that affirmatively decides the problem can disagree with us.
* Negative phrases are matched before positive ones ("NOT equivalent"
  contains "equivalent").

ABC runs ``dsec`` (sequential) or ``cec`` (combinational) on two binary
AIGER files.  yosys runs ``equiv_make`` + ``equiv_simple`` +
``equiv_induct`` + ``equiv_status`` on two BLIF models.
"""

import os
import shutil
import subprocess
import tempfile
import time

from ..netlist import blif
from .aiger import write_aiger_circuit

DEFAULT_TIMEOUT = 60.0

#: tool name -> environment variable overriding the binary path
TOOL_ENV = {
    "abc": "REPRO_SEC_ABC",
    "yosys": "REPRO_SEC_YOSYS",
}


class OracleVerdict:
    """One external tool's answer on one circuit pair.

    ``verdict`` is ``True`` (proved equivalent), ``False`` (proved
    inequivalent) or ``None`` (inconclusive: tool missing, timed out,
    crashed, or could not decide).  ``reason`` always explains why.
    """

    def __init__(self, tool, verdict, reason, elapsed=0.0, output=""):
        self.tool = tool
        self.verdict = verdict
        self.reason = reason
        self.elapsed = elapsed
        self.output = output

    @property
    def conclusive(self):
        return self.verdict is not None

    def agrees_with(self, equivalent):
        """None if inconclusive, else whether we match ``equivalent``."""
        if self.verdict is None:
            return None
        return self.verdict == bool(equivalent)

    def to_dict(self):
        return {
            "tool": self.tool,
            "verdict": self.verdict,
            "reason": self.reason,
            "elapsed": round(self.elapsed, 6),
        }

    def __repr__(self):
        return "OracleVerdict({}, {}, {!r})".format(
            self.tool, self.verdict, self.reason)


def find_tool(tool):
    """Resolve a tool binary: env override first, then PATH. None if absent."""
    override = os.environ.get(TOOL_ENV.get(tool, ""), "")
    if override:
        return override if os.path.exists(override) else None
    return shutil.which(tool)


class ExternalOracle:
    """Cross-check a circuit pair against whichever tools are installed."""

    def __init__(self, tools=None, timeout=DEFAULT_TIMEOUT):
        self.timeout = timeout
        requested = list(tools) if tools else list(TOOL_ENV)
        self.binaries = {}
        self.missing = {}
        for tool in requested:
            if tool not in TOOL_ENV:
                raise ValueError("unknown oracle tool {!r}; known: {}".format(
                    tool, ", ".join(sorted(TOOL_ENV))))
            path = find_tool(tool)
            if path:
                self.binaries[tool] = path
            else:
                self.missing[tool] = (
                    "{} not found on PATH (set ${} to override)".format(
                        tool, TOOL_ENV[tool]))

    @property
    def available(self):
        return sorted(self.binaries)

    def skip_reason(self):
        """Why no cross-check can run, or None if at least one tool can."""
        if self.binaries:
            return None
        return "; ".join(self.missing[t] for t in sorted(self.missing))

    # -- per-tool runners --------------------------------------------------

    def _run(self, argv, tool):
        start = time.monotonic()
        try:
            proc = subprocess.run(
                argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=self.timeout)
        except subprocess.TimeoutExpired:
            return None, time.monotonic() - start, "timeout after {:.0f}s".format(
                self.timeout), ""
        except OSError as exc:
            return None, time.monotonic() - start, "failed to launch {}: {}".format(
                tool, exc), ""
        elapsed = time.monotonic() - start
        output = proc.stdout.decode("utf-8", "replace")
        if proc.returncode != 0:
            return None, elapsed, "{} exited with status {}".format(
                tool, proc.returncode), output
        return proc, elapsed, None, output

    def check_abc(self, spec, impl, workdir):
        spec_path = os.path.join(workdir, "spec.aig")
        impl_path = os.path.join(workdir, "impl.aig")
        write_aiger_circuit(spec, spec_path, binary=True)
        write_aiger_circuit(impl, impl_path, binary=True)
        sequential = bool(spec.registers) or bool(impl.registers)
        command = "dsec" if sequential else "cec"
        argv = [self.binaries["abc"], "-c",
                "{} {} {}".format(command, spec_path, impl_path)]
        proc, elapsed, failure, output = self._run(argv, "abc")
        if failure:
            return OracleVerdict("abc", None, failure, elapsed, output)
        lowered = output.lower()
        if "not equivalent" in lowered or "differ" in lowered:
            return OracleVerdict("abc", False,
                                 "abc {} refuted equivalence".format(command),
                                 elapsed, output)
        if "are equivalent" in lowered or "networks are equivalent" in lowered:
            return OracleVerdict("abc", True,
                                 "abc {} proved equivalence".format(command),
                                 elapsed, output)
        return OracleVerdict("abc", None,
                             "abc {} output not understood".format(command),
                             elapsed, output)

    def check_yosys(self, spec, impl, workdir, seq_depth=5):
        spec_path = os.path.join(workdir, "spec.blif")
        impl_path = os.path.join(workdir, "impl.blif")
        _write_blif_as(spec, "gold", spec_path)
        _write_blif_as(impl, "gate", impl_path)
        script = "; ".join([
            "read_blif {}".format(spec_path),
            "read_blif {}".format(impl_path),
            "equiv_make gold gate merged",
            "prep -top merged",
            "equiv_simple -seq {}".format(seq_depth),
            "equiv_induct -seq {}".format(seq_depth),
            "equiv_status",
        ])
        argv = [self.binaries["yosys"], "-q", "-p", script]
        proc, elapsed, failure, output = self._run(argv, "yosys")
        if failure:
            return OracleVerdict("yosys", None, failure, elapsed, output)
        lowered = output.lower()
        if "equivalence successfully proven" in lowered:
            return OracleVerdict(
                "yosys", True,
                "yosys equiv_induct proved equivalence (seq {})".format(
                    seq_depth), elapsed, output)
        # Induction failing to prove is inconclusive, never a refutation.
        return OracleVerdict(
            "yosys", None,
            "yosys left unproven $equiv cells (induction depth {})".format(
                seq_depth), elapsed, output)

    # -- entry point -------------------------------------------------------

    def check(self, spec, impl):
        """Run every available tool; returns a list of OracleVerdicts.

        Tools that are missing contribute an inconclusive verdict with the
        missing-binary reason, so the report always covers every requested
        tool.
        """
        verdicts = [
            OracleVerdict(tool, None, reason)
            for tool, reason in sorted(self.missing.items())
        ]
        if not self.binaries:
            return verdicts
        with tempfile.TemporaryDirectory(prefix="repro-oracle-") as workdir:
            if "abc" in self.binaries:
                verdicts.append(self.check_abc(spec, impl, workdir))
            if "yosys" in self.binaries:
                verdicts.append(self.check_yosys(spec, impl, workdir))
        return verdicts


def _write_blif_as(circuit, model_name, path):
    """Write a circuit as BLIF under a forced model name (yosys needs
    distinct names for ``equiv_make gold gate``)."""
    text = blif.dumps(circuit)
    lines = text.splitlines()
    for idx, line in enumerate(lines):
        if line.startswith(".model"):
            lines[idx] = ".model {}".format(model_name)
            break
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


def cross_check(spec, impl, equivalent, tools=None, timeout=DEFAULT_TIMEOUT):
    """Compare our verdict with every available external tool.

    Returns a dict::

        {"ran": bool,             # at least one tool executed
         "skipped_reason": str|None,
         "verdicts": [OracleVerdict...],
         "agreements": [tool...], # conclusive and matching ours
         "disagreements": [tool...]}

    A disagreement means an external tool *conclusively* decided the
    opposite of our ``equivalent`` verdict — the caller demotes that to a
    fuzzer finding rather than trusting either side blindly.
    """
    oracle = ExternalOracle(tools=tools, timeout=timeout)
    verdicts = oracle.check(spec, impl)
    agreements, disagreements = [], []
    for verdict in verdicts:
        agreed = verdict.agrees_with(equivalent)
        if agreed is True:
            agreements.append(verdict.tool)
        elif agreed is False:
            disagreements.append(verdict.tool)
    return {
        "ran": bool(oracle.binaries),
        "skipped_reason": oracle.skip_reason(),
        "verdicts": verdicts,
        "agreements": agreements,
        "disagreements": disagreements,
    }
