"""Extension-dispatched circuit loading and saving.

One entry point shared by the CLI, the remote client and the tests:
:func:`load_circuit` maps a path's extension to the right parser
(``.bench``, ``.blif``, ``.aag``, ``.aig``) and raises a
:class:`~repro.errors.ParseError` naming the supported extensions for
anything else.  :func:`format_info` additionally reports what ``repro-sec
info`` prints: the detected format plus, for AIGER-representable inputs,
the canonical ``M I L O A`` header counts.
"""

import os

from ..errors import ParseError
from ..netlist import bench, blif
from ..netlist.aig import from_circuit
from .aiger import (
    aiger_header_stats,
    read_aiger_circuit,
    write_aiger_circuit,
)

#: extension -> canonical format name
SUPPORTED_EXTENSIONS = {
    ".bench": "bench",
    ".blif": "blif",
    ".aag": "aiger-ascii",
    ".aig": "aiger-binary",
}


def detect_format(path):
    """Canonical format name for ``path``; raises ParseError if unknown."""
    ext = os.path.splitext(str(path))[1].lower()
    try:
        return SUPPORTED_EXTENSIONS[ext]
    except KeyError:
        raise ParseError(
            "unsupported circuit file extension {!r} for {!r}; supported: "
            "{}".format(ext, str(path),
                        ", ".join(sorted(SUPPORTED_EXTENSIONS))))


def load_circuit(path, name=None):
    """Load a circuit from any supported format, dispatched by extension."""
    fmt = detect_format(path)
    path = str(path)
    if fmt == "bench":
        return bench.load(path, name=name)
    if fmt == "blif":
        return blif.load(path, name=name)
    return read_aiger_circuit(path, name=name)


def save_circuit(circuit, path):
    """Write a circuit in the format implied by ``path``'s extension."""
    fmt = detect_format(path)
    path = str(path)
    if fmt == "bench":
        bench.dump(circuit, path)
    elif fmt == "blif":
        blif.dump(circuit, path)
    else:
        write_aiger_circuit(circuit, path, binary=(fmt == "aiger-binary"))
    return fmt


def format_info(path):
    """Detected format plus AIGER header stats for ``repro-sec info``.

    Returns ``{"format": ..., "aiger": {"M":..,"I":..,"L":..,"O":..,"A":..}}``
    where the ``aiger`` entry describes the circuit's canonical AIG
    encoding regardless of the format it arrived in.
    """
    fmt = detect_format(path)
    circuit = load_circuit(path)
    aig, _ = from_circuit(circuit)
    return {
        "format": fmt,
        "aiger": aiger_header_stats(aig),
        "circuit": circuit,
    }
