"""Semantics-preserving circuit transformations (and fault injection).

The benchmark synthesis pipeline composes :func:`retime` and
:func:`optimize` to manufacture "implementation" circuits from
"specification" circuits, reproducing the paper's experimental setup
(kerneling + retiming, then ``script.rugged``).
"""

from .optimize import (
    associative_regroup,
    cone_resynthesize,
    constant_fold,
    demorgan_rewrite,
    obfuscate_names,
    optimize,
    remove_double_negation,
    sweep,
    xor_expand,
)
from .retime import (
    backward_movable_registers,
    backward_retime_register,
    forward_movable_gates,
    forward_retime_gate,
    retime,
)
from .encode import xor_reencode, xor_reencode_pair
from .mutate import inject_distinguishable_fault, inject_fault
from .twolevel import eval_cover, minterms_to_cubes


def synthesize(circuit, retime_moves=4, optimize_level=2, seed=0):
    """The full benchmark pipeline: retime, then optimize.

    Mirrors the paper's setup: the implementation is the specification after
    retiming-based synthesis plus aggressive combinational optimization.
    The result is sequentially equivalent to the input by construction.
    """
    retimed = retime(circuit, moves=retime_moves, seed=seed)
    return optimize(retimed, level=optimize_level, seed=seed + 1)


__all__ = [
    "associative_regroup",
    "backward_movable_registers",
    "backward_retime_register",
    "cone_resynthesize",
    "constant_fold",
    "demorgan_rewrite",
    "eval_cover",
    "forward_movable_gates",
    "forward_retime_gate",
    "inject_distinguishable_fault",
    "inject_fault",
    "minterms_to_cubes",
    "obfuscate_names",
    "optimize",
    "remove_double_negation",
    "retime",
    "sweep",
    "synthesize",
    "xor_expand",
    "xor_reencode",
    "xor_reencode_pair",
]
