"""State re-encoding transformations.

XOR re-encoding replaces a register pair (p, q) by (p, p XOR q): the second
register now stores the *difference*, its data input becomes the XOR of the
original data inputs, and every reader of q is rewired to a decode gate
``p XOR (p XOR q)``.  Input/output behaviour is preserved, but the original
state encoding is gone — the kind of transformation the incremental
re-encoding baseline [12] targets, and a stress test for signal
correspondence (the decode gate keeps the method complete here; see
``repro.circuits.paper_example.mod3_counter_pair`` for a genuinely
incomplete case).
"""

import random

from ..errors import TransformError
from ..netlist.circuit import GateType


def xor_reencode_pair(circuit, p_name, q_name):
    """Re-encode registers (p, q) -> (p, p^q) in place."""
    if p_name == q_name:
        raise TransformError("cannot re-encode a register with itself")
    p = circuit.registers.get(p_name)
    q = circuit.registers.get(q_name)
    if p is None or q is None:
        raise TransformError("both nets must be registers")
    # New difference register d with input p.data_in XOR q.data_in.
    din = circuit.fresh_name("enc_din_{}".format(q_name))
    circuit.add_gate(din, GateType.XOR, [p.data_in, q.data_in])
    dreg = circuit.fresh_name("enc_d_{}".format(q_name))
    circuit.add_register(dreg, din, init=(p.init != q.init))
    # Decode gate reproducing q's value.
    decode = circuit.fresh_name("enc_dec_{}".format(q_name))
    circuit.add_gate(decode, GateType.XOR, [p_name, dreg])
    # Rewire q's readers to the decode gate, then drop q.
    circuit.replace_fanin(q_name, decode)
    del circuit.registers[q_name]
    circuit._topo_cache = None
    return dreg, decode


def xor_reencode(circuit, pairs=1, seed=0):
    """Re-encode ``pairs`` random register pairs on a copy of the circuit."""
    from .optimize import sweep

    result = circuit.copy()
    rng = random.Random(seed)
    for _ in range(pairs):
        regs = sorted(result.registers)
        if len(regs) < 2:
            break
        p_name, q_name = rng.sample(regs, 2)
        xor_reencode_pair(result, p_name, q_name)
    result = sweep(result)
    result.validate()
    return result
