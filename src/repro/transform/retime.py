"""Retiming transformations on netlists.

These are *real* retiming moves used to manufacture the benchmark pairs
(original vs. retimed implementation), mirroring the Stoffel/Kunz circuits
the paper verifies against.  They are distinct from the verification-side
"retiming with lag 1" augmentation (:mod:`repro.core.retiming_aug`), which
never moves latches and only adds combinational logic.

* Forward move: a gate whose fanins are all register outputs absorbs the
  registers — a new register is placed at the gate output, with its initial
  value computed by evaluating the gate on the old initial values (always
  well-defined; forward retiming never has an initial-state problem).
* Backward move: a register whose data input is a gate is pushed across it —
  new registers appear on the gate's fanins.  Initial values must be chosen
  such that the gate evaluates to the old initial value; when no such choice
  exists the move is illegal (the classic reversed-retiming obstruction,
  Stok et al. [13]).
"""

import itertools
import random

from ..errors import TransformError
from ..netlist.circuit import GateType, eval_gate
from ..netlist.simulate import single_eval

# Gates a forward move can cross (constants have no fanins to absorb).
_MOVABLE = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
)


def forward_movable_gates(circuit):
    """Gates eligible for a forward retiming move (all fanins are registers)."""
    return [
        name
        for name, gate in circuit.gates.items()
        if gate.gtype in _MOVABLE
        and gate.fanins
        and all(f in circuit.registers for f in gate.fanins)
    ]


def forward_retime_gate(circuit, gate_name):
    """Apply one forward move in place; returns the new register's net name.

    The original registers are left for other readers; a dead-logic sweep
    afterwards removes them when the moved gate was their only fanout.
    """
    gate = circuit.gates.get(gate_name)
    if gate is None:
        raise TransformError("no such gate: {!r}".format(gate_name))
    if gate.gtype not in _MOVABLE or not gate.fanins or not all(
        f in circuit.registers for f in gate.fanins
    ):
        raise TransformError(
            "gate {!r} is not forward-movable".format(gate_name)
        )
    regs = [circuit.registers[f] for f in gate.fanins]
    init_value = eval_gate(gate.gtype, [r.init for r in regs])
    new_gate = circuit.fresh_name("rt_{}".format(gate_name))
    circuit.add_gate(new_gate, gate.gtype, [r.data_in for r in regs])
    new_reg = circuit.fresh_name("rtr_{}".format(gate_name))
    circuit.add_register(new_reg, new_gate, init=init_value)
    circuit.replace_fanin(gate_name, new_reg)
    circuit.remove_gate(gate_name)
    return new_reg


def backward_movable_registers(circuit):
    """Registers eligible for a backward move (input is a movable gate)."""
    eligible = []
    for reg in circuit.registers.values():
        gate = circuit.gates.get(reg.data_in)
        if gate is None or gate.gtype not in _MOVABLE or not gate.fanins:
            continue
        if _pick_backward_inits(gate, reg.init) is None:
            continue
        eligible.append(reg.name)
    return eligible


def _pick_backward_inits(gate, target):
    """Fanin initial values making the gate produce ``target``, or None."""
    n = len(gate.fanins)
    for bits in itertools.product([False, True], repeat=min(n, 10)):
        values = list(bits) + [False] * (n - len(bits))
        if eval_gate(gate.gtype, values) == bool(target):
            return values
    return None


def backward_retime_register(circuit, reg_name):
    """Apply one backward move in place; returns the replacement gate net.

    The register disappears; new registers are placed on the driving gate's
    fanins, and a copy of the gate over the new registers replaces the old
    register output.
    """
    reg = circuit.registers.get(reg_name)
    if reg is None:
        raise TransformError("no such register: {!r}".format(reg_name))
    gate = circuit.gates.get(reg.data_in)
    if gate is None or gate.gtype not in _MOVABLE or not gate.fanins:
        raise TransformError(
            "register {!r} is not backward-movable".format(reg_name)
        )
    inits = _pick_backward_inits(gate, reg.init)
    if inits is None:
        raise TransformError(
            "no consistent initial state for backward move of {!r}".format(
                reg_name
            )
        )
    new_regs = []
    for fanin, init in zip(gate.fanins, inits):
        new_reg = circuit.fresh_name("btr_{}".format(fanin))
        circuit.add_register(new_reg, fanin, init=init)
        new_regs.append(new_reg)
    new_gate = circuit.fresh_name("btg_{}".format(reg_name))
    circuit.add_gate(new_gate, gate.gtype, new_regs)
    circuit.replace_fanin(reg_name, new_gate)
    del circuit.registers[reg_name]
    circuit._topo_cache = None
    return new_gate


def retime(circuit, moves=4, seed=0, direction="both"):
    """Apply a random sequence of legal retiming moves to a copy.

    ``direction`` is 'forward', 'backward' or 'both'.  Returns the retimed
    circuit (swept of dead logic).  The result is sequentially equivalent to
    the input by construction.
    """
    from .optimize import sweep

    result = circuit.copy()
    rng = random.Random(seed)
    applied = 0
    for _ in range(moves * 4):
        if applied >= moves:
            break
        options = []
        if direction in ("forward", "both"):
            options.extend(("f", g) for g in forward_movable_gates(result))
        if direction in ("backward", "both"):
            options.extend(("b", r) for r in backward_movable_registers(result))
        if not options:
            break
        kind, target = rng.choice(options)
        if kind == "f":
            forward_retime_gate(result, target)
        else:
            backward_retime_register(result, target)
        applied += 1
    result = sweep(result)
    result.validate()
    return result


def initial_output_values(circuit):
    """Output values in the initial state under all-zero inputs (debug aid)."""
    values = single_eval(
        circuit,
        {net: False for net in circuit.inputs},
        circuit.initial_state(),
    )
    return {net: values[net] for net in circuit.outputs}
