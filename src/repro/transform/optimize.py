"""Combinational resynthesis passes (the SIS ``script.rugged`` stand-in).

Every pass is semantics-preserving on all primary outputs and register data
inputs; the composite :func:`optimize` destroys gate-level structure and
names, which is exactly what makes the verification problem interesting —
the paper further optimizes the retimed benchmarks with ``script.rugged`` to
reduce the fraction of corresponding signals from 85% to 54%.
"""

import random

from ..errors import TransformError
from ..netlist.circuit import Circuit, GateType
from ..netlist.cones import combinational_support, transitive_fanin
from ..netlist.simulate import bit_parallel_eval
from ..netlist.strash import strash
from .twolevel import minterms_to_cubes

# --------------------------------------------------------------------------
# Individual passes (each takes and returns a Circuit; callers pass copies)
# --------------------------------------------------------------------------


def constant_fold(circuit):
    """Propagate constants through gates and collapse degenerate gates."""
    circuit = circuit.copy()
    const = {}
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        if gate.gtype is GateType.CONST0:
            const[name] = False
            continue
        if gate.gtype is GateType.CONST1:
            const[name] = True
            continue
        known = [const[f] for f in gate.fanins if f in const]
        unknown = [f for f in gate.fanins if f not in const]
        folded = _fold_gate(circuit, gate, known, unknown)
        if folded is not None:
            const[name] = folded
    changed = {
        name: value for name, value in const.items()
        if name in circuit.gates
        and circuit.gates[name].gtype not in (GateType.CONST0, GateType.CONST1)
    }
    for name, value in changed.items():
        gate = circuit.gates[name]
        gate.gtype = GateType.CONST1 if value else GateType.CONST0
        gate.fanins = []
    circuit._topo_cache = None
    return sweep(circuit)


def _fold_gate(circuit, gate, known, unknown):
    """Constant value of the gate if determined; may simplify in place."""
    gtype = gate.gtype
    if gtype in (GateType.AND, GateType.NAND):
        if any(v is False for v in known):
            return gtype is GateType.NAND
        if not unknown:
            return gtype is GateType.AND
        gate.fanins = list(unknown)
        if len(unknown) == 1 and gtype is GateType.NAND:
            gate.gtype = GateType.NOT
        elif len(unknown) == 1:
            gate.gtype = GateType.BUF
        return None
    if gtype in (GateType.OR, GateType.NOR):
        if any(v is True for v in known):
            return gtype is GateType.OR
        if not unknown:
            return gtype is GateType.NOR
        gate.fanins = list(unknown)
        if len(unknown) == 1:
            gate.gtype = GateType.BUF if gtype is GateType.OR else GateType.NOT
        return None
    if gtype in (GateType.XOR, GateType.XNOR):
        parity = sum(bool(v) for v in known) % 2 == 1
        if not unknown:
            value = parity
            return value != (gtype is GateType.XNOR)
        invert = parity != (gtype is GateType.XNOR)
        gate.fanins = list(unknown)
        if len(unknown) == 1:
            gate.gtype = GateType.NOT if invert else GateType.BUF
        else:
            gate.gtype = GateType.XNOR if invert else GateType.XOR
        return None
    if gtype is GateType.NOT and known:
        return not known[0]
    if gtype is GateType.BUF and known:
        return known[0]
    return None


def sweep(circuit):
    """Remove gates *and registers* not in the sequential fanin of an output.

    Liveness is computed through register data inputs, so a register whose
    output feeds nothing transitively observable disappears along with its
    input cone.
    """
    circuit = circuit.copy()
    live = transitive_fanin(circuit, list(circuit.outputs),
                            stop_at_registers=False)
    for name in [n for n in circuit.gates if n not in live]:
        circuit.remove_gate(name)
    for name in [n for n in circuit.registers if n not in live]:
        del circuit.registers[name]
    circuit._topo_cache = None
    return circuit


def remove_double_negation(circuit):
    """Rewire NOT(NOT(x)) readers straight to x; sweep the dead pair."""
    circuit = circuit.copy()
    for name in circuit.topo_order():
        gate = circuit.gates.get(name)
        if gate is None or gate.gtype is not GateType.NOT:
            continue
        inner_name = gate.fanins[0]
        inner = circuit.gates.get(inner_name)
        if inner is not None and inner.gtype is GateType.NOT:
            circuit.replace_fanin(name, inner.fanins[0])
    return sweep(circuit)


def demorgan_rewrite(circuit, seed=0, fraction=0.5):
    """Rewrite a random subset of AND/OR/NAND/NOR gates via De Morgan."""
    circuit = circuit.copy()
    rng = random.Random(seed)
    targets = [
        name
        for name, gate in circuit.gates.items()
        if gate.gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR)
        and rng.random() < fraction
    ]
    dual = {
        GateType.AND: GateType.NOR,
        GateType.OR: GateType.NAND,
        GateType.NAND: GateType.OR,
        GateType.NOR: GateType.AND,
    }
    for name in targets:
        gate = circuit.gates[name]
        inverted = []
        for fanin in gate.fanins:
            inv = circuit.fresh_name("dm_{}".format(fanin))
            circuit.add_gate(inv, GateType.NOT, [fanin])
            inverted.append(inv)
        gate.gtype = dual[gate.gtype]
        gate.fanins = inverted
    circuit._topo_cache = None
    return circuit


def associative_regroup(circuit, seed=0):
    """Flatten same-type AND/OR trees and rebuild them as random trees."""
    circuit = circuit.copy()
    rng = random.Random(seed)
    fanout = circuit.fanout_map()
    for name in list(circuit.topo_order()):
        gate = circuit.gates.get(name)
        if gate is None or gate.gtype not in (GateType.AND, GateType.OR):
            continue
        leaves = _flatten(circuit, name, gate.gtype, fanout)
        if len(leaves) <= 2:
            continue
        rng.shuffle(leaves)
        while len(leaves) > 2:
            a = leaves.pop()
            b = leaves.pop()
            mid = circuit.fresh_name("ag_{}".format(name))
            circuit.add_gate(mid, gate.gtype, [a, b])
            leaves.insert(rng.randrange(len(leaves) + 1), mid)
        gate.fanins = leaves
        fanout = circuit.fanout_map()
    circuit._topo_cache = None
    return sweep(circuit)


def _flatten(circuit, name, gtype, fanout):
    """Leaves of the maximal single-fanout same-type tree rooted at name."""
    leaves = []
    stack = list(circuit.gates[name].fanins)
    while stack:
        net = stack.pop()
        gate = circuit.gates.get(net)
        if (
            gate is not None
            and gate.gtype is gtype
            and len(fanout.get(net, ())) == 1
            and net not in circuit.outputs
        ):
            stack.extend(gate.fanins)
        else:
            leaves.append(net)
    return leaves


def xor_expand(circuit, seed=0, fraction=0.5):
    """Expand 2-input XOR/XNOR into AND/OR/NOT structure on a random subset."""
    circuit = circuit.copy()
    rng = random.Random(seed)
    targets = [
        name
        for name, gate in circuit.gates.items()
        if gate.gtype in (GateType.XOR, GateType.XNOR)
        and len(gate.fanins) == 2
        and rng.random() < fraction
    ]
    for name in targets:
        gate = circuit.gates[name]
        a, b = gate.fanins
        na = circuit.fresh_name("xe_na_{}".format(name))
        nb = circuit.fresh_name("xe_nb_{}".format(name))
        t1 = circuit.fresh_name("xe_t1_{}".format(name))
        t2 = circuit.fresh_name("xe_t2_{}".format(name))
        circuit.add_gate(na, GateType.NOT, [a])
        circuit.add_gate(nb, GateType.NOT, [b])
        if gate.gtype is GateType.XOR:
            circuit.add_gate(t1, GateType.AND, [a, nb])
            circuit.add_gate(t2, GateType.AND, [na, b])
            gate.gtype = GateType.OR
        else:
            circuit.add_gate(t1, GateType.AND, [a, b])
            circuit.add_gate(t2, GateType.AND, [na, nb])
            gate.gtype = GateType.OR
        gate.fanins = [t1, t2]
    circuit._topo_cache = None
    return circuit


def cone_resynthesize(circuit, seed=0, max_support=5, fraction=0.3):
    """Re-express random small cones as fresh minimized two-level logic.

    The most aggressive pass: it collapses a gate's combinational cone to a
    truth table over its leaf support and rebuilds a minimized SOP, leaving
    nothing of the original structure.
    """
    circuit = circuit.copy()
    rng = random.Random(seed)
    candidates = []
    for name in circuit.topo_order():
        support = sorted(combinational_support(circuit, name))
        if 1 <= len(support) <= max_support:
            candidates.append((name, support))
    rng.shuffle(candidates)
    chosen = candidates[: max(1, int(len(candidates) * fraction))]
    for name, support in chosen:
        gate = circuit.gates.get(name)
        if gate is None:
            continue
        width = len(support)
        # Exhaustive truth table via one bit-parallel evaluation.
        env = {}
        for i, leaf in enumerate(support):
            word = 0
            for pattern in range(1 << width):
                if (pattern >> i) & 1:
                    word |= 1 << pattern
            env[leaf] = word
        for leaf in list(circuit.inputs) + list(circuit.registers):
            env.setdefault(leaf, 0)
        values = bit_parallel_eval(circuit, env, 1 << width)
        table = values[name]
        minterms = [p for p in range(1 << width) if (table >> p) & 1]
        cubes = minterms_to_cubes(minterms, width)
        _replace_with_sop(circuit, name, support, cubes)
    circuit._topo_cache = None
    return sweep(circuit)


def _replace_with_sop(circuit, name, support, cubes):
    """Rebuild gate ``name`` as an SOP over ``support`` given cube cover."""
    gate = circuit.gates[name]
    if not cubes:
        gate.gtype = GateType.CONST0
        gate.fanins = []
        return
    if cubes == ["-" * len(support)]:
        gate.gtype = GateType.CONST1
        gate.fanins = []
        return
    inverters = {}

    def lit(leaf, positive):
        if positive:
            return leaf
        if leaf not in inverters:
            inv = circuit.fresh_name("rs_n_{}".format(leaf))
            circuit.add_gate(inv, GateType.NOT, [leaf])
            inverters[leaf] = inv
        return inverters[leaf]

    terms = []
    for idx, cube in enumerate(cubes):
        # Cube strings are MSB-first w.r.t. the minterm integer, while
        # support[i] was assigned pattern bit i (LSB-first): reverse the cube.
        literals = [
            lit(leaf, c == "1")
            for leaf, c in zip(support, reversed(cube))
            if c != "-"
        ]
        if len(literals) == 1:
            terms.append(literals[0])
        else:
            term = circuit.fresh_name("rs_t{}_{}".format(idx, name))
            circuit.add_gate(term, GateType.AND, literals)
            terms.append(term)
    if len(terms) == 1:
        gate.gtype = GateType.BUF
        gate.fanins = [terms[0]]
    else:
        gate.gtype = GateType.OR
        gate.fanins = terms


def obfuscate_names(circuit, seed=0, prefix="n"):
    """Rename every internal net (gates and registers) to opaque names.

    Primary input names are kept (the product machine shares them); output
    *positions* are preserved.  Mirrors how synthesis destroys the name
    correspondence that tools like [10] rely on.
    """
    rng = random.Random(seed)
    internal = list(circuit.gates) + list(circuit.registers)
    rng.shuffle(internal)
    mapping = {net: "{}{}".format(prefix, i) for i, net in enumerate(internal)}

    def rn(net):
        return mapping.get(net, net)

    out = Circuit(circuit.name)
    out.inputs = list(circuit.inputs)
    out.outputs = [rn(net) for net in circuit.outputs]
    for reg in circuit.registers.values():
        out.registers[rn(reg.name)] = type(reg)(
            rn(reg.name), rn(reg.data_in), reg.init
        )
    for gate in circuit.gates.values():
        out.gates[rn(gate.name)] = type(gate)(
            rn(gate.name), gate.gtype, [rn(f) for f in gate.fanins]
        )
    return out.validate()


# --------------------------------------------------------------------------
# The composite pipeline
# --------------------------------------------------------------------------

OPTIMIZE_LEVELS = (0, 1, 2)


def optimize(circuit, level=2, seed=0):
    """Apply the optimization pipeline at the given aggressiveness level.

    * level 0 — identity (fresh copy only).
    * level 1 — light cleanup: constant folding, double-negation removal,
      structural hashing, dead-logic sweep.
    * level 2 — the ``script.rugged`` stand-in: level 1 plus De Morgan
      rewriting, associative regrouping, XOR expansion, cone resynthesis,
      another cleanup round, and name obfuscation.
    """
    if level not in OPTIMIZE_LEVELS:
        raise TransformError("optimize level must be one of {}".format(OPTIMIZE_LEVELS))
    result = circuit.copy()
    if level == 0:
        return result
    result = constant_fold(result)
    result = remove_double_negation(result)
    result, _ = strash(result)
    result = sweep(result)
    if level == 1:
        return result.validate()
    result = demorgan_rewrite(result, seed=seed, fraction=0.4)
    result = associative_regroup(result, seed=seed + 1)
    result = xor_expand(result, seed=seed + 2, fraction=0.5)
    result = cone_resynthesize(result, seed=seed + 3)
    result = constant_fold(result)
    result = remove_double_negation(result)
    result, _ = strash(result)
    result = sweep(result)
    result = obfuscate_names(result, seed=seed + 4)
    return result.validate()
