"""Two-level (SOP) minimization: a compact Quine-McCluskey with greedy cover.

Used by the cone-resynthesis optimization pass to re-express small logic
cones — the stand-in for SIS ``script.rugged``'s collapse/minimize steps in
the benchmark synthesis pipeline.

Cubes are strings over '0', '1', '-' (one character per variable).
"""


def minterms_to_cubes(minterms, width):
    """Minimal-ish cover of the given on-set minterms.

    Returns a list of cube strings.  Empty list = constant 0; the single cube
    of all '-' = constant 1 (when the on-set is complete).
    """
    if not minterms:
        return []
    if len(set(minterms)) == 1 << width:
        return ["-" * width]
    primes = _prime_implicants(set(minterms), width)
    return _greedy_cover(primes, set(minterms), width)


def _to_cube(minterm, width):
    return format(minterm, "0{}b".format(width)) if width else ""


def _merge(a, b):
    """Merge two cubes differing in exactly one specified bit, else None."""
    diff = 0
    merged = []
    for ca, cb in zip(a, b):
        if ca == cb:
            merged.append(ca)
        elif "-" in (ca, cb):
            return None
        else:
            diff += 1
            merged.append("-")
            if diff > 1:
                return None
    return "".join(merged) if diff == 1 else None


def _prime_implicants(minterms, width):
    current = {_to_cube(m, width) for m in minterms}
    primes = set()
    while current:
        merged_any = set()
        used = set()
        current_list = sorted(current)
        for i, a in enumerate(current_list):
            for b in current_list[i + 1:]:
                merged = _merge(a, b)
                if merged is not None:
                    merged_any.add(merged)
                    used.add(a)
                    used.add(b)
        primes.update(c for c in current_list if c not in used)
        current = merged_any
    return sorted(primes)


def cube_covers(cube, minterm, width):
    bits = _to_cube(minterm, width)
    return all(c == "-" or c == b for c, b in zip(cube, bits))


def _greedy_cover(primes, minterms, width):
    remaining = set(minterms)
    cover = []
    coverage = {
        cube: {m for m in minterms if cube_covers(cube, m, width)}
        for cube in primes
    }
    while remaining:
        best = max(primes, key=lambda c: (len(coverage[c] & remaining), c))
        gained = coverage[best] & remaining
        if not gained:
            raise AssertionError("prime implicants fail to cover on-set")
        cover.append(best)
        remaining -= gained
    return cover


def eval_cover(cubes, assignment_bits):
    """Evaluate a cube cover on a tuple/list of booleans."""
    for cube in cubes:
        if all(
            c == "-" or (c == "1") == bool(bit)
            for c, bit in zip(cube, assignment_bits)
        ):
            return True
    return False
