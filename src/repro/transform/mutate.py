"""Fault injection: create *inequivalent* variants for negative testing.

A mutation may accidentally be benign (redundant logic); callers that need a
guaranteed-inequivalent pair should confirm with simulation or the
reachability baseline — :func:`inject_distinguishable_fault` does the
simulation screen automatically.
"""

import random

from ..errors import TransformError
from ..netlist.circuit import GateType
from ..netlist.simulate import SequentialSimulator

_SWAPS = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
    GateType.BUF: GateType.NOT,
}


def inject_fault(circuit, seed=0):
    """Apply one random mutation to a copy; returns (circuit, description).

    Mutations: gate-type swap, fanin negation (insert inverter), stuck
    register initial value flip.
    """
    result = circuit.copy()
    rng = random.Random(seed)
    kinds = []
    if result.gates:
        kinds.extend(["type_swap", "negate_fanin"])
    if result.registers:
        kinds.append("init_flip")
    if not kinds:
        raise TransformError("nothing to mutate")
    kind = rng.choice(kinds)
    if kind == "type_swap":
        name = rng.choice(sorted(result.gates))
        gate = result.gates[name]
        if gate.gtype in _SWAPS:
            gate.gtype = _SWAPS[gate.gtype]
            return result, "type_swap:{}".format(name)
        kind = "negate_fanin"
    if kind == "negate_fanin":
        candidates = [g for g in result.gates.values() if g.fanins]
        if not candidates:
            raise TransformError("no gate with fanins to mutate")
        gate = rng.choice(sorted(candidates, key=lambda g: g.name))
        idx = rng.randrange(len(gate.fanins))
        target = gate.fanins[idx]
        inv = result.fresh_name("flt_{}".format(target))
        result.add_gate(inv, GateType.NOT, [target])
        gate.fanins[idx] = inv
        result._topo_cache = None
        return result, "negate_fanin:{}[{}]".format(gate.name, idx)
    name = rng.choice(sorted(result.registers))
    reg = result.registers[name]
    reg.init = not reg.init
    return result, "init_flip:{}".format(name)


def inject_distinguishable_fault(circuit, seed=0, frames=32, width=64,
                                 attempts=50):
    """Inject a fault that random simulation confirms changes output behaviour.

    Returns ``(mutated_circuit, description)``; raises if ``attempts``
    mutations all look benign under simulation (rare on real circuits).
    """
    for attempt in range(attempts):
        mutated, description = inject_fault(circuit, seed=seed + attempt)
        sim_a = SequentialSimulator(circuit, width=width, seed=seed)
        sim_b = SequentialSimulator(mutated, width=width, seed=seed)
        sig_a = sim_a.run(frames)
        sig_b = sim_b.run(frames)
        differs = any(
            sig_a[out_a] != sig_b[out_b]
            for out_a, out_b in zip(circuit.outputs, mutated.outputs)
        )
        if differs:
            return mutated, description
    raise TransformError(
        "could not produce a simulation-distinguishable fault in {} tries".format(
            attempts
        )
    )
