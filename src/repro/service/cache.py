"""Disk-backed verification result cache.

Entries are keyed by :meth:`repro.service.job.JobSpec.cache_key` — a
structural hash of the (spec, impl, method, options) tuple — so repeated
suite runs and ablation sweeps skip every already-solved job.  One JSON
file per entry under a two-character fan-out directory; writes go through a
temp file + ``os.replace`` so concurrent writers (parallel schedulers
sharing a cache directory) never expose half-written entries.

The cache can be capped (``max_entries``/``max_bytes``): :meth:`put`
prunes least-recently-used entries past either limit, where "used" is the
file mtime — refreshed on every :meth:`get` hit — so long fuzz/soak runs
no longer grow the directory without bound.
"""

import json
import os
import tempfile

from ..reach.result import SecResult
from .job import CACHE_FORMAT_VERSION


class ResultCache:
    """Maps cache keys to :class:`SecResult` records on disk."""

    def __init__(self, root, cache_inconclusive=True, max_entries=None,
                 max_bytes=None):
        self.root = str(root)
        self.cache_inconclusive = cache_inconclusive
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key):
        """The cached :class:`SecResult` for ``key``, or ``None``."""
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        try:
            os.utime(path, None)  # refresh LRU recency
        except OSError:
            pass
        self.hits += 1
        return SecResult.from_dict(entry["result"])

    def put(self, key, result, meta=None):
        """Store ``result`` under ``key``; returns True if written."""
        if result.inconclusive and not self.cache_inconclusive:
            return False
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "result": result.as_dict(),
            "meta": dict(meta or {}),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_entries is not None or self.max_bytes is not None:
            self.prune()
        return True

    # -- size management ----------------------------------------------------

    def _entries(self):
        """(mtime, size, path) for every entry file, oldest first."""
        entries = []
        for dirpath, _, files in os.walk(self.root):
            for name in files:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def total_bytes(self):
        """Disk footprint of all entries (metadata files excluded)."""
        return sum(size for _, size, _ in self._entries())

    def prune(self, max_entries=None, max_bytes=None):
        """Evict least-recently-used entries past the caps; returns count.

        Caps default to the instance's ``max_entries``/``max_bytes``; both
        ``None`` means nothing to do.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        if max_entries is None and max_bytes is None:
            return 0
        entries = self._entries()
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            over_count = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not over_count and not over_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            count -= 1
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def clear(self):
        """Delete every entry (the directory itself is kept)."""
        for dirpath, _, files in os.walk(self.root):
            for name in files:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                    except OSError:
                        pass

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self), "bytes": self.total_bytes(),
                "evictions": self.evictions,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes}
