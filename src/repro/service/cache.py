"""Disk-backed verification result cache.

Entries are keyed by :meth:`repro.service.job.JobSpec.cache_key` — a
structural hash of the (spec, impl, method, options) tuple — so repeated
suite runs and ablation sweeps skip every already-solved job.  One JSON
file per entry under a two-character fan-out directory; writes go through a
temp file + ``os.replace`` so concurrent writers (parallel schedulers
sharing a cache directory) never expose half-written entries.
"""

import json
import os
import tempfile

from ..reach.result import SecResult
from .job import CACHE_FORMAT_VERSION


class ResultCache:
    """Maps cache keys to :class:`SecResult` records on disk."""

    def __init__(self, root, cache_inconclusive=True):
        self.root = str(root)
        self.cache_inconclusive = cache_inconclusive
        self.hits = 0
        self.misses = 0
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key):
        """The cached :class:`SecResult` for ``key``, or ``None``."""
        try:
            with open(self._path(key)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return SecResult.from_dict(entry["result"])

    def put(self, key, result, meta=None):
        """Store ``result`` under ``key``; returns True if written."""
        if result.inconclusive and not self.cache_inconclusive:
            return False
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "result": result.as_dict(),
            "meta": dict(meta or {}),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def clear(self):
        """Delete every entry (the directory itself is kept)."""
        for dirpath, _, files in os.walk(self.root):
            for name in files:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                    except OSError:
                        pass

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self)}
