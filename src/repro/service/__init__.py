"""Verification service: parallel portfolio racing, batch scheduling,
result caching and a structured event stream.

The service layer turns the single-shot engines into a schedulable fleet::

    from repro.service import BatchScheduler, JobSpec, ResultCache

    jobs = [JobSpec(name, spec, impl) for name, (spec, impl) in pairs]
    scheduler = BatchScheduler(workers=4, cache=ResultCache(".repro-cache"))
    results = scheduler.run(jobs)          # JobResult list, in order

    from repro.service import run_portfolio
    result = run_portfolio(spec, impl)     # first conclusive engine wins

See :mod:`repro.service.events` for the observable event vocabulary and
:mod:`repro.service.render` for the live CLI view.
"""

from .cache import ResultCache
from .events import Event, EventBus, JsonlEventWriter, read_event_log
from .job import JobResult, JobSpec, aborted_result
from .portfolio import DEFAULT_PORTFOLIO_METHODS, run_portfolio
from .render import LiveRenderer
from .scheduler import BatchScheduler, PoolOutcome, WorkerPool
from .worker import register_method, run_job, unregister_method

__all__ = [
    "BatchScheduler",
    "PoolOutcome",
    "WorkerPool",
    "DEFAULT_PORTFOLIO_METHODS",
    "Event",
    "EventBus",
    "JobResult",
    "JobSpec",
    "JsonlEventWriter",
    "LiveRenderer",
    "ResultCache",
    "aborted_result",
    "read_event_log",
    "register_method",
    "run_job",
    "run_portfolio",
    "unregister_method",
]
