"""Worker-process plumbing shared by the portfolio runner and scheduler.

Start-method note: the service prefers ``fork`` (cheap on Linux, and it
lets tests register extra engine methods that workers inherit); on
platforms without it the default context is used, which requires job specs
to be picklable — they are.
"""

import multiprocessing
import queue as queue_mod
import time

from .worker import worker_entry


def get_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def start_worker(ctx, job, token, event_queue, result_queue):
    """Spawn a daemonized worker process for ``job``; returns it started."""
    proc = ctx.Process(
        target=worker_entry,
        args=(job, token, event_queue, result_queue),
        name="repro-worker-{}".format(token),
        daemon=True,
    )
    proc.start()
    return proc


def drain_queue(q):
    """Yield every message currently on ``q`` without blocking."""
    while True:
        try:
            yield q.get_nowait()
        except queue_mod.Empty:
            return


def terminate_gracefully(procs, grace=2.0):
    """Stop worker processes: SIGTERM, wait up to ``grace``, then SIGKILL.

    SIGTERM triggers the workers' cooperative-cancellation path (they
    finish the current engine iteration and exit cleanly); processes that
    do not exit within the grace period are killed.  Returns
    ``{proc: "terminated" | "killed" | "finished"}`` and guarantees every
    process is joined — no orphans survive this call.
    """
    outcome = {}
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            outcome[proc] = "terminated"
        else:
            outcome[proc] = "finished"
    deadline = time.monotonic() + grace
    for proc in procs:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.kill()
            proc.join()
            outcome[proc] = "killed"
    return outcome
