"""Worker-process plumbing shared by the portfolio runner and scheduler.

Start-method note: the service prefers ``fork`` (cheap on Linux, and it
lets tests register extra engine methods that workers inherit); on
platforms without it the default context is used, which requires job specs
to be picklable — they are.

:class:`ForkProcess` wraps a *raw* ``os.fork`` child in the same
``is_alive``/``terminate``/``join``/``kill`` surface so
:func:`terminate_gracefully` works on it too.  Raw fork is what the
engine-level refinement pool (:mod:`repro.core.parallel`) needs: service
workers are daemonic ``multiprocessing`` processes, and daemonic processes
may not start ``multiprocessing`` children — but they may fork.
"""

import errno
import multiprocessing
import os
import queue as queue_mod
import signal
import time

from .worker import worker_entry


def get_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def start_worker(ctx, job, token, event_queue, result_queue):
    """Spawn a daemonized worker process for ``job``; returns it started."""
    proc = ctx.Process(
        target=worker_entry,
        args=(job, token, event_queue, result_queue),
        name="repro-worker-{}".format(token),
        daemon=True,
    )
    proc.start()
    return proc


class ForkProcess:
    """Process-like handle for a raw-``os.fork`` child.

    Implements the subset of the ``multiprocessing.Process`` surface that
    :func:`terminate_gracefully` relies on.  ``is_alive``/``join`` reap the
    child with ``waitpid(WNOHANG)``, so a ``ForkProcess`` that has been
    polled never leaves a zombie behind.
    """

    def __init__(self, pid):
        self.pid = pid
        self._exitcode = None

    @property
    def exitcode(self):
        self.is_alive()
        if self._exitcode is None:
            return None
        if os.WIFSIGNALED(self._exitcode):
            return -os.WTERMSIG(self._exitcode)
        return os.WEXITSTATUS(self._exitcode)

    def is_alive(self):
        if self._exitcode is not None:
            return False
        try:
            pid, status = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            self._exitcode = 0  # reaped elsewhere; treat as finished
            return False
        if pid == 0:
            return True
        self._exitcode = status
        return False

    def _signal(self, signum):
        if self._exitcode is not None:
            return
        try:
            os.kill(self.pid, signum)
        except (ProcessLookupError, PermissionError):
            pass

    def terminate(self):
        self._signal(signal.SIGTERM)

    def kill(self):
        self._signal(signal.SIGKILL)

    def join(self, timeout=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(0.005)


def fork_worker(target, *args):
    """Fork a child running ``target(*args)``; returns a :class:`ForkProcess`.

    The child resets SIGTERM to the default handler, detaches any inherited
    asyncio signal-wakeup fd (same hazard as ``worker_entry``), and leaves
    through ``os._exit`` so no parent atexit/finally machinery runs twice.
    """
    pid = os.fork()
    if pid == 0:
        code = 1
        try:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            try:
                signal.set_wakeup_fd(-1)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
            target(*args)
            code = 0
        except BaseException:  # pragma: no cover - child dies with its error
            code = 1
        finally:
            os._exit(code)
    return ForkProcess(pid)


def write_framed(fd, payload):
    """Write a 4-byte-length-prefixed frame, looping over partial writes."""
    data = len(payload).to_bytes(4, "little") + payload
    view = memoryview(data)
    while view:
        try:
            n = os.write(fd, view)
        except OSError as exc:  # pragma: no cover - EINTR on old kernels
            if exc.errno == errno.EINTR:
                continue
            raise
        view = view[n:]


def read_framed(fd):
    """Read one length-prefixed frame; returns ``None`` on clean EOF."""
    header = _read_exact(fd, 4)
    if header is None:
        return None
    length = int.from_bytes(header, "little")
    payload = _read_exact(fd, length)
    if payload is None:
        raise EOFError("framed message truncated")
    return payload


def _read_exact(fd, n):
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = os.read(fd, remaining)
        except OSError as exc:  # pragma: no cover - EINTR on old kernels
            if exc.errno == errno.EINTR:
                continue
            raise
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def drain_queue(q):
    """Yield every message currently on ``q`` without blocking."""
    while True:
        try:
            yield q.get_nowait()
        except queue_mod.Empty:
            return


def terminate_gracefully(procs, grace=2.0):
    """Stop worker processes: SIGTERM, wait up to ``grace``, then SIGKILL.

    SIGTERM triggers the workers' cooperative-cancellation path (they
    finish the current engine iteration and exit cleanly); processes that
    do not exit within the grace period are killed.  Returns
    ``{proc: "terminated" | "killed" | "finished"}`` and guarantees every
    process is joined — no orphans survive this call.
    """
    outcome = {}
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            outcome[proc] = "terminated"
        else:
            outcome[proc] = "finished"
    deadline = time.monotonic() + grace
    for proc in procs:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.kill()
            proc.join()
            outcome[proc] = "killed"
    return outcome
