"""Worker-process plumbing shared by the portfolio runner and scheduler.

Start-method note: the service prefers ``fork`` (cheap on Linux, and it
lets tests register extra engine methods that workers inherit); on
platforms without it the default context is used, which requires job specs
to be picklable — they are.

:class:`ForkProcess` wraps a *raw* ``os.fork`` child in the same
``is_alive``/``terminate``/``join``/``kill`` surface so
:func:`terminate_gracefully` works on it too.  Raw fork is what the
engine-level refinement pool (:mod:`repro.core.parallel`) needs: service
workers are daemonic ``multiprocessing`` processes, and daemonic processes
may not start ``multiprocessing`` children — but they may fork.

:class:`StealPool` builds on the same plumbing: a generic work-stealing
pool of raw-fork workers speaking length-prefixed pickles, used by the
parallel refinement engine (batched Q-checks) and the FRAIG strategy racer
(:mod:`repro.sweep.race`).  The master holds the task deque; idle workers
are handed the next batch as soon as their previous reply drains, so load
balances dynamically instead of by up-front assignment.
"""

import errno
import multiprocessing
import os
import pickle
import queue as queue_mod
import select
import signal
import time
import traceback
from collections import deque

from ..errors import ResourceBudgetExceeded
from .worker import worker_entry


def get_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def start_worker(ctx, job, token, event_queue, result_queue):
    """Spawn a daemonized worker process for ``job``; returns it started."""
    proc = ctx.Process(
        target=worker_entry,
        args=(job, token, event_queue, result_queue),
        name="repro-worker-{}".format(token),
        daemon=True,
    )
    proc.start()
    return proc


class ForkProcess:
    """Process-like handle for a raw-``os.fork`` child.

    Implements the subset of the ``multiprocessing.Process`` surface that
    :func:`terminate_gracefully` relies on.  ``is_alive``/``join`` reap the
    child with ``waitpid(WNOHANG)``, so a ``ForkProcess`` that has been
    polled never leaves a zombie behind.
    """

    def __init__(self, pid):
        self.pid = pid
        self._exitcode = None

    @property
    def exitcode(self):
        self.is_alive()
        if self._exitcode is None:
            return None
        if os.WIFSIGNALED(self._exitcode):
            return -os.WTERMSIG(self._exitcode)
        return os.WEXITSTATUS(self._exitcode)

    def is_alive(self):
        if self._exitcode is not None:
            return False
        try:
            pid, status = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            self._exitcode = 0  # reaped elsewhere; treat as finished
            return False
        if pid == 0:
            return True
        self._exitcode = status
        return False

    def _signal(self, signum):
        if self._exitcode is not None:
            return
        try:
            os.kill(self.pid, signum)
        except (ProcessLookupError, PermissionError):
            pass

    def terminate(self):
        self._signal(signal.SIGTERM)

    def kill(self):
        self._signal(signal.SIGKILL)

    def join(self, timeout=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(0.005)


def fork_worker(target, *args):
    """Fork a child running ``target(*args)``; returns a :class:`ForkProcess`.

    The child resets SIGTERM to the default handler, detaches any inherited
    asyncio signal-wakeup fd (same hazard as ``worker_entry``), and leaves
    through ``os._exit`` so no parent atexit/finally machinery runs twice.
    """
    pid = os.fork()
    if pid == 0:
        code = 1
        try:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            try:
                signal.set_wakeup_fd(-1)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
            target(*args)
            code = 0
        except BaseException:  # pragma: no cover - child dies with its error
            code = 1
        finally:
            os._exit(code)
    return ForkProcess(pid)


def write_framed(fd, payload):
    """Write a 4-byte-length-prefixed frame, looping over partial writes."""
    data = len(payload).to_bytes(4, "little") + payload
    view = memoryview(data)
    while view:
        try:
            n = os.write(fd, view)
        except OSError as exc:  # pragma: no cover - EINTR on old kernels
            if exc.errno == errno.EINTR:
                continue
            raise
        view = view[n:]


def read_framed(fd):
    """Read one length-prefixed frame; returns ``None`` on clean EOF."""
    header = _read_exact(fd, 4)
    if header is None:
        return None
    length = int.from_bytes(header, "little")
    payload = _read_exact(fd, length)
    if payload is None:
        raise EOFError("framed message truncated")
    return payload


def _read_exact(fd, n):
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = os.read(fd, remaining)
        except OSError as exc:  # pragma: no cover - EINTR on old kernels
            if exc.errno == errno.EINTR:
                continue
            raise
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class StealPoolError(RuntimeError):
    """The pool is unusable: spawn failed, a handler raised, or the
    respawn limit was hit.  Callers degrade to their serial path."""


_NO_SETUP = object()


class _StealWorker:
    """Master-side handle on one pool worker (mutable across respawns)."""

    __slots__ = ("index", "proc", "req_w", "resp_r", "inflight")

    def __init__(self, index, proc, req_w, resp_r):
        self.index = index
        self.proc = proc
        self.req_w = req_w
        self.resp_r = resp_r
        self.inflight = None  # batch id currently on this worker's pipe


def _steal_child_main(handler_factory, factory_args, req_r, resp_w,
                      close_fds):
    """Child entry: build the handler once, then serve frames until EOF.

    Protocol (one pickle frame per message):

    * ``("setup", payload)`` — ``handler.setup(payload)``, no reply; an
      exception is remembered and surfaces as an error reply on the next
      batch (the master treats it as fatal).
    * ``("batch", bid, payload)`` — ``handler.batch(payload)``; replies
      ``("done", bid, result)``, ``("budget", bid, msg)`` on
      :class:`ResourceBudgetExceeded`, or ``("error", bid, traceback)``.
    * ``("stop",)`` — exit.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    handler = handler_factory(*factory_args)
    setup_error = None
    while True:
        payload = read_framed(req_r)
        if payload is None:
            break
        message = pickle.loads(payload)
        kind = message[0]
        if kind == "stop":
            break
        if kind == "setup":
            setup_error = None
            try:
                handler.setup(message[1])
            except Exception:
                setup_error = traceback.format_exc()
            continue
        bid = message[1]
        if setup_error is not None:
            reply = ("error", bid, setup_error)
        else:
            try:
                reply = ("done", bid, handler.batch(message[2]))
            except ResourceBudgetExceeded as exc:
                reply = ("budget", bid, str(exc))
            except Exception:
                reply = ("error", bid, traceback.format_exc())
        write_framed(resp_w, pickle.dumps(reply, pickle.HIGHEST_PROTOCOL))


class StealPool:
    """Work-stealing pool of raw-fork workers over framed-pickle pipes.

    ``handler_factory(*factory_args)`` runs **in each child** right after
    the fork and returns an object with ``setup(payload)`` and
    ``batch(payload) -> result`` methods; because children are forked, the
    factory and its arguments are shared by memory, never pickled — only
    setup/batch payloads and results cross the pipes.

    Dispatch is pull-based: :meth:`run_batches` keeps a deque of pending
    batch ids and hands the next one to whichever worker goes idle first,
    so a slow batch never strands work behind a fixed assignment.  A dead
    worker (EOF, broken pipe, unpicklable reply) loses only its in-flight
    batch: the batch is re-queued, the worker re-forked from current
    master state, and the stored setup payload re-sent — ``on_respawn``
    is called with the worker index so callers can count the rebuild.
    ``max_respawns`` bounds total respawns per pool (then
    :class:`StealPoolError`).
    """

    def __init__(self, n_workers, handler_factory, factory_args=(),
                 max_respawns=None, on_respawn=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only repo
            raise StealPoolError("StealPool requires os.fork")
        self._factory = handler_factory
        self._factory_args = tuple(factory_args)
        self._setup = _NO_SETUP
        self._max_respawns = max_respawns
        self._on_respawn = on_respawn
        self.respawns = 0
        self._workers = []
        try:
            for index in range(n_workers):
                self._workers.append(self._spawn(index))
        except OSError as exc:
            self.close()
            raise StealPoolError(
                "spawning pool worker failed: {}".format(exc)) from exc

    def __len__(self):
        return len(self._workers)

    def _parent_fds(self):
        fds = []
        for worker in self._workers:
            for fd in (worker.req_w, worker.resp_r):
                if fd is not None:
                    fds.append(fd)
        return fds

    def _spawn(self, index):
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        # The child must drop every parent-side fd it inherited: its own
        # pair's, and those of previously-forked siblings — otherwise a
        # dead master's pipes never read EOF.
        child_closes = self._parent_fds() + [req_w, resp_r]
        proc = fork_worker(_steal_child_main, self._factory,
                           self._factory_args, req_r, resp_w, child_closes)
        os.close(req_r)
        os.close(resp_w)
        return _StealWorker(index, proc, req_w, resp_r)

    def _send(self, worker, message):
        """Frame ``message`` onto ``worker``'s pipe; False if it is dead."""
        try:
            write_framed(worker.req_w,
                         pickle.dumps(message, pickle.HIGHEST_PROTOCOL))
            return True
        except OSError:
            return False

    def _respawn(self, worker):
        """Replace a dead worker in place; re-sends the stored setup."""
        for fd in (worker.req_w, worker.resp_r):
            try:
                os.close(fd)
            except OSError:
                pass
        # Stale fd numbers must not leak into the next _parent_fds() —
        # the kernel reuses them for the fresh pipes.
        worker.req_w = worker.resp_r = None
        worker.inflight = None
        terminate_gracefully([worker.proc], grace=0.5)
        if (self._max_respawns is not None
                and self.respawns >= self._max_respawns):
            raise StealPoolError("worker respawn limit exceeded")
        self.respawns += 1
        try:
            fresh = self._spawn(worker.index)
        except OSError as exc:
            raise StealPoolError(
                "respawning pool worker failed: {}".format(exc)) from exc
        worker.proc = fresh.proc
        worker.req_w = fresh.req_w
        worker.resp_r = fresh.resp_r
        if self._setup is not _NO_SETUP:
            if not self._send(worker, ("setup", self._setup)):
                raise StealPoolError("respawned worker died immediately")
        if self._on_respawn is not None:
            self._on_respawn(worker.index)

    def broadcast(self, payload):
        """Send a setup message to every worker (and future respawns)."""
        self._setup = payload
        for worker in self._workers:
            if not self._send(worker, ("setup", payload)):
                self._respawn(worker)

    def run_batches(self, batches, on_result=None, poll=None):
        """Drain ``batches`` through the pool; returns results in order.

        ``on_result(bid, result, worker_index)`` fires as each batch
        completes — this is the overlap hook: the master does its own work
        (e.g. counterexample replay) while other batches are still
        running.  A truthy return stops the run early (racing); remaining
        slots stay ``None`` and in-flight work is abandoned to
        :meth:`close`.  ``poll()`` is called every wait tick (budget and
        cancellation checks; it may raise).  Worker replies of kind
        ``budget`` raise :class:`ResourceBudgetExceeded`; ``error``
        replies raise :class:`StealPoolError`.
        """
        results = [None] * len(batches)
        pending = deque(range(len(batches)))
        remaining = len(batches)
        while remaining:
            if poll is not None:
                poll()
            for worker in self._workers:
                if worker.inflight is None and pending:
                    bid = pending.popleft()
                    if self._send(worker, ("batch", bid, batches[bid])):
                        worker.inflight = bid
                    else:
                        pending.appendleft(bid)
                        self._respawn(worker)
            busy = {worker.resp_r: worker for worker in self._workers
                    if worker.inflight is not None}
            if not busy:
                continue
            ready, _, _ = select.select(list(busy), [], [], 0.1)
            for fd in ready:
                worker = busy[fd]
                try:
                    payload = read_framed(fd)
                    if payload is None:
                        raise EOFError("steal-pool worker exited")
                    kind, bid, value = pickle.loads(payload)
                except Exception:
                    # Crash degradation: only this worker's in-flight
                    # batch is re-queued; everything already merged and
                    # everything on other workers is untouched.
                    pending.appendleft(worker.inflight)
                    self._respawn(worker)
                    continue
                worker.inflight = None
                if kind == "budget":
                    raise ResourceBudgetExceeded(value)
                if kind == "error":
                    raise StealPoolError(value)
                results[bid] = value
                remaining -= 1
                if on_result is not None and on_result(bid, value,
                                                       worker.index):
                    return results
        return results

    def close(self):
        """Tear the pool down; idempotent, leaves no orphans.

        Workers idle on their request pipe exit on the stop frame; workers
        stuck in a long batch are SIGTERMed (raw-fork children restore the
        default handler, so the signal lands) and SIGKILLed past the grace
        period by :func:`terminate_gracefully`.
        """
        workers, self._workers = self._workers, []
        stop = pickle.dumps(("stop",), pickle.HIGHEST_PROTOCOL)
        for worker in workers:
            if worker.req_w is not None:
                try:
                    write_framed(worker.req_w, stop)
                except OSError:
                    pass
        for worker in workers:
            for fd in (worker.req_w, worker.resp_r):
                if fd is not None:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
        if workers:
            terminate_gracefully([w.proc for w in workers], grace=1.0)


def drain_queue(q):
    """Yield every message currently on ``q`` without blocking."""
    while True:
        try:
            yield q.get_nowait()
        except queue_mod.Empty:
            return


def terminate_gracefully(procs, grace=2.0):
    """Stop worker processes: SIGTERM, wait up to ``grace``, then SIGKILL.

    SIGTERM triggers the workers' cooperative-cancellation path (they
    finish the current engine iteration and exit cleanly); processes that
    do not exit within the grace period are killed.  Returns
    ``{proc: "terminated" | "killed" | "finished"}`` and guarantees every
    process is joined — no orphans survive this call.
    """
    outcome = {}
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            outcome[proc] = "terminated"
        else:
            outcome[proc] = "finished"
    deadline = time.monotonic() + grace
    for proc in procs:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.kill()
            proc.join()
            outcome[proc] = "killed"
    return outcome
