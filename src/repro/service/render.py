"""Human-readable live view of the service event stream.

:class:`LiveRenderer` subscribes to an :class:`~repro.service.events.EventBus`
and prints one line per lifecycle event (plus iteration ticks in verbose
mode).  Output is append-only — no cursor tricks — so it reads equally well
on a terminal, piped through ``tee``, or in CI logs.
"""

import sys

from . import events as ev

_VERDICT_LABELS = {True: "proved", False: "REFUTED", None: "undecided"}


def _fmt_seconds(seconds):
    return "-" if seconds is None else "{:.2f}s".format(seconds)


class LiveRenderer:
    """Prints service events as they happen; also tallies a summary."""

    def __init__(self, stream=None, verbose=False):
        self.stream = stream or sys.stdout
        self.verbose = verbose
        self.total_jobs = 0
        self.done_jobs = 0

    # The renderer is itself a bus subscriber.
    def __call__(self, event):
        line = self._format(event)
        if line is not None:
            self.stream.write(line + "\n")
            self.stream.flush()

    def _progress_prefix(self):
        if self.total_jobs:
            return "[{:>3}/{}] ".format(self.done_jobs, self.total_jobs)
        return ""

    def _format(self, event):
        data = event.data
        kind = event.type
        if kind == ev.BATCH_STARTED:
            self.total_jobs = data.get("jobs", 0)
            self.done_jobs = 0
            return "batch: {} jobs on {} workers".format(
                data.get("jobs"), data.get("workers"))
        if kind == ev.BATCH_FINISHED:
            return ("batch: done in {} — {} proved, {} refuted, "
                    "{} undecided ({} cached)").format(
                _fmt_seconds(data.get("seconds")), data.get("proved"),
                data.get("refuted"), data.get("undecided"),
                data.get("cached"))
        if kind == ev.JOB_STARTED:
            return "{}{:<12} {:<10} started{}".format(
                self._progress_prefix(), event.job, data.get("method", ""),
                " (attempt {})".format(data["attempt"])
                if data.get("attempt", 1) > 1 else "")
        if kind == ev.JOB_CACHED:
            self.done_jobs += 1
            return "{}{:<12} {:<10} {} (cached)".format(
                self._progress_prefix(), event.job, data.get("method", ""),
                _VERDICT_LABELS.get(data.get("verdict"), "?"))
        if kind == ev.JOB_FINISHED:
            self.done_jobs += 1
            extra = ""
            if data.get("peak_nodes"):
                extra = " nodes={}".format(data["peak_nodes"])
            if data.get("error"):
                extra += " error={}".format(data["error"])
            return "{}{:<12} {:<10} {} in {}{}".format(
                self._progress_prefix(), event.job, data.get("method", ""),
                _VERDICT_LABELS.get(data.get("verdict"), "?"),
                _fmt_seconds(data.get("seconds")), extra)
        if kind == ev.JOB_RETRY:
            return "{}{:<12} retry (attempt {}): {}".format(
                self._progress_prefix(), event.job, data.get("attempt"),
                data.get("reason"))
        if kind == ev.JOB_FALLBACK:
            return "{}{:<12} falling back to {}".format(
                self._progress_prefix(), event.job, data.get("method"))
        if kind == ev.PORTFOLIO_STARTED:
            return "portfolio: racing {} on {}".format(
                "/".join(data.get("methods", [])), event.job)
        if kind == ev.ENGINE_WON:
            return "portfolio: {} won with {} in {}".format(
                data.get("method"),
                _VERDICT_LABELS.get(data.get("verdict"), "?"),
                _fmt_seconds(data.get("seconds")))
        if kind == ev.ENGINE_CANCELLED:
            return "portfolio: cancelled {}{}".format(
                data.get("method"),
                " (killed)" if data.get("escalated") else "")
        if kind == ev.SERVER_STARTED:
            return "server: listening on {}:{} ({} workers, pid {})".format(
                data.get("host"), data.get("port"), data.get("workers"),
                data.get("pid"))
        if kind == ev.SERVER_STOPPED:
            return "server: stopped after {}".format(
                _fmt_seconds(data.get("uptime_seconds")))
        if kind == ev.JOB_SUBMITTED:
            return "{:<12} submitted as {} ({})".format(
                data.get("name", "?"), event.job, data.get("method", ""))
        if kind == ev.JOB_CANCELLED:
            self.done_jobs += 1
            return "{}{:<12} cancelled".format(
                self._progress_prefix(), data.get("name") or event.job)
        if kind == ev.JOB_REQUEUED:
            return "{:<12} re-queued (attempt {}): {}".format(
                data.get("name") or event.job, data.get("requeues"),
                data.get("reason"))
        if kind == ev.CLIENT_THROTTLED:
            return "server: throttled {} on {}{}".format(
                data.get("client"), data.get("path"),
                " ({})".format(data["reason"]) if data.get("reason") else "")
        if self.verbose and kind == ev.JOB_PROGRESS:
            payload = " ".join(
                "{}={}".format(k, v) for k, v in sorted(data.items())
                if k != "kind")
            return "{}{:<12} · {} {}".format(
                self._progress_prefix(), event.job, data.get("kind"), payload)
        if self.verbose and kind in (ev.ENGINE_STARTED, ev.ENGINE_FINISHED):
            return "portfolio: {} {} verdict={}".format(
                data.get("method"), kind.split("_", 1)[1],
                data.get("verdict"))
        return None
