"""Bounded-parallel batch verification with retries, fallback and caching.

:class:`BatchScheduler` runs many :class:`~repro.service.job.JobSpec`\\ s
concurrently across worker processes:

* at most ``workers`` jobs run at once (``workers=0`` executes inline in
  the calling process — the degenerate sequential mode the evaluation
  harness uses by default);
* solved jobs are skipped via the :class:`~repro.service.cache.ResultCache`
  (structural hashing: re-deriving an identical pair still hits);
* a worker that *crashes* (nonzero exit without a result) is retried up to
  ``retries`` times; a job whose engine finishes *inconclusive* can be
  resubmitted once on a ``fallback_method`` (e.g. ``bmc`` to hunt for a
  counterexample after the prover gives up);
* ``total_time_limit`` bounds the whole batch — running workers are
  cancelled gracefully and unstarted jobs are marked aborted;
  ``job_time_limit`` seeds each engine's own budget and backs it with a
  hard kill at ``job_time_limit + grace``;
* every step is published on the :class:`~repro.service.events.EventBus`.

Results come back in submission order, one :class:`JobResult` per job.
"""

import signal
import threading
import time

from .cache import ResultCache  # noqa: F401  (re-exported convenience)
from .events import (
    BATCH_FINISHED,
    BATCH_STARTED,
    ENGINE_FALLBACK,
    Event,
    EventBus,
    JOB_CACHED,
    JOB_FALLBACK,
    JOB_FINISHED,
    JOB_QUEUED,
    JOB_RETRY,
    JOB_STARTED,
)
from .job import JobResult, JobSpec, aborted_result
from .procs import drain_queue, get_context, start_worker, terminate_gracefully
from .worker import run_job

_POLL_INTERVAL = 0.05

# Engines whose option dicts accept a time budget (job_time_limit seeding).
_TIMED_METHODS = ("van_eijk", "traversal", "bmc", "sat_sweep",
                  "k_induction", "sweep_induct")


class BatchScheduler:
    """Runs job batches under global budgets; see the module docstring."""

    def __init__(self, workers=2, cache=None, bus=None, retries=1,
                 fallback_method=None, fallback_options=None,
                 no_fallback=False, job_time_limit=None,
                 total_time_limit=None, node_limit=None, grace=2.0):
        self.workers = workers
        self.cache = cache
        self.bus = bus or EventBus()
        self.retries = retries
        self.fallback_method = fallback_method
        self.fallback_options = dict(fallback_options or {})
        #: Fail fast: finalize inconclusive verdicts as-is instead of
        #: resubmitting on the fallback engine (overrides fallback_method).
        self.no_fallback = no_fallback
        self.job_time_limit = job_time_limit
        self.total_time_limit = total_time_limit
        self.node_limit = node_limit
        self.grace = grace
        #: Set to the signal name ("SIGINT"/"SIGTERM") when a batch was
        #: stopped by :meth:`run`'s graceful signal handlers.
        self.interrupted = None

    # -- public API ---------------------------------------------------------

    def run(self, jobs):
        """Execute ``jobs``; returns a :class:`JobResult` list in order.

        While the batch runs (and only from the main thread), SIGINT and
        SIGTERM are intercepted for a graceful shutdown: in-flight workers
        are cancelled (SIGTERM → cooperative cancel → SIGKILL after the
        grace period), unstarted jobs are marked aborted, the event stream
        is flushed and the partial results are returned — instead of the
        interpreter dying mid-batch and leaking orphaned workers.
        ``self.interrupted`` records the signal name afterwards.
        """
        self.interrupted = None
        previous_handlers = self._install_signal_handlers()
        try:
            return self._run(jobs)
        finally:
            self._restore_signal_handlers(previous_handlers)

    def _run(self, jobs):
        jobs = [self._budgeted(job) for job in jobs]
        start = time.monotonic()
        self.bus.emit(BATCH_STARTED, jobs=len(jobs), workers=self.workers)
        results = [None] * len(jobs)
        pending = []
        for index, job in enumerate(jobs):
            self.bus.emit(JOB_QUEUED, job=job.name, index=index,
                          **{"method": job.method})
            cached = self._cache_lookup(job)
            if cached is not None:
                results[index] = JobResult(job.name, cached, cached=True,
                                           wall_seconds=0.0,
                                           method=job.method)
                self.bus.emit(JOB_CACHED, job=job.name, index=index,
                              verdict=cached.equivalent, method=job.method)
            else:
                pending.append(_Attempt(index, job))
        if pending:
            if self.workers <= 0:
                self._run_inline(pending, results, start)
            else:
                self._run_pool(pending, results, start)
        self.bus.emit(
            BATCH_FINISHED,
            jobs=len(jobs),
            seconds=time.monotonic() - start,
            cached=sum(1 for r in results if r is not None and r.cached),
            proved=sum(1 for r in results if r.verdict is True),
            refuted=sum(1 for r in results if r.verdict is False),
            undecided=sum(1 for r in results if r.verdict is None),
            interrupted=self.interrupted,
        )
        return results

    # -- graceful signal handling -------------------------------------------

    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM into the graceful-stop flag.

        Only possible from the main thread (the daemon drives its own
        :class:`WorkerPool` and handles signals itself); elsewhere this is
        a no-op returning an empty mapping.
        """
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}
        for signum, name in ((signal.SIGINT, "SIGINT"),
                             (signal.SIGTERM, "SIGTERM")):
            def handler(received, frame, name=name):
                # A second signal falls through to the default behaviour
                # (KeyboardInterrupt / process death) so a wedged batch can
                # still be stopped forcibly.
                if self.interrupted is None:
                    self.interrupted = name
                elif received == signal.SIGINT:
                    raise KeyboardInterrupt
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return previous

    def _restore_signal_handlers(self, previous):
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _stop_reason(self, deadline):
        """The abort reason when the batch should stop, else ``None``."""
        if self.interrupted is not None:
            return "interrupted ({})".format(self.interrupted)
        if deadline is not None and time.monotonic() > deadline:
            return "batch time budget exhausted"
        return None

    # -- shared helpers -----------------------------------------------------

    def _budgeted(self, job):
        """Seed per-job engine budgets from the scheduler's defaults."""
        options = dict(job.options)
        if (self.job_time_limit is not None
                and job.method in _TIMED_METHODS):
            options.setdefault("time_limit", self.job_time_limit)
        if (self.node_limit is not None
                and job.method in ("van_eijk", "traversal")):
            options.setdefault("node_limit", self.node_limit)
        if options == job.options:
            return job
        return JobSpec(job.name, job.spec, job.impl, method=job.method,
                       options=options, match_inputs=job.match_inputs,
                       match_outputs=job.match_outputs, tags=job.tags)

    def _cache_lookup(self, job):
        if self.cache is None:
            return None
        return self.cache.get(job.cache_key())

    def _cache_store(self, job, result):
        if self.cache is not None and result is not None:
            self.cache.put(job.cache_key(), result,
                           meta={"job": job.name, "method": job.method})

    def _deadline(self, start):
        if self.total_time_limit is None:
            return None
        return start + self.total_time_limit

    def _finalize(self, attempt, result, results, pending, wall_seconds):
        """Record a finished engine run; may queue a fallback attempt."""
        job = attempt.job
        if (result.inconclusive and not attempt.is_fallback
                and not self.no_fallback
                and self.fallback_method is not None
                and job.method != self.fallback_method):
            fallback_job = JobSpec(
                job.name, job.spec, job.impl, method=self.fallback_method,
                options=dict(self.fallback_options),
                match_inputs=job.match_inputs,
                match_outputs=job.match_outputs, tags=job.tags,
            )
            self.bus.emit(JOB_FALLBACK, job=job.name, index=attempt.index,
                          method=self.fallback_method,
                          primary_method=job.method)
            self.bus.emit(ENGINE_FALLBACK, job=job.name, index=attempt.index,
                          engine=job.method, fallback=self.fallback_method,
                          reason=result.details.get("aborted",
                                                    "inconclusive"))
            pending.append(_Attempt(attempt.index, self._budgeted(fallback_job),
                                    is_fallback=True,
                                    primary_result=result,
                                    attempts_so_far=attempt.number))
            return
        if attempt.is_fallback and result.inconclusive:
            # Fallback did not decide either: keep the primary engine's
            # richer result (iteration counts, abort reason).
            result = attempt.primary_result
            result.details = dict(result.details,
                                  fallback_inconclusive=self.fallback_method)
        elif attempt.is_fallback:
            result.details = dict(result.details,
                                  fallback_for=job.name)
        self._cache_store(job, result)
        results[attempt.index] = JobResult(
            job.name, result, attempts=attempt.number,
            wall_seconds=wall_seconds, method=result.method)
        self.bus.emit(JOB_FINISHED, job=job.name, index=attempt.index,
                      verdict=result.equivalent, method=result.method,
                      seconds=result.seconds, peak_nodes=result.peak_nodes,
                      attempts=attempt.number)

    # -- inline (workers=0) -------------------------------------------------

    def _run_inline(self, pending, results, start):
        deadline = self._deadline(start)
        while pending:
            attempt = pending.pop(0)
            reason = self._stop_reason(deadline)
            if reason is not None:
                self._abort_remaining([attempt] + pending, results, reason)
                return
            self.bus.emit(JOB_STARTED, job=attempt.job.name,
                          index=attempt.index, method=attempt.job.method,
                          inline=True)
            t0 = time.monotonic()
            try:
                result = run_job(attempt.job, emit=self.bus.publish)
            except Exception as exc:
                result = aborted_result(attempt.job.method,
                                        "engine error: {!r}".format(exc))
            self._finalize(attempt, result, results, pending,
                           time.monotonic() - t0)

    # -- process pool -------------------------------------------------------

    def _run_pool(self, pending, results, start):
        ctx = get_context()
        event_queue = ctx.Queue()
        result_queue = ctx.Queue()
        running = {}  # token -> _Running
        token_counter = 0
        deadline = self._deadline(start)
        try:
            while pending or running:
                reason = self._stop_reason(deadline)
                if reason is not None:
                    self._cancel_running(running, results, reason)
                    self._abort_remaining(pending, results, reason)
                    return
                while pending and len(running) < self.workers:
                    attempt = pending.pop(0)
                    token_counter += 1
                    proc = start_worker(ctx, attempt.job, token_counter,
                                        event_queue, result_queue)
                    running[token_counter] = _Running(attempt, proc)
                    self.bus.emit(JOB_STARTED, job=attempt.job.name,
                                  index=attempt.index,
                                  method=attempt.job.method,
                                  attempt=attempt.number, pid=proc.pid)
                for payload in drain_queue(event_queue):
                    self.bus.publish(Event.from_dict(payload))
                for kind, token, payload in drain_queue(result_queue):
                    run = running.get(token)
                    if run is None:
                        continue
                    run.outcome = (kind, payload)
                self._reap(running, results, pending)
                self._enforce_job_timeout(running)
                if running and not pending:
                    time.sleep(_POLL_INTERVAL)
                elif running:
                    time.sleep(_POLL_INTERVAL / 5)
        finally:
            terminate_gracefully([r.proc for r in running.values()],
                                 grace=self.grace)
            for payload in drain_queue(event_queue):
                self.bus.publish(Event.from_dict(payload))
            event_queue.close()
            result_queue.close()

    def _reap(self, running, results, pending):
        for token in list(running):
            run = running[token]
            if run.outcome is None and run.proc.is_alive():
                continue
            if run.outcome is None:
                # Exited without reporting: give the queue a beat to
                # deliver a result raced with process death.
                run.proc.join()
                if run.grace_polls < 3:
                    run.grace_polls += 1
                    continue
            del running[token]
            attempt = run.attempt
            wall = time.monotonic() - run.started
            if run.outcome is not None:
                run.proc.join()
                kind, payload = run.outcome
                if kind == "result":
                    self._finalize(attempt,
                                   JobResult.from_dict(payload).result,
                                   results, pending, wall)
                else:
                    self._crash(attempt, "engine error:\n" + payload,
                                results, pending)
            else:
                self._crash(
                    attempt,
                    "worker crashed (exit code {})".format(run.proc.exitcode),
                    results, pending,
                    timed_out=run.timed_out,
                )

    def _crash(self, attempt, reason, results, pending, timed_out=False):
        job = attempt.job
        if timed_out:
            result = aborted_result(job.method, "job time budget exhausted")
            self._finalize(attempt, result, results, pending, None)
            return
        if attempt.number <= self.retries:
            self.bus.emit(JOB_RETRY, job=job.name, index=attempt.index,
                          attempt=attempt.number + 1, reason=reason)
            pending.append(attempt.retry())
            return
        result = aborted_result(job.method, reason)
        results[attempt.index] = JobResult(
            job.name, result, attempts=attempt.number, error=reason,
            method=job.method)
        self.bus.emit(JOB_FINISHED, job=job.name, index=attempt.index,
                      verdict=None, method=job.method, error=reason,
                      attempts=attempt.number)

    def _enforce_job_timeout(self, running):
        """Hard-kill guard above the engines' cooperative budgets."""
        if self.job_time_limit is None:
            return
        limit = self.job_time_limit + self.grace
        for run in running.values():
            if (run.outcome is None and not run.timed_out
                    and time.monotonic() - run.started > limit):
                run.timed_out = True
                run.proc.terminate()

    def _cancel_running(self, running, results,
                        reason="batch time budget exhausted"):
        terminate_gracefully([r.proc for r in running.values()],
                             grace=self.grace)
        for run in running.values():
            attempt = run.attempt
            result = aborted_result(attempt.job.method, reason)
            results[attempt.index] = JobResult(
                attempt.job.name, result, attempts=attempt.number,
                method=attempt.job.method)
            self.bus.emit(JOB_FINISHED, job=attempt.job.name,
                          index=attempt.index, verdict=None,
                          method=attempt.job.method,
                          error=reason,
                          attempts=attempt.number)
        running.clear()

    def _abort_remaining(self, pending, results,
                         reason="batch time budget exhausted"):
        for attempt in pending:
            result = aborted_result(attempt.job.method, reason)
            results[attempt.index] = JobResult(
                attempt.job.name, result, attempts=attempt.number - 1,
                method=attempt.job.method)
            self.bus.emit(JOB_FINISHED, job=attempt.job.name,
                          index=attempt.index, verdict=None,
                          method=attempt.job.method,
                          error=reason,
                          attempts=attempt.number - 1)
        del pending[:]


class _Attempt:
    """One (re)submission of a job slot."""

    __slots__ = ("index", "job", "number", "is_fallback", "primary_result")

    def __init__(self, index, job, number=1, is_fallback=False,
                 primary_result=None, attempts_so_far=0):
        self.index = index
        self.job = job
        self.number = number + attempts_so_far
        self.is_fallback = is_fallback
        self.primary_result = primary_result

    def retry(self):
        clone = _Attempt(self.index, self.job, number=self.number + 1,
                         is_fallback=self.is_fallback,
                         primary_result=self.primary_result)
        return clone


class _Running:
    """Bookkeeping for one live worker process."""

    __slots__ = ("attempt", "proc", "started", "outcome", "timed_out",
                 "grace_polls")

    def __init__(self, attempt, proc):
        self.attempt = attempt
        self.proc = proc
        self.started = time.monotonic()
        self.outcome = None
        self.timed_out = False
        self.grace_polls = 0


class PoolOutcome:
    """One finished :class:`WorkerPool` job.

    ``result`` is the worker's :class:`JobResult` (an aborted placeholder
    for crashes and hard kills); ``error`` carries the crash description;
    ``cancelled`` is True when the job ended because :meth:`WorkerPool.cancel`
    was called on it.
    """

    __slots__ = ("token", "job", "result", "error", "cancelled")

    def __init__(self, token, job, result, error=None, cancelled=False):
        self.token = token
        self.job = job
        self.result = result
        self.error = error
        self.cancelled = cancelled


class WorkerPool:
    """Non-blocking submit/poll/cancel surface over the worker processes.

    Where :class:`BatchScheduler` owns a blocking loop over a fixed job
    list, a long-lived host (the :mod:`repro.server` asyncio daemon) needs
    to interleave job execution with other work.  ``WorkerPool`` exposes
    the same worker plumbing incrementally — every method returns
    immediately:

    * :meth:`submit` forks a worker for one job (caller checks
      :meth:`has_capacity` first, queueing policy lives with the caller);
    * :meth:`poll` drains worker events onto the bus, escalates pending
      cancellations past their grace period and returns the
      :class:`PoolOutcome` list of jobs that finished since the last call;
    * :meth:`cancel` requests the SIGTERM → cooperative-cancel → SIGKILL
      path for one running job without blocking on it.

    The pool is *async-safe* in the sense the daemon needs: no method
    blocks, so a single asyncio task can drive it with awaits in between.
    It is not thread-safe — drive it from one thread/task only.
    """

    def __init__(self, workers=2, bus=None, job_time_limit=None, grace=2.0):
        self.workers = max(1, workers)
        self.bus = bus or EventBus()
        self.job_time_limit = job_time_limit
        self.grace = grace
        self._ctx = get_context()
        self._event_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._running = {}  # token -> _PoolRun

    # -- capacity -----------------------------------------------------------

    @property
    def active(self):
        """Number of live worker slots (running or being reaped)."""
        return len(self._running)

    def has_capacity(self):
        return len(self._running) < self.workers

    def running_tokens(self):
        return list(self._running)

    # -- submit / cancel ----------------------------------------------------

    def submit(self, token, job):
        """Fork a worker for ``job``; ``token`` routes its outcome back.

        Raises :class:`RuntimeError` when the pool is full or the token is
        already in flight — callers gate on :meth:`has_capacity`.
        """
        if not self.has_capacity():
            raise RuntimeError("worker pool is full")
        if token in self._running:
            raise RuntimeError("token {!r} already running".format(token))
        job = self._budgeted(job)
        proc = start_worker(self._ctx, job, token,
                            self._event_queue, self._result_queue)
        self._running[token] = _PoolRun(job, proc)
        self.bus.emit(JOB_STARTED, job=job.name, method=job.method,
                      pid=proc.pid)
        return proc.pid

    def _budgeted(self, job):
        if (self.job_time_limit is None
                or job.method not in _TIMED_METHODS
                or "time_limit" in job.options):
            return job
        options = dict(job.options)
        options["time_limit"] = self.job_time_limit
        return JobSpec(job.name, job.spec, job.impl, method=job.method,
                       options=options, match_inputs=job.match_inputs,
                       match_outputs=job.match_outputs, tags=job.tags)

    def cancel(self, token):
        """Begin cancelling a running job; returns True if it was running.

        SIGTERM triggers the worker's cooperative-cancellation path; if it
        has not exited ``grace`` seconds later, :meth:`poll` escalates to
        SIGKILL.  The job's :class:`PoolOutcome` (flagged ``cancelled``)
        is delivered by a later :meth:`poll`.
        """
        run = self._running.get(token)
        if run is None:
            return False
        if not run.cancelled:
            run.cancelled = True
            run.kill_at = time.monotonic() + self.grace
            if run.proc.is_alive():
                run.proc.terminate()
        return True

    # -- poll ---------------------------------------------------------------

    def poll(self):
        """Advance the pool one step; returns finished :class:`PoolOutcome`\\ s.

        Drains worker progress events onto the bus, applies the
        ``job_time_limit`` hard-kill guard, escalates overdue cancellations
        and reaps exited workers.  Never blocks.
        """
        for payload in drain_queue(self._event_queue):
            self.bus.publish(Event.from_dict(payload))
        for kind, token, payload in drain_queue(self._result_queue):
            run = self._running.get(token)
            if run is not None:
                run.outcome = (kind, payload)
        self._enforce_limits()
        return self._reap()

    def _enforce_limits(self):
        now = time.monotonic()
        for run in self._running.values():
            if run.outcome is not None or not run.proc.is_alive():
                continue
            if run.cancelled:
                if run.kill_at is not None and now > run.kill_at:
                    run.kill_at = None
                    run.proc.kill()
            elif (self.job_time_limit is not None and not run.timed_out
                    and now - run.started > self.job_time_limit + self.grace):
                run.timed_out = True
                run.proc.terminate()
                run.kill_at = now + self.grace

    def _reap(self):
        finished = []
        for token in list(self._running):
            run = self._running[token]
            if run.outcome is None and run.proc.is_alive():
                continue
            if run.outcome is None and run.grace_polls < 3:
                # Exited without reporting: give the queue a beat to deliver
                # a result raced with process death.
                run.proc.join()
                run.grace_polls += 1
                continue
            del self._running[token]
            run.proc.join()
            finished.append(self._outcome(token, run))
        return finished

    def _outcome(self, token, run):
        job = run.job
        if run.outcome is not None:
            kind, payload = run.outcome
            if kind == "result":
                result = JobResult.from_dict(payload)
                result.wall_seconds = time.monotonic() - run.started
                if run.cancelled:
                    return PoolOutcome(token, job, result, cancelled=True)
                return PoolOutcome(token, job, result)
            error = "engine error:\n" + payload
        elif run.cancelled:
            error = "cancelled (killed after grace period)"
        elif run.timed_out:
            error = "job time budget exhausted"
        else:
            error = "worker crashed (exit code {})".format(run.proc.exitcode)
        reason = ("cancelled" if run.cancelled
                  else error.splitlines()[0])
        result = JobResult(job.name, aborted_result(job.method, reason),
                           error=error, method=job.method,
                           wall_seconds=time.monotonic() - run.started)
        return PoolOutcome(token, job, result, error=error,
                           cancelled=run.cancelled)

    # -- shutdown -----------------------------------------------------------

    def shutdown(self, grace=None):
        """Stop every running worker (SIGTERM → SIGKILL); returns outcomes.

        Blocking (up to the grace period) — the one pool method that is,
        reserved for daemon teardown.  Pending worker events are flushed to
        the bus before the queues close.
        """
        grace = self.grace if grace is None else grace
        terminate_gracefully([r.proc for r in self._running.values()],
                             grace=grace)
        for payload in drain_queue(self._event_queue):
            self.bus.publish(Event.from_dict(payload))
        outcomes = []
        for token in list(self._running):
            run = self._running.pop(token)
            run.cancelled = True
            for kind, tok, payload in drain_queue(self._result_queue):
                target = self._running.get(tok)
                if target is not None:
                    target.outcome = (kind, payload)
                elif tok == token:
                    run.outcome = (kind, payload)
            outcomes.append(self._outcome(token, run))
        self._event_queue.close()
        self._result_queue.close()
        return outcomes


class _PoolRun:
    """Bookkeeping for one live :class:`WorkerPool` worker."""

    __slots__ = ("job", "proc", "started", "outcome", "cancelled",
                 "timed_out", "kill_at", "grace_polls")

    def __init__(self, job, proc):
        self.job = job
        self.proc = proc
        self.started = time.monotonic()
        self.outcome = None
        self.cancelled = False
        self.timed_out = False
        self.kill_at = None
        self.grace_polls = 0
