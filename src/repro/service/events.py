"""Structured event stream for the verification service.

Every observable step of a batch or portfolio run — job queued, started,
fixpoint iteration, retiming round, cache hit, retry, finish — is published
as an :class:`Event` on an :class:`EventBus`.  Subscribers are plain
callables; the two shipped consumers are :class:`JsonlEventWriter` (the
machine-readable run log) and :class:`repro.service.render.LiveRenderer`
(the human-readable progress view).

Events cross process boundaries as plain dicts (see
:meth:`Event.as_dict` / :meth:`Event.from_dict`), so worker processes can
forward them to the parent over a ``multiprocessing.Queue``.
"""

import json
import time


# Event types emitted by the service layer.  Kept as module constants so
# consumers can filter without string typos.
BATCH_STARTED = "batch_started"
BATCH_FINISHED = "batch_finished"
JOB_QUEUED = "job_queued"
JOB_STARTED = "job_started"
JOB_PROGRESS = "job_progress"
JOB_FINISHED = "job_finished"
JOB_CACHED = "job_cached"
JOB_RETRY = "job_retry"
JOB_FALLBACK = "job_fallback"
# An inconclusive primary verdict handing the job to its fallback engine,
# with the losing engine and the reason spelled out (JOB_FALLBACK only
# carries the methods; this one says *why*).
ENGINE_FALLBACK = "engine_fallback"
# The combined sat_sweep+induction mode handing an inconclusive fixed
# point's partition to the k-induction engine instead of traversal.
INDUCTION_FALLBACK = "induction_fallback"
PORTFOLIO_STARTED = "portfolio_started"
ENGINE_STARTED = "engine_started"
ENGINE_FINISHED = "engine_finished"
ENGINE_WON = "engine_won"
ENGINE_CANCELLED = "engine_cancelled"
ENGINE_CEX_REJECTED = "engine_cex_rejected"
# Engine progress kinds carried inside JOB_PROGRESS events (``data["kind"]``):
# per-iteration ticks of the BDD fixed point, per-round SAT refinement stats
# (classes, sat_queries, cex_patterns, conflicts, propagations, restarts,
# learned) and Fig. 4 retiming-round boundaries.
PROGRESS_ITERATION = "iteration"
PROGRESS_INITIAL_SPLIT = "initial_split"
PROGRESS_REFINEMENT_ROUND = "refinement_round"
PROGRESS_RETIMING_ROUND = "retiming_round"
# Per-depth ticks of the k-induction engine (depth, clause counts, candidate
# counts and solver stats).
PROGRESS_INDUCTION_ROUND = "induction_round"
FUZZ_STARTED = "fuzz_started"
FUZZ_CASE_FINISHED = "fuzz_case_finished"
FUZZ_DISAGREEMENT = "fuzz_disagreement"
FUZZ_SHRUNK = "fuzz_shrunk"
FUZZ_CORPUS_SAVED = "fuzz_corpus_saved"
FUZZ_FINISHED = "fuzz_finished"
# External-oracle cross-checking (repro.interop.oracle): one event per case
# carrying the ABC/yosys verdicts, and one per run when no tool is
# installed (with the reason), so skipping is visible but never fatal.
FUZZ_CROSS_CHECK = "fuzz_cross_check"
FUZZ_CROSS_CHECK_SKIPPED = "fuzz_cross_check_skipped"
# Events emitted by the network daemon (repro.server): daemon lifecycle,
# job intake over HTTP, cancellation, queue-resume after a restart, and
# rate-limit/backpressure rejections.
SERVER_STARTED = "server_started"
SERVER_STOPPED = "server_stopped"
JOB_SUBMITTED = "job_submitted"
JOB_CANCELLED = "job_cancelled"
JOB_REQUEUED = "job_requeued"
CLIENT_THROTTLED = "client_throttled"
# Events emitted by the distributed fleet (repro.fleet): worker membership
# as seen by both sides (a worker emits its own joins/leaves, the
# coordinator emits joins it accepts and deaths its reaper declares) and
# the coordinator handing a job to a worker node.
NODE_JOINED = "node_joined"
NODE_LEFT = "node_left"
NODE_DIED = "node_died"
JOB_DISPATCHED = "job_dispatched"


class Event:
    """One timestamped service event.

    ``type`` is one of the module constants above, ``job`` names the job (or
    ``None`` for batch-level events) and ``data`` is a JSON-serializable
    payload (verdict, iteration counts, peak BDD nodes, wall time, ...).
    """

    __slots__ = ("ts", "type", "job", "data")

    def __init__(self, type, job=None, data=None, ts=None):
        self.ts = time.time() if ts is None else ts
        self.type = type
        self.job = job
        self.data = dict(data or {})

    def as_dict(self):
        return {"ts": self.ts, "type": self.type, "job": self.job,
                "data": self.data}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["type"], job=payload.get("job"),
                   data=payload.get("data"), ts=payload.get("ts"))

    def __repr__(self):
        return "Event({}, job={!r}, {})".format(self.type, self.job, self.data)


class EventBus:
    """Synchronous fan-out of events to subscribers.

    A misbehaving subscriber must not take the batch down, so exceptions
    raised by subscribers are swallowed (recorded in ``subscriber_errors``
    for diagnosis).
    """

    def __init__(self):
        self._subscribers = []
        self.subscriber_errors = 0

    def subscribe(self, callback):
        """Register ``callback(event)``; returns it (for unsubscribe)."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback):
        self._subscribers.remove(callback)

    def publish(self, event):
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception:
                self.subscriber_errors += 1
        return event

    def emit(self, type, job=None, **data):
        """Build and publish an event in one call; returns the event."""
        return self.publish(Event(type, job=job, data=data))


class JsonlEventWriter:
    """Subscriber appending one JSON object per event to a file.

    Usable as a context manager::

        with JsonlEventWriter(path) as writer:
            bus.subscribe(writer)
            ...
    """

    def __init__(self, path):
        self.path = str(path)
        self._fh = open(self.path, "a")
        self.events_written = 0

    def __call__(self, event):
        json.dump(event.as_dict(), self._fh, sort_keys=True)
        self._fh.write("\n")
        self._fh.flush()
        self.events_written += 1

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_event_log(path):
    """Parse a JSONL event log back into a list of :class:`Event`."""
    events = []
    with open(str(path)) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events
