"""Portfolio verification: race complementary engines on one pair.

The four default lanes cover each other's blind spots, the hybrid-engine
insight from the parallel-CEC literature applied to van Eijk's setting:

* ``van_eijk`` — the paper's prover: fast on retimed/resynthesized pairs,
  cannot refute beyond what its random simulation happens to hit;
* ``k_induction`` — temporal induction: proves correspondence-inconclusive
  pairs without traversal and refutes through its base case;
* ``bmc`` — a complete falsifier up to a depth bound: finds shortest
  counterexamples that simulation misses, never proves;
* ``traversal`` — the complete-but-expensive baseline: decides anything
  whose reachable state space fits in the node budget.

All lanes run as separate worker processes; the first *conclusive* verdict
(proved or refuted) wins the race, and the losing lanes are cancelled with
SIGTERM→SIGKILL escalation (see
:func:`repro.service.procs.terminate_gracefully`).  If every lane finishes
inconclusive, the preferred lane's result (first in ``methods``) is
returned so callers still see iteration counts and abort reasons.

A *refuting* lane must earn its win: its counterexample is replayed on the
original circuits (:func:`repro.fuzz.replay.validate_refutation`) before
the race is decided.  A refutation whose trace produces no real output
mismatch is reclassified as a lane **error** — the race continues and the
bogus verdict can never be returned to the caller.  (Proofs have no
artifact to audit; they are taken at face value, as in the hybrid-engine
CEC literature this portfolio mirrors.)
"""

import time

from .events import (
    ENGINE_CANCELLED,
    ENGINE_CEX_REJECTED,
    ENGINE_FINISHED,
    ENGINE_STARTED,
    ENGINE_WON,
    Event,
    EventBus,
    PORTFOLIO_STARTED,
)
from .job import JobResult, JobSpec, aborted_result
from .procs import drain_queue, get_context, start_worker, terminate_gracefully

DEFAULT_PORTFOLIO_METHODS = ("van_eijk", "fraig_sweep", "k_induction",
                             "bmc", "traversal")

_POLL_INTERVAL = 0.05


def run_portfolio(spec, impl, methods=DEFAULT_PORTFOLIO_METHODS,
                  per_method_options=None, time_limit=None,
                  match_inputs="name", match_outputs="order",
                  bus=None, grace=2.0, name=None,
                  validate_refutations=True):
    """Race ``methods`` on one pair; returns the winning ``SecResult``.

    ``per_method_options`` maps method name to that engine's option dict;
    ``time_limit`` (seconds) additionally bounds every lane and the race
    itself.  The returned result carries a ``details["portfolio"]`` record
    naming the winner and each lane's fate.  With ``validate_refutations``
    (the default) a lane's refutation only counts once its counterexample
    replays to a real output mismatch; otherwise the lane errors out.
    """
    if not methods:
        raise ValueError("portfolio needs at least one method")
    # Imported here, not at module level: repro.fuzz pulls in the scheduler
    # at import time, which would cycle during package initialization.
    # Importing before the workers start keeps the race loop import-free.
    from ..fuzz.replay import validate_refutation

    bus = bus or EventBus()
    name = name or "{}~{}".format(spec.name, impl.name)
    per_method_options = per_method_options or {}
    jobs = {}
    for method in methods:
        options = dict(per_method_options.get(method, {}))
        if time_limit is not None:
            options.setdefault("time_limit", time_limit)
        jobs[method] = JobSpec(name, spec, impl, method=method,
                               options=options, match_inputs=match_inputs,
                               match_outputs=match_outputs)
    bus.emit(PORTFOLIO_STARTED, job=name, methods=list(methods),
             time_limit=time_limit)

    ctx = get_context()
    event_queue = ctx.Queue()
    result_queue = ctx.Queue()
    procs = {}
    for method in methods:
        procs[method] = start_worker(ctx, jobs[method], method,
                                     event_queue, result_queue)
        bus.emit(ENGINE_STARTED, job=name, method=method,
                 pid=procs[method].pid)

    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit + grace
    results = {}
    status = {method: "running" for method in methods}
    audited = set()

    def audit_refutations():
        if validate_refutations:
            _reject_invalid_refutations(
                spec, impl, match_inputs, match_outputs, validate_refutation,
                results, status, audited, bus, name)

    winner = None
    try:
        while winner is None:
            _forward_events(event_queue, bus)
            _collect_results(result_queue, results, status, bus, name)
            audit_refutations()
            winner = _find_winner(methods, results)
            if winner is not None:
                break
            for method, proc in procs.items():
                if status[method] == "running" and not proc.is_alive():
                    proc.join()
                    # A finished worker flushes its result before exiting;
                    # drain once more so a verdict racing the process's
                    # death is collected, not misread as a crash.
                    _collect_results(result_queue, results, status, bus,
                                     name)
                    if method not in results:
                        status[method] = "crashed"
                        results[method] = aborted_result(
                            method, "worker crashed (exit code {})".format(
                                proc.exitcode))
                        bus.emit(ENGINE_FINISHED, job=name, method=method,
                                 verdict=None, crashed=True)
            if all(s != "running" for s in status.values()):
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(_POLL_INTERVAL)
    finally:
        fates = terminate_gracefully(list(procs.values()), grace=grace)
        for method, proc in procs.items():
            if status[method] != "running":
                continue
            fate = fates[proc]
            if fate in ("terminated", "killed"):
                status[method] = "cancelled"
                bus.emit(ENGINE_CANCELLED, job=name, method=method,
                         escalated=fate == "killed")
            elif proc.exitcode != 0:
                # The lane died on its own before the race was decided but
                # after the last in-loop liveness check.
                status[method] = "crashed"
                results.setdefault(method, aborted_result(
                    method, "worker crashed (exit code {})".format(
                        proc.exitcode)))
                bus.emit(ENGINE_FINISHED, job=name, method=method,
                         verdict=None, crashed=True)
            else:
                status[method] = "finished"
        # Late results from cancelled lanes (posted between the decision
        # and the SIGTERM) are still drained so the queues shut down clean.
        _forward_events(event_queue, bus)
        _collect_results(result_queue, results, status, bus, name,
                         quiet=True)
        event_queue.close()
        result_queue.close()

    elapsed = time.monotonic() - start
    if winner is not None:
        status[winner] = "won"
        result = results[winner]
        bus.emit(ENGINE_WON, job=name, method=winner,
                 verdict=result.equivalent, seconds=elapsed)
    else:
        # Late results drained after the race (posted between the decision
        # and the SIGTERM) still go through the replay audit before one of
        # them can be returned.
        audit_refutations()
        result = None
        for method in methods:
            candidate = results.get(method)
            if candidate is not None:
                result = candidate
                break
        if result is None:
            reason = ("portfolio time budget exhausted"
                      if deadline is not None and time.monotonic() >= deadline
                      else "all portfolio lanes failed")
            result = aborted_result("portfolio", reason, seconds=elapsed)
    result.details = dict(
        result.details,
        portfolio={"winner": winner, "lanes": dict(status)},
    )
    return result


def _forward_events(event_queue, bus):
    for payload in drain_queue(event_queue):
        bus.publish(Event.from_dict(payload))


def _collect_results(result_queue, results, status, bus, name, quiet=False):
    for message in drain_queue(result_queue):
        kind, method, payload = message
        if kind == "result":
            job_result = JobResult.from_dict(payload)
            results.setdefault(method, job_result.result)
            if status.get(method) == "running":
                status[method] = "finished"
            if not quiet:
                bus.emit(ENGINE_FINISHED, job=name, method=method,
                         verdict=job_result.result.equivalent,
                         seconds=job_result.result.seconds,
                         peak_nodes=job_result.result.peak_nodes)
        else:  # engine raised: record as a failed lane
            results.setdefault(
                method, aborted_result(method, "engine error"))
            if status.get(method) == "running":
                status[method] = "error"
            if not quiet:
                bus.emit(ENGINE_FINISHED, job=name, method=method,
                         verdict=None, error=payload.splitlines()[-1])


def _reject_invalid_refutations(spec, impl, match_inputs, match_outputs,
                                validate_refutation,
                                results, status, audited, bus, name):
    """Replay-audit refuting lanes; demote failures to lane errors.

    Mutates ``results``/``status`` in place: a refutation whose trace does
    not replay to a real output mismatch is replaced by an inconclusive
    aborted result (carrying the replay report), its lane marked
    ``"error"``, and the race goes on as if the lane had crashed.
    """
    for method in list(results):
        result = results[method]
        if (method in audited or result is None
                or result.equivalent is not False):
            continue
        audited.add(method)
        report = validate_refutation(spec, impl, result,
                                     match_inputs=match_inputs,
                                     match_outputs=match_outputs)
        if report.valid:
            result.details = dict(result.details,
                                  replay=report.as_dict())
            continue
        status[method] = "error"
        rejected = aborted_result(
            method, "counterexample failed replay validation")
        rejected.details["replay"] = report.as_dict()
        results[method] = rejected
        bus.emit(ENGINE_CEX_REJECTED, job=name, method=method,
                 reason=report.reason)


def _find_winner(methods, results):
    """First method (in portfolio order) with a conclusive verdict."""
    for method in methods:
        result = results.get(method)
        if result is not None and result.equivalent is not None:
            return method
    return None
