"""Worker-side job execution.

:func:`run_job` dispatches a :class:`~repro.service.job.JobSpec` to the
right engine with progress/cancellation hooks injected;
:func:`worker_entry` is the ``multiprocessing.Process`` target wrapping it
with the cross-process plumbing:

* engine progress callbacks become ``job_progress`` event dicts on the
  parent's event queue;
* ``SIGTERM`` is caught and translated into *cooperative* cancellation —
  the engine notices at its next iteration boundary and returns an
  inconclusive ("cancelled") result, so the worker exits cleanly with its
  BDD/SAT state unwound instead of dying mid-operation.  Parents escalate
  to ``SIGKILL`` only after a grace period (see portfolio/scheduler).

Additional engines can be registered with :func:`register_method`; under
the default ``fork`` start method a registration made in the parent (e.g.
by a test) is visible to workers.
"""

import os
import signal
import threading
import time
import traceback

from ..netlist.product import build_product
from .events import JOB_PROGRESS, Event
from .job import JobResult, aborted_result

#: name -> runner(job, progress, cancel_check) for engines beyond the
#: built-ins (used by tests and downstream extensions).
_EXTRA_METHODS = {}


def register_method(name, runner):
    """Register ``runner(job, progress, cancel_check) -> SecResult``."""
    _EXTRA_METHODS[name] = runner


def unregister_method(name):
    _EXTRA_METHODS.pop(name, None)


def run_job(job, emit=None, cancel_check=None):
    """Execute one job in the current process; returns a ``SecResult``.

    ``emit(event)`` receives :class:`Event` objects for engine progress;
    ``cancel_check()`` is polled by the engines at iteration boundaries.
    """

    def progress(kind, **data):
        if emit is not None:
            data = dict(data)
            data["kind"] = kind
            emit(Event(JOB_PROGRESS, job=job.name, data=data))

    if cancel_check is not None and cancel_check():
        return aborted_result(job.method, "cancelled")
    if job.options.get("preprocess"):
        # Engine-agnostic FRAIG preprocessing: rewrite the job onto the
        # reduced pair (scheduler/daemon submission sites that want the
        # reduction inside the cache key call preprocess_jobspec before
        # the key is first computed; this path covers everything else —
        # fuzz lanes, portfolio lanes, direct run_job callers).
        from ..sweep import attach_preprocess_details, preprocess_jobspec

        job, info = preprocess_jobspec(job)
        result = run_job(job, emit=emit, cancel_check=cancel_check)
        return attach_preprocess_details(result, info)
    runner = _EXTRA_METHODS.get(job.method)
    if runner is not None:
        return runner(job, progress, cancel_check)
    options = dict(job.options)
    if job.method == "van_eijk":
        from ..core.engine import VanEijkVerifier

        verifier = VanEijkVerifier(progress=progress,
                                   cancel_check=cancel_check, **options)
        return verifier.verify(job.spec, job.impl,
                               match_inputs=job.match_inputs,
                               match_outputs=job.match_outputs)
    if job.method == "sat_sweep":
        from ..core.satbackend import check_equivalence_sat_sweep

        return check_equivalence_sat_sweep(
            job.spec, job.impl, match_inputs=job.match_inputs,
            match_outputs=job.match_outputs, progress=progress,
            cancel_check=cancel_check, **options)
    if job.method == "fraig_sweep":
        from ..sweep import check_equivalence_fraig_sweep

        return check_equivalence_fraig_sweep(
            job.spec, job.impl, match_inputs=job.match_inputs,
            match_outputs=job.match_outputs, progress=progress,
            cancel_check=cancel_check, **options)
    if job.method == "k_induction":
        from ..induction import check_equivalence_k_induction

        return check_equivalence_k_induction(
            job.spec, job.impl, match_inputs=job.match_inputs,
            match_outputs=job.match_outputs, progress=progress,
            cancel_check=cancel_check, **options)
    if job.method == "sweep_induct":
        from ..induction import check_equivalence_sweep_induction

        return check_equivalence_sweep_induction(
            job.spec, job.impl, match_inputs=job.match_inputs,
            match_outputs=job.match_outputs, progress=progress,
            cancel_check=cancel_check, **options)
    product = build_product(job.spec, job.impl,
                            match_inputs=job.match_inputs,
                            match_outputs=job.match_outputs)
    if job.method == "bmc":
        from ..core.bmc import bmc_refute

        return bmc_refute(product, progress=progress,
                          cancel_check=cancel_check, **options)
    if job.method == "traversal":
        from ..reach.traversal import check_equivalence_traversal

        return check_equivalence_traversal(
            product, progress=progress, cancel_check=cancel_check, **options)
    if job.method == "explicit":
        from ..reach.explicit import explicit_check_equivalence

        return explicit_check_equivalence(product, **options)
    raise ValueError("unknown job method {!r}".format(job.method))


def worker_entry(job, token, event_queue, result_queue):
    """Process target: run ``job`` and report on ``result_queue``.

    ``token`` is an opaque identifier the parent uses to route the result
    (job index for the scheduler, method name for the portfolio).  The
    result message is ``("result", token, JobResult-dict)`` on success or
    ``("error", token, traceback-string)`` on an engine exception; a crash
    (hard kill, segfault, ``os._exit``) sends nothing — parents detect it
    from the exit code.
    """
    cancelled = threading.Event()

    # An asyncio parent (the verification daemon) has a signal wakeup fd
    # installed, and fork shares it with us.  If we kept it, our own
    # SIGTERM delivery would write the signum byte into the parent's
    # event loop self-pipe — the parent would dispatch its *own* SIGTERM
    # handler and shut down the whole daemon whenever one job is
    # cancelled.  Detach before installing any handler of our own.
    signal.set_wakeup_fd(-1)

    def on_sigterm(signum, frame):
        cancelled.set()

    signal.signal(signal.SIGTERM, on_sigterm)


    # Orphan guard: if the parent dies without tearing us down (SIGKILL'd
    # scheduler/daemon — its atexit cleanup never runs), we are reparented
    # and ``getppid`` changes.  Treat that as a cancellation so the engine
    # unwinds at its next iteration boundary instead of running forever.
    parent_pid = os.getppid()

    def cancel_check():
        return cancelled.is_set() or os.getppid() != parent_pid

    def emit(event):
        try:
            event_queue.put(event.as_dict())
        except Exception:
            pass  # never let telemetry take the engine down

    started = time.monotonic()
    try:
        result = run_job(job, emit=emit, cancel_check=cancel_check)
        payload = JobResult(
            job.name, result,
            wall_seconds=time.monotonic() - started,
            method=job.method,
        ).as_dict()
        result_queue.put(("result", token, payload))
    except Exception:
        result_queue.put(("error", token, traceback.format_exc()))
    finally:
        result_queue.close()
        result_queue.join_thread()
        event_queue.close()
        event_queue.join_thread()
