"""Verification job descriptions and outcomes.

A :class:`JobSpec` is the unit of work the service schedules: one
(spec, impl) circuit pair, one engine, one option set.  Its
:meth:`JobSpec.cache_key` is a structural hash — renaming nets,
re-deriving an identical pair, or submitting the same circuit in a
different file format (``.bench`` vs ``.aig``) all hit the same cache
entry — computed from :func:`repro.interop.fingerprint.aig_fingerprint`
(a canonical binary-AIGER digest) of both circuits plus the canonicalized
method/options tuple.

A :class:`JobResult` wraps the engine's :class:`~repro.reach.SecResult`
with service-level provenance: cache hit, retry count, crash errors,
scheduler wall time.
"""

import hashlib
import json

from ..interop.fingerprint import aig_fingerprint
from ..reach.result import SecResult

#: Bump when the cache entry layout or engine semantics change
#: incompatibly; old entries then miss instead of returning stale verdicts.
#: v2: cache key switched from the gate-level structural_fingerprint to the
#: format-independent AIG fingerprint.
CACHE_FORMAT_VERSION = 2


class JobSpec:
    """One schedulable verification problem.

    ``options`` must be JSON-serializable (they are part of the cache key
    and of the event stream); runtime-only hooks (progress callbacks,
    cancellation) are injected by the worker, never stored here.
    """

    def __init__(self, name, spec, impl, method="van_eijk", options=None,
                 match_inputs="name", match_outputs="order", tags=None):
        self.name = name
        self.spec = spec
        self.impl = impl
        self.method = method
        self.options = dict(options or {})
        self.match_inputs = match_inputs
        self.match_outputs = match_outputs
        self.tags = dict(tags or {})
        self._cache_key = None
        # Fail fast on un-serializable options: a TypeError here is a bug at
        # the submission site, not deep inside a worker process.
        json.dumps(self.options, sort_keys=True)

    def cache_key(self):
        """Structural hash identifying this problem; stable across runs."""
        if self._cache_key is None:
            payload = json.dumps(
                {
                    "version": CACHE_FORMAT_VERSION,
                    "spec": aig_fingerprint(self.spec),
                    "impl": aig_fingerprint(self.impl),
                    "method": self.method,
                    "options": self.options,
                    "match_inputs": self.match_inputs,
                    "match_outputs": self.match_outputs,
                },
                sort_keys=True,
            )
            self._cache_key = hashlib.sha256(
                payload.encode("utf-8")).hexdigest()
        return self._cache_key

    def describe(self):
        """JSON-serializable summary for the event stream."""
        return {
            "name": self.name,
            "method": self.method,
            "options": self.options,
            "spec": self.spec.name,
            "impl": self.impl.name,
            "tags": self.tags,
        }

    def __repr__(self):
        return "JobSpec({!r}, method={}, spec={!r}, impl={!r})".format(
            self.name, self.method, self.spec.name, self.impl.name
        )


class JobResult:
    """Outcome of one scheduled job.

    ``result`` is the engine's :class:`SecResult` (or an inconclusive
    placeholder when the job crashed repeatedly / was aborted by the batch
    budget); ``error`` carries the crash description in that case.
    """

    def __init__(self, name, result, cached=False, attempts=1,
                 wall_seconds=None, error=None, method=None):
        self.name = name
        self.result = result
        self.cached = cached
        self.attempts = attempts
        self.wall_seconds = wall_seconds
        self.error = error
        self.method = method or (result.method if result is not None else None)

    @property
    def verdict(self):
        return None if self.result is None else self.result.equivalent

    def as_dict(self):
        return {
            "name": self.name,
            "method": self.method,
            "cached": self.cached,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "result": None if self.result is None else self.result.as_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        result = data.get("result")
        return cls(
            name=data.get("name"),
            result=None if result is None else SecResult.from_dict(result),
            cached=data.get("cached", False),
            attempts=data.get("attempts", 1),
            wall_seconds=data.get("wall_seconds"),
            error=data.get("error"),
            method=data.get("method"),
        )

    def __repr__(self):
        return "JobResult({!r}, verdict={}, cached={}, attempts={})".format(
            self.name, self.verdict, self.cached, self.attempts
        )


def aborted_result(method, reason, seconds=None):
    """An inconclusive :class:`SecResult` standing in for a run that never
    produced one (crash, hard kill, batch budget)."""
    return SecResult(
        equivalent=None,
        method=method,
        seconds=seconds,
        details={"aborted": reason},
    )
