"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without also swallowing programming errors.
"""


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class BddError(ReproError):
    """Raised on invalid BDD manager usage (unknown variable, foreign edge)."""


class NodeLimitExceeded(BddError):
    """Raised when a BDD operation would exceed the manager's node budget."""


class SatError(ReproError):
    """Raised on invalid SAT solver usage (bad literal, empty clause added)."""


class NetlistError(ReproError):
    """Raised on malformed circuits (cycles, undriven nets, bad fanin)."""


class ParseError(NetlistError):
    """Raised when a ``.bench`` or BLIF file cannot be parsed."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line {}: {}".format(line, message)
        super().__init__(message)
        self.line = line


class TransformError(ReproError):
    """Raised when a circuit transformation cannot be applied."""


class VerificationError(ReproError):
    """Raised on invalid verification setup (mismatched interfaces)."""


class ResourceBudgetExceeded(ReproError):
    """Raised when a verification run exceeds its time or node budget."""

    def __init__(self, message, elapsed=None, nodes=None):
        super().__init__(message)
        self.elapsed = elapsed
        self.nodes = nodes
