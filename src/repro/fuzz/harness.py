"""The differential fuzzing loop.

Each iteration manufactures a seeded :class:`~repro.fuzz.generate.FuzzCase`
— a circuit pair whose equivalence is known from its construction recipe —
and runs the full engine battery on it through the existing
:class:`~repro.service.scheduler.BatchScheduler` (so a long fuzz run doubles
as a soak test of the scheduler/worker/cache stack).  The verdicts are then
cross-checked three ways:

1. **against the oracle label** — an engine may be inconclusive, but a
   *proof* on a known-inequivalent pair or a *refutation* on a
   known-equivalent pair is a finding;
2. **against each other** — two conclusive engines that disagree are a
   finding even if the oracle label itself were wrong;
3. **against reality** — every refutation's :class:`~repro.reach.CexTrace`
   is replayed concretely on both circuits
   (:func:`~repro.fuzz.replay.validate_refutation`); a trace that does not
   produce a real output mismatch is a finding regardless of the verdict
   being "right".

Findings are delta-debugged down to a minimal recipe
(:func:`~repro.fuzz.shrink.shrink_recipe`) and persisted to the regression
corpus (:mod:`repro.fuzz.corpus`), which the tier-1 suite re-runs.

``result_hook`` is the test seam: it sees every (case, lane-label, result)
triple before analysis and may return a doctored result, letting the test
suite prove the detect→shrink→persist pipeline end to end without needing a
live engine bug.
"""

import time

from ..service.events import (
    EventBus,
    FUZZ_CASE_FINISHED,
    FUZZ_CORPUS_SAVED,
    FUZZ_CROSS_CHECK,
    FUZZ_CROSS_CHECK_SKIPPED,
    FUZZ_DISAGREEMENT,
    FUZZ_FINISHED,
    FUZZ_SHRUNK,
    FUZZ_STARTED,
)
from ..service.job import JobSpec
from ..service.scheduler import BatchScheduler
from ..errors import TransformError
from ..netlist.simulate import _numpy
from .corpus import CorpusEntry, save_entry
from .generate import FuzzCase, make_recipe
from .replay import validate_refutation
from .shrink import recipe_size, shrink_recipe

#: The default battery as ``(label, method, options)`` lanes: the paper's
#: prover (both refinement backends — the BDD fixed point and the
#: incremental SAT sweep must agree pair for pair, and the parallel
#: refinement engine must agree with both), the complete falsifier, and the
#: complete-but-expensive baseline.  Labels are unique so one method can run
#: under several option sets; budgets are sized for the small circuits the
#: fuzzer generates.
DEFAULT_FUZZ_ENGINES = (
    ("van_eijk", "van_eijk", {}),
    ("sat_sweep", "sat_sweep", {"sim_frames": 16, "sim_width": 16}),
    ("sat_sweep_par2", "sat_sweep",
     {"sim_frames": 16, "sim_width": 16, "refine_workers": 2}),
    # The same engine behind the FRAIG preprocessor: every fuzz case
    # cross-checks the reducer's verdict-preservation against the plain
    # sat_sweep lane above.
    ("sat_sweep_fraig", "sat_sweep",
     {"sim_frames": 16, "sim_width": 16, "preprocess": "fraig"}),
    ("bmc", "bmc", {"max_depth": 12}),
    ("bmc_fraig", "bmc", {"max_depth": 12, "fraig_frames": True}),
    ("k_induction", "k_induction",
     {"max_depth": 10, "sim_frames": 16, "sim_width": 16}),
    ("traversal", "traversal", {"max_iterations": 256}),
)

# The matrix sim backend rides the battery only where numpy imports: the
# lane pins the numpy replay kernel and the work-stealing pool against the
# serial/compiled lanes on every fuzz case.  Appended (not inserted) so
# label-indexed consumers see a strict superset.
if _numpy() is not None:
    DEFAULT_FUZZ_ENGINES = DEFAULT_FUZZ_ENGINES + (
        ("sat_sweep_matrix", "sat_sweep",
         {"sim_frames": 16, "sim_width": 16, "refine_workers": 2,
          "sim_backend": "matrix"}),
    )

#: Multiplier decorrelating fuzzer seeds: run seed k, iteration i fuzzes
#: case seed k * _SEED_STRIDE + i, so different --seed runs explore
#: disjoint case ranges while staying reproducible.
_SEED_STRIDE = 1000003

FALSE_PROOF = "false_proof"
FALSE_REFUTATION = "false_refutation"
INVALID_CEX = "invalid_cex"
CROSS_ENGINE = "cross_engine"
# An installed external tool (ABC/yosys) conclusively decided the opposite
# of our battery's verdict — demoted to a finding, not trusted blindly.
EXTERNAL_DISAGREEMENT = "external_disagreement"


class FuzzFinding:
    """One detected disagreement on one case."""

    def __init__(self, kind, case_id, methods, detail=None):
        self.kind = kind
        self.case_id = case_id
        self.methods = list(methods)
        self.detail = dict(detail or {})

    def as_dict(self):
        return {
            "kind": self.kind,
            "case": self.case_id,
            "methods": self.methods,
            "detail": self.detail,
        }

    def __repr__(self):
        return "FuzzFinding({}, case={!r}, methods={})".format(
            self.kind, self.case_id, self.methods)


class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    def __init__(self):
        self.cases_run = 0
        self.cases_skipped = 0
        self.findings = []
        self.corpus_paths = []
        self.refutations_validated = 0
        self.verdicts = {}  # method -> {"proved"/"refuted"/"undecided": n}
        self.seconds = 0.0
        self.stopped = "iterations"

    @property
    def clean(self):
        return not self.findings

    def record_verdict(self, method, verdict):
        tally = self.verdicts.setdefault(
            method, {"proved": 0, "refuted": 0, "undecided": 0})
        key = {True: "proved", False: "refuted", None: "undecided"}[verdict]
        tally[key] += 1

    def as_dict(self):
        return {
            "cases_run": self.cases_run,
            "cases_skipped": self.cases_skipped,
            "findings": [f.as_dict() for f in self.findings],
            "corpus_written": list(self.corpus_paths),
            "refutations_validated": self.refutations_validated,
            "verdicts": {m: dict(t) for m, t in self.verdicts.items()},
            "seconds": self.seconds,
            "stopped": self.stopped,
            "clean": self.clean,
        }


def _normalize_engines(engines):
    """Normalize to ``(label, method, options)`` lanes.

    Accepts a dict (``{method: options}``), a list of method names (each
    selecting *every* default lane of that method — ``"sat_sweep"`` brings
    the serial and the parallel lane), ``(method, options)`` pairs (label =
    method, the historical form) or full ``(label, method, options)``
    triples.  Duplicate labels are rejected: the results dict is keyed by
    label.
    """
    if engines is None:
        normalized = [(lbl, m, dict(o)) for lbl, m, o in DEFAULT_FUZZ_ENGINES]
    elif isinstance(engines, dict):
        normalized = [(m, m, dict(o or {})) for m, o in engines.items()]
    else:
        normalized = []
        for item in engines:
            if isinstance(item, str):
                matched = [(lbl, m, dict(o))
                           for lbl, m, o in DEFAULT_FUZZ_ENGINES if m == item]
                normalized.extend(matched or [(item, item, {})])
            elif len(item) == 2:
                method, options = item
                normalized.append((method, method, dict(options or {})))
            else:
                label, method, options = item
                normalized.append((label, method, dict(options or {})))
    labels = [label for label, _, _ in normalized]
    if len(set(labels)) != len(labels):
        raise ValueError("duplicate engine lane labels: {}".format(labels))
    return normalized


class DifferentialFuzzer:
    """Drives fuzz iterations; see the module docstring.

    ``workers`` selects the scheduler mode (0 = inline, the deterministic
    default; >0 forks the worker pool and soaks the full service stack);
    ``cache`` optionally plugs a :class:`~repro.service.ResultCache` into
    the battery; ``corpus_dir=None`` disables persistence (findings are
    still reported).
    """

    def __init__(self, seed=0, engines=None, workers=0, corpus_dir=None,
                 bus=None, cache=None, job_time_limit=None, retries=1,
                 shrink_evaluations=48, result_hook=None,
                 min_regs=4, max_regs=9, fault_probability=0.45,
                 datapath_probability=0.2,
                 scheduler=None, cross_check=False, cross_check_tools=None,
                 cross_check_timeout=None, oracle=None):
        self.seed = seed
        self.engines = _normalize_engines(engines)
        self.workers = workers
        self.corpus_dir = corpus_dir
        self.bus = bus or EventBus()
        self.cache = cache
        self.job_time_limit = job_time_limit
        self.retries = retries
        self.shrink_evaluations = shrink_evaluations
        self.result_hook = result_hook
        self.min_regs = min_regs
        self.max_regs = max_regs
        self.fault_probability = fault_probability
        self.datapath_probability = datapath_probability
        # ``scheduler`` overrides the battery's executor with anything
        # exposing BatchScheduler's ``run(jobs)`` — e.g. a
        # :class:`repro.client.RemoteScheduler` targeting a daemon
        # (``repro-sec fuzz --server URL``).  Shrinking stays local either
        # way: delta-debugging probes are latency-bound, not compute-bound.
        self._scheduler = scheduler or BatchScheduler(
            workers=workers, cache=cache, bus=self.bus, retries=retries,
            job_time_limit=job_time_limit)
        # Shrink re-runs are always inline and quiet: forking a pool per
        # delta-debugging probe would dominate the shrink budget.
        self._inline_scheduler = BatchScheduler(
            workers=0, cache=cache, bus=EventBus(), retries=0,
            job_time_limit=job_time_limit)
        # Opt-in external cross-check (ABC/yosys).  ``oracle`` is the test
        # seam: inject anything exposing ExternalOracle's interface.
        self.cross_check = bool(cross_check) or oracle is not None
        self._oracle = oracle
        if self.cross_check and self._oracle is None:
            from ..interop.oracle import DEFAULT_TIMEOUT, ExternalOracle
            self._oracle = ExternalOracle(
                tools=cross_check_tools,
                timeout=cross_check_timeout or DEFAULT_TIMEOUT)

    # -- public API ---------------------------------------------------------

    def run(self, iterations=100, time_budget=None):
        """Fuzz for ``iterations`` cases or until ``time_budget`` seconds."""
        start = time.monotonic()
        deadline = None if time_budget is None else start + time_budget
        report = FuzzReport()
        self.bus.emit(FUZZ_STARTED, seed=self.seed, iterations=iterations,
                      engines=[label for label, _, _ in self.engines],
                      workers=self.workers, time_budget=time_budget,
                      cross_check=self.cross_check)
        if self.cross_check:
            reason = self._oracle.skip_reason()
            if reason:
                # Graceful skip, never a failure: the run proceeds with the
                # internal oracles only, and the log says why.
                self.bus.emit(FUZZ_CROSS_CHECK_SKIPPED, reason=reason)
        for iteration in range(iterations):
            if deadline is not None and time.monotonic() > deadline:
                report.stopped = "time_budget"
                break
            case_seed = self.seed * _SEED_STRIDE + iteration
            case = FuzzCase(
                "fz-{:08d}".format(case_seed),
                make_recipe(case_seed, min_regs=self.min_regs,
                            max_regs=self.max_regs,
                            fault_probability=self.fault_probability,
                            datapath_probability=self.datapath_probability))
            self._fuzz_one(case, iteration, report)
        report.seconds = time.monotonic() - start
        self.bus.emit(FUZZ_FINISHED, cases=report.cases_run,
                      skipped=report.cases_skipped,
                      findings=len(report.findings),
                      corpus_written=len(report.corpus_paths),
                      seconds=report.seconds, stopped=report.stopped)
        return report

    def check_recipe(self, recipe, case_id="check", scheduler=None,
                     report=None, cross_check=False):
        """Run the battery on one recipe; returns the findings list.

        Used by the main loop, by the shrinker's predicate, and by
        :func:`repro.fuzz.corpus.verify_entry`.  ``cross_check=True``
        additionally consults the external oracle (when one is configured
        and available), so the shrinker can reproduce
        ``external_disagreement`` findings.  Raises
        :class:`~repro.errors.TransformError` when the recipe's pair
        cannot be built (e.g. a fault step with no distinguishable
        mutation on a shrunk base).
        """
        case = FuzzCase(case_id, recipe)
        spec, impl = case.pair()
        results = self._run_engines(case, spec, impl,
                                    scheduler or self._inline_scheduler)
        findings = self._analyze(case, spec, impl, results, report)
        if cross_check and self._can_cross_check():
            findings.extend(
                self._cross_check_case(case, spec, impl, results, emit=False))
        return findings

    # -- one iteration ------------------------------------------------------

    def _fuzz_one(self, case, iteration, report):
        t0 = time.monotonic()
        try:
            spec, impl = case.pair()
        except TransformError:
            # No simulation-distinguishable fault on this base: the recipe
            # is unusable, not a finding.
            report.cases_skipped += 1
            return
        results = self._run_engines(case, spec, impl, self._scheduler)
        findings = self._analyze(case, spec, impl, results, report)
        if self._can_cross_check():
            findings.extend(self._cross_check_case(case, spec, impl, results))
        report.cases_run += 1
        for method, result in results.items():
            report.record_verdict(method, result.equivalent)
        self.bus.emit(
            FUZZ_CASE_FINISHED, job=case.case_id, iteration=iteration,
            expected=case.expected,
            verdicts={m: r.equivalent for m, r in results.items()},
            findings=len(findings), seconds=time.monotonic() - t0)
        for finding in findings:
            self.bus.emit(FUZZ_DISAGREEMENT, job=case.case_id,
                          kind=finding.kind, methods=finding.methods,
                          detail=finding.detail)
        if findings:
            report.findings.extend(findings)
            self._shrink_and_persist(case, findings, iteration, report)

    def _run_engines(self, case, spec, impl, scheduler):
        jobs = [
            JobSpec("{}:{}".format(case.case_id, label), spec, impl,
                    method=method, options=options,
                    match_inputs="name", match_outputs="order",
                    tags={"fuzz": True, "expected": case.expected,
                          "lane": label})
            for label, method, options in self.engines
        ]
        job_results = scheduler.run(jobs)
        results = {}
        for (label, _, _), job_result in zip(self.engines, job_results):
            result = job_result.result
            if self.result_hook is not None:
                result = self.result_hook(case, label, result) or result
            results[label] = result
        return results

    # -- cross-checking -----------------------------------------------------

    def _analyze(self, case, spec, impl, results, report=None):
        findings = []
        conclusive = {}
        for method, result in results.items():
            if result is None or result.equivalent is None:
                continue
            conclusive[method] = result.equivalent
            if result.equivalent is False:
                replay = validate_refutation(
                    spec, impl, result,
                    match_inputs="name", match_outputs="order")
                if report is not None:
                    report.refutations_validated += 1
                if not replay.valid:
                    findings.append(FuzzFinding(
                        INVALID_CEX, case.case_id, [method],
                        {"replay": replay.as_dict(),
                         "expected": case.expected}))
                    continue
                if case.expected_equivalent:
                    findings.append(FuzzFinding(
                        FALSE_REFUTATION, case.case_id, [method],
                        {"replay": replay.as_dict(),
                         "expected": case.expected}))
            elif not case.expected_equivalent:
                findings.append(FuzzFinding(
                    FALSE_PROOF, case.case_id, [method],
                    {"expected": case.expected}))
        verdicts = set(conclusive.values())
        if True in verdicts and False in verdicts:
            findings.append(FuzzFinding(
                CROSS_ENGINE, case.case_id, sorted(conclusive),
                {"verdicts": {m: v for m, v in conclusive.items()},
                 "expected": case.expected}))
        return findings

    # -- external oracle ----------------------------------------------------

    def _can_cross_check(self):
        return (self.cross_check and self._oracle is not None
                and not self._oracle.skip_reason())

    def _cross_check_case(self, case, spec, impl, results, emit=True):
        """Run ABC/yosys on the pair and demote disagreements to findings.

        "Our" verdict is the battery's conclusive consensus when one
        exists, else the construction-known label; an external tool only
        *disagrees* when it conclusively decides the opposite —
        inconclusive answers (timeouts, induction giving up) are logged
        but are not findings.
        """
        conclusive = {
            label: result.equivalent for label, result in results.items()
            if result is not None and result.equivalent is not None
        }
        verdict_set = set(conclusive.values())
        if len(verdict_set) == 1:
            ours = verdict_set.pop()
        else:
            ours = case.expected_equivalent
        oracle_verdicts = self._oracle.check(spec, impl)
        if emit:
            self.bus.emit(
                FUZZ_CROSS_CHECK, job=case.case_id, ours=ours,
                expected=case.expected,
                verdicts=[v.to_dict() for v in oracle_verdicts])
        disagreeing = [v for v in oracle_verdicts
                       if v.agrees_with(ours) is False]
        if not disagreeing:
            return []
        return [FuzzFinding(
            EXTERNAL_DISAGREEMENT, case.case_id,
            [v.tool for v in disagreeing],
            {"ours": ours, "expected": case.expected,
             "external": [v.to_dict() for v in disagreeing]})]

    # -- shrinking & persistence --------------------------------------------

    def _shrink_and_persist(self, case, findings, iteration, report):
        kinds = {finding.kind for finding in findings}
        # External findings must be reproduced by the shrink predicate too,
        # or delta debugging would "shrink" them to nothing.
        recheck_external = EXTERNAL_DISAGREEMENT in kinds

        def still_fails(candidate):
            try:
                candidate_findings = self.check_recipe(
                    candidate, case_id=case.case_id + ":shrink",
                    cross_check=recheck_external)
            except Exception:
                return False
            return any(f.kind in kinds for f in candidate_findings)

        shrunk, evaluations = shrink_recipe(
            case.recipe, still_fails,
            max_evaluations=self.shrink_evaluations)
        self.bus.emit(FUZZ_SHRUNK, job=case.case_id,
                      evaluations=evaluations,
                      size_from=recipe_size(case.recipe),
                      size_to=recipe_size(shrunk))
        if self.corpus_dir is None:
            return
        entry = CorpusEntry(
            shrunk,
            finding={
                "kind": findings[0].kind,
                "findings": [f.as_dict() for f in findings],
            },
            meta={
                "fuzzer_seed": self.seed,
                "iteration": iteration,
                "case": case.case_id,
                "engines": [label for label, _, _ in self.engines],
            })
        path, written = save_entry(self.corpus_dir, entry)
        report.corpus_paths.append(path)
        self.bus.emit(FUZZ_CORPUS_SAVED, job=case.case_id, path=path,
                      entry=entry.id, new=written)


def run_fuzz(iterations=100, seed=0, **options):
    """One-call convenience wrapper: build a fuzzer and run it."""
    time_budget = options.pop("time_budget", None)
    fuzzer = DifferentialFuzzer(seed=seed, **options)
    return fuzzer.run(iterations=iterations, time_budget=time_budget)
