"""Regression corpus: persisted fuzz findings that must stay fixed.

Every disagreement the fuzzer cannot explain is shrunk and written here as
one JSON file.  An entry stores the *recipe* (seed + transform chain), the
expected verdict derived from it, and a record of the original finding —
everything needed to rebuild the exact circuit pair and re-run the engine
battery with no fuzzer state.  ``tests/corpus/test_corpus.py`` discovers
``tests/corpus/*.json`` and re-checks each entry as a tier-1 regression
test, so a fixed bug stays fixed.

Entry ids are a hash of the canonical recipe JSON: re-finding the same
shrunk recipe dedupes instead of littering the corpus.
"""

import glob
import hashlib
import json
import os
import tempfile

from .generate import expected_label, recipe_source_format

CORPUS_FORMAT_VERSION = 1


def entry_id(recipe):
    """Stable content-derived id for a recipe."""
    blob = json.dumps(recipe, sort_keys=True).encode("utf-8")
    return "fz-" + hashlib.sha256(blob).hexdigest()[:12]


class CorpusEntry:
    """One persisted regression case."""

    def __init__(self, recipe, finding=None, meta=None, entry_id_=None):
        self.recipe = recipe
        self.finding = dict(finding or {})
        self.meta = dict(meta or {})
        self.id = entry_id_ or entry_id(recipe)

    @property
    def expected(self):
        return expected_label(self.recipe)

    @property
    def source_format(self):
        """``"aiger"`` for AIGER-born pairs, else ``"generated"``."""
        return recipe_source_format(self.recipe)

    def as_dict(self):
        return {
            "format": CORPUS_FORMAT_VERSION,
            "id": self.id,
            "expected": self.expected,
            "source_format": self.source_format,
            "recipe": self.recipe,
            "finding": self.finding,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data):
        if data.get("format") != CORPUS_FORMAT_VERSION:
            raise ValueError(
                "unsupported corpus format {!r}".format(data.get("format")))
        return cls(data["recipe"], finding=data.get("finding"),
                   meta=data.get("meta"), entry_id_=data.get("id"))

    def __repr__(self):
        return "CorpusEntry({!r}, expected={}, finding={})".format(
            self.id, self.expected, self.finding.get("kind"))


def save_entry(corpus_dir, entry):
    """Write ``entry`` under ``corpus_dir``; returns ``(path, written)``.

    Idempotent: an entry whose id already exists is left untouched.  The
    write goes through a temp file + ``os.replace`` (same discipline as
    the result cache) so a crashing fuzz run never leaves a half-written
    corpus file for pytest to choke on.
    """
    corpus_dir = str(corpus_dir)
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry.id + ".json")
    if os.path.exists(path):
        return path, False
    fd, tmp = tempfile.mkstemp(dir=corpus_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(entry.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path, True


def load_entry(path):
    with open(str(path)) as fh:
        return CorpusEntry.from_dict(json.load(fh))


def discover(corpus_dir):
    """All corpus entries under ``corpus_dir``, sorted by id."""
    entries = []
    for path in sorted(glob.glob(os.path.join(str(corpus_dir), "*.json"))):
        entries.append(load_entry(path))
    return sorted(entries, key=lambda e: e.id)


def verify_entry(entry, engines=None, **harness_options):
    """Re-run the engine battery on a corpus entry.

    Returns the list of findings (empty means the regression stays fixed).
    Runs inline — corpus checks are part of the tier-1 suite and must not
    fork worker pools.
    """
    from .harness import DifferentialFuzzer  # circular at import time only

    fuzzer = DifferentialFuzzer(engines=engines, workers=0,
                                corpus_dir=None, **harness_options)
    return fuzzer.check_recipe(entry.recipe, case_id=entry.id)
