"""Fuzz-case recipes: seeded circuit pairs with a known equivalence label.

A *recipe* is a small JSON-serializable dict that deterministically
rebuilds a (spec, impl) pair:

* ``base`` — parameters for
  :func:`repro.circuits.generators.generate_benchmark` (everything there is
  deterministic in the seed); *or* ``datapath`` — parameters for
  :func:`repro.circuits.generators.datapath_pair`, whose spec and impl are
  two structurally different constructions of one arithmetic function
  (its optional ``bug`` key plants a known arithmetic bug, making the pair
  inequivalent by construction — ``fault`` steps are never added on top);
* ``transforms`` — a chain of transformation steps applied to derive (or
  further derive) the implementation.  Equivalence-preserving steps
  (``retime``, ``optimize``, ``xor_reencode``, ``aiger_roundtrip`` — a
  lossless trip through the binary AIGER writer and reader) keep the
  pair's label *by construction*; a ``fault`` step
  (:func:`repro.transform.mutate.inject_distinguishable_fault`) makes it
  inequivalent *with a simulation witness*.

The expected verdict is therefore derivable from the recipe alone
(:func:`expected_label`), which is what lets the fuzzer treat the recipe as
an oracle and lets a corpus entry be replayed from nothing but its JSON.
The assumptions behind the labels are themselves tier-1-tested against the
reachability baseline in ``tests/transform/test_oracles.py``.
"""

import random

from ..circuits.generators import (
    DATAPATH_FAMILIES,
    datapath_pair,
    generate_benchmark,
)
from ..transform import inject_distinguishable_fault, optimize, retime, xor_reencode

#: Keys generate_benchmark accepts; guards recipes loaded from disk.
_BASE_KEYS = frozenset(
    ("name", "n_regs", "n_inputs", "n_outputs", "seed",
     "deep_counter_bits", "mixer_width")
)

#: Keys datapath_pair accepts; guards recipes loaded from disk.
_DATAPATH_KEYS = frozenset(("family", "width", "bug", "seed"))

EQUIVALENT = "equivalent"
INEQUIVALENT = "inequivalent"


def build_base(base):
    """Instantiate the base circuit of a recipe."""
    unknown = set(base) - _BASE_KEYS
    if unknown:
        raise ValueError("unknown base keys: {}".format(sorted(unknown)))
    return generate_benchmark(**base)


def build_datapath(params):
    """Instantiate the (spec, impl) pair of a datapath recipe."""
    unknown = set(params) - _DATAPATH_KEYS
    if unknown:
        raise ValueError("unknown datapath keys: {}".format(sorted(unknown)))
    return datapath_pair(**params)


def apply_transform(circuit, step):
    """Apply one recipe step; returns the derived circuit."""
    kind = step.get("kind")
    if kind == "retime":
        return retime(circuit, moves=step.get("moves", 4),
                      seed=step.get("seed", 0),
                      direction=step.get("direction", "both"))
    if kind == "optimize":
        return optimize(circuit, level=step.get("level", 2),
                        seed=step.get("seed", 0))
    if kind == "xor_reencode":
        return xor_reencode(circuit, pairs=step.get("pairs", 1),
                            seed=step.get("seed", 0))
    if kind == "fault":
        mutated, _ = inject_distinguishable_fault(
            circuit, seed=step.get("seed", 0),
            frames=step.get("frames", 32), width=step.get("width", 64))
        return mutated
    if kind == "aiger_roundtrip":
        # Lossless by construction: Circuit -> AIG -> binary AIGER bytes ->
        # AIG -> Circuit.  Exercises the interop path inside the fuzz loop;
        # input/register names survive via the symbol table so matching by
        # name still works.
        from ..interop.aiger import dumps_aiger_binary, loads_aiger
        from ..netlist.aig import from_circuit, to_circuit

        aig, _ = from_circuit(circuit)
        return to_circuit(loads_aiger(dumps_aiger_binary(aig)),
                          name=circuit.name + "_aig")
    raise ValueError("unknown transform kind {!r}".format(kind))


def build_pair(recipe):
    """Rebuild the (spec, impl) pair a recipe describes.

    May raise :class:`~repro.errors.TransformError` when a ``fault`` step
    cannot find a simulation-distinguishable mutation on the (possibly
    shrunk) base — callers treat that recipe as unusable.
    """
    if "datapath" in recipe:
        spec, impl = build_datapath(recipe["datapath"])
    else:
        spec = build_base(recipe["base"])
        impl = spec
    for step in recipe.get("transforms", ()):
        impl = apply_transform(impl, step)
    if impl is spec:
        impl = spec.copy(name=spec.name + "_id")
    return spec, impl


def expected_label(recipe):
    """The oracle verdict implied by the recipe's construction."""
    if recipe.get("datapath", {}).get("bug"):
        return INEQUIVALENT
    for step in recipe.get("transforms", ()):
        if step.get("kind") == "fault":
            return INEQUIVALENT
    return EQUIVALENT


def recipe_source_format(recipe):
    """Where the pair's circuits come from, recorded in corpus entries:
    ``"aiger"`` when the impl passed through the AIGER writer/reader,
    else ``"generated"``."""
    for step in recipe.get("transforms", ()):
        if step.get("kind") == "aiger_roundtrip":
            return "aiger"
    return "generated"


class FuzzCase:
    """One fuzz iteration's problem: a recipe plus its built circuits."""

    def __init__(self, case_id, recipe):
        self.case_id = case_id
        self.recipe = recipe
        self._pair = None

    @property
    def expected(self):
        return expected_label(self.recipe)

    @property
    def expected_equivalent(self):
        return self.expected == EQUIVALENT

    def pair(self):
        """The (spec, impl) circuits, built once and memoized."""
        if self._pair is None:
            self._pair = build_pair(self.recipe)
        return self._pair

    def describe(self):
        return {
            "case": self.case_id,
            "expected": self.expected,
            "recipe": self.recipe,
        }

    def __repr__(self):
        return "FuzzCase({!r}, expected={})".format(self.case_id,
                                                    self.expected)


# The equivalence-preserving chains the fuzzer samples from.  Retiming and
# optimization mirror the paper's benchmark synthesis; xor_reencode is the
# re-encoding stressor; aiger_roundtrip re-expresses the impl through the
# binary AIGER writer/reader; stacked chains destroy the most structure.
_EQUIV_CHAINS = (
    ("retime",),
    ("optimize",),
    ("xor_reencode",),
    ("aiger_roundtrip",),
    ("retime", "optimize"),
    ("optimize", "xor_reencode"),
    ("optimize", "aiger_roundtrip"),
    ("retime", "optimize", "xor_reencode"),
    ("retime", "aiger_roundtrip", "optimize"),
)


def _equiv_transforms(rng):
    transforms = []
    for kind in rng.choice(_EQUIV_CHAINS):
        step = {"kind": kind, "seed": rng.randrange(2 ** 30)}
        if kind == "retime":
            step["moves"] = rng.randint(1, 4)
        elif kind == "optimize":
            step["level"] = rng.choice((1, 2, 2))
        elif kind == "xor_reencode":
            step["pairs"] = rng.randint(1, 2)
        transforms.append(step)
    return transforms


def make_recipe(seed, max_regs=9, min_regs=4, fault_probability=0.45,
                datapath_probability=0.2):
    """A random recipe, deterministic in ``seed``.

    Sizes are kept small on purpose: the battery includes the traversal
    baseline, whose cost is exponential in the register count, and shrunk
    corpus entries must replay in test time.  A ``datapath_probability``
    fraction of recipes builds an arithmetic :func:`datapath_pair` instead
    of a random motif benchmark; its inequivalent variants come from the
    pair's own planted ``bug`` (never a stacked ``fault``, which would
    make the label ambiguous).
    """
    rng = random.Random(seed)
    if rng.random() < datapath_probability:
        datapath = {
            "family": rng.choice(DATAPATH_FAMILIES),
            "width": rng.randint(2, 3),
            "bug": rng.random() < fault_probability,
            "seed": rng.randrange(2 ** 30),
        }
        return {"datapath": datapath, "transforms": _equiv_transforms(rng)}
    n_regs = rng.randint(min_regs, max_regs)
    base = {
        "name": "fz{}".format(seed),
        "n_regs": n_regs,
        "n_inputs": rng.randint(2, 4),
        "n_outputs": rng.randint(1, 2),
        "seed": rng.randrange(2 ** 30),
        "deep_counter_bits": rng.choice((0, 0, 0, n_regs)),
        "mixer_width": 0,
    }
    transforms = _equiv_transforms(rng)
    if rng.random() < fault_probability:
        transforms.append({"kind": "fault", "seed": rng.randrange(2 ** 30)})
    return {"base": base, "transforms": transforms}


def make_case(seed, **kwargs):
    """Build the :class:`FuzzCase` for one fuzzer iteration."""
    return FuzzCase("fz-{:08d}".format(seed), make_recipe(seed, **kwargs))


__all__ = [
    "EQUIVALENT",
    "INEQUIVALENT",
    "FuzzCase",
    "apply_transform",
    "build_base",
    "build_datapath",
    "build_pair",
    "expected_label",
    "make_case",
    "make_recipe",
    "recipe_source_format",
]
