"""Fuzz-case recipes: seeded circuit pairs with a known equivalence label.

A *recipe* is a small JSON-serializable dict that deterministically
rebuilds a (spec, impl) pair:

* ``base`` — parameters for
  :func:`repro.circuits.generators.generate_benchmark` (everything there is
  deterministic in the seed);
* ``transforms`` — a chain of transformation steps applied to the base to
  derive the implementation.  Equivalence-preserving steps (``retime``,
  ``optimize``, ``xor_reencode``) keep the pair equivalent *by
  construction*; a ``fault`` step
  (:func:`repro.transform.mutate.inject_distinguishable_fault`) makes it
  inequivalent *with a simulation witness*.

The expected verdict is therefore derivable from the recipe alone
(:func:`expected_label`), which is what lets the fuzzer treat the recipe as
an oracle and lets a corpus entry be replayed from nothing but its JSON.
The assumptions behind the labels are themselves tier-1-tested against the
reachability baseline in ``tests/transform/test_oracles.py``.
"""

import random

from ..circuits.generators import generate_benchmark
from ..transform import inject_distinguishable_fault, optimize, retime, xor_reencode

#: Keys generate_benchmark accepts; guards recipes loaded from disk.
_BASE_KEYS = frozenset(
    ("name", "n_regs", "n_inputs", "n_outputs", "seed",
     "deep_counter_bits", "mixer_width")
)

EQUIVALENT = "equivalent"
INEQUIVALENT = "inequivalent"


def build_base(base):
    """Instantiate the base circuit of a recipe."""
    unknown = set(base) - _BASE_KEYS
    if unknown:
        raise ValueError("unknown base keys: {}".format(sorted(unknown)))
    return generate_benchmark(**base)


def apply_transform(circuit, step):
    """Apply one recipe step; returns the derived circuit."""
    kind = step.get("kind")
    if kind == "retime":
        return retime(circuit, moves=step.get("moves", 4),
                      seed=step.get("seed", 0),
                      direction=step.get("direction", "both"))
    if kind == "optimize":
        return optimize(circuit, level=step.get("level", 2),
                        seed=step.get("seed", 0))
    if kind == "xor_reencode":
        return xor_reencode(circuit, pairs=step.get("pairs", 1),
                            seed=step.get("seed", 0))
    if kind == "fault":
        mutated, _ = inject_distinguishable_fault(
            circuit, seed=step.get("seed", 0),
            frames=step.get("frames", 32), width=step.get("width", 64))
        return mutated
    raise ValueError("unknown transform kind {!r}".format(kind))


def build_pair(recipe):
    """Rebuild the (spec, impl) pair a recipe describes.

    May raise :class:`~repro.errors.TransformError` when a ``fault`` step
    cannot find a simulation-distinguishable mutation on the (possibly
    shrunk) base — callers treat that recipe as unusable.
    """
    spec = build_base(recipe["base"])
    impl = spec
    for step in recipe.get("transforms", ()):
        impl = apply_transform(impl, step)
    if impl is spec:
        impl = spec.copy(name=spec.name + "_id")
    return spec, impl


def expected_label(recipe):
    """The oracle verdict implied by the recipe's transform chain."""
    for step in recipe.get("transforms", ()):
        if step.get("kind") == "fault":
            return INEQUIVALENT
    return EQUIVALENT


class FuzzCase:
    """One fuzz iteration's problem: a recipe plus its built circuits."""

    def __init__(self, case_id, recipe):
        self.case_id = case_id
        self.recipe = recipe
        self._pair = None

    @property
    def expected(self):
        return expected_label(self.recipe)

    @property
    def expected_equivalent(self):
        return self.expected == EQUIVALENT

    def pair(self):
        """The (spec, impl) circuits, built once and memoized."""
        if self._pair is None:
            self._pair = build_pair(self.recipe)
        return self._pair

    def describe(self):
        return {
            "case": self.case_id,
            "expected": self.expected,
            "recipe": self.recipe,
        }

    def __repr__(self):
        return "FuzzCase({!r}, expected={})".format(self.case_id,
                                                    self.expected)


# The equivalence-preserving chains the fuzzer samples from.  Retiming and
# optimization mirror the paper's benchmark synthesis; xor_reencode is the
# re-encoding stressor; stacked chains destroy the most structure.
_EQUIV_CHAINS = (
    ("retime",),
    ("optimize",),
    ("xor_reencode",),
    ("retime", "optimize"),
    ("optimize", "xor_reencode"),
    ("retime", "optimize", "xor_reencode"),
)


def make_recipe(seed, max_regs=9, min_regs=4, fault_probability=0.45):
    """A random recipe, deterministic in ``seed``.

    Sizes are kept small on purpose: the battery includes the traversal
    baseline, whose cost is exponential in the register count, and shrunk
    corpus entries must replay in test time.
    """
    rng = random.Random(seed)
    n_regs = rng.randint(min_regs, max_regs)
    base = {
        "name": "fz{}".format(seed),
        "n_regs": n_regs,
        "n_inputs": rng.randint(2, 4),
        "n_outputs": rng.randint(1, 2),
        "seed": rng.randrange(2 ** 30),
        "deep_counter_bits": rng.choice((0, 0, 0, n_regs)),
        "mixer_width": 0,
    }
    transforms = []
    for kind in rng.choice(_EQUIV_CHAINS):
        step = {"kind": kind, "seed": rng.randrange(2 ** 30)}
        if kind == "retime":
            step["moves"] = rng.randint(1, 4)
        elif kind == "optimize":
            step["level"] = rng.choice((1, 2, 2))
        elif kind == "xor_reencode":
            step["pairs"] = rng.randint(1, 2)
        transforms.append(step)
    if rng.random() < fault_probability:
        transforms.append({"kind": "fault", "seed": rng.randrange(2 ** 30)})
    return {"base": base, "transforms": transforms}


def make_case(seed, **kwargs):
    """Build the :class:`FuzzCase` for one fuzzer iteration."""
    return FuzzCase("fz-{:08d}".format(seed), make_recipe(seed, **kwargs))


__all__ = [
    "EQUIVALENT",
    "INEQUIVALENT",
    "FuzzCase",
    "apply_transform",
    "build_base",
    "build_pair",
    "expected_label",
    "make_case",
    "make_recipe",
]
