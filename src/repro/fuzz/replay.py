"""Counterexample replay: the ground-truth oracle for refutations.

A :class:`~repro.reach.CexTrace` *claims* that driving both circuits with a
concrete input sequence makes some corresponding output pair differ.  Every
engine builds its traces from a different artifact — simulation signatures
(van Eijk), SAT models over an unrolling (BMC), BDD onion rings (traversal)
— and a bug in any of those reconstructions produces a verdict that *looks*
refuted but is not.  Replaying the trace concretely on both original
circuits with plain gate evaluation is the one check that does not share
code with any engine, which is what makes it a usable differential oracle
(the same cross-check FRAIG-style equivalence checkers run before trusting
a SAT counterexample).

:func:`replay_counterexample` is deliberately engine-agnostic; it is used

* by the fuzz harness, on every refutation any engine emits;
* by the portfolio racer, to disqualify a lane whose "refutation" does not
  replay (see :mod:`repro.service.portfolio`);
* by engine tests, as a reusable assertion that a trace is real.
"""

from ..netlist.simulate import make_sim


class ReplayReport:
    """Outcome of replaying one trace on a (spec, impl) pair.

    ``valid`` is True iff some corresponding output pair differs in some
    frame of the replay.  ``mismatch_frame``/``spec_output``/``impl_output``
    locate the first difference; ``reason`` explains an invalid replay
    (no mismatch, malformed trace, simulation error).  ``missing_inputs``
    counts input nets a frame did not assign (replayed as 0) — nonzero
    means the trace under-specifies the stimulus, which is tolerated but
    recorded.
    """

    def __init__(self, valid, frames=0, mismatch_frame=None,
                 spec_output=None, impl_output=None, reason=None,
                 missing_inputs=0):
        self.valid = valid
        self.frames = frames
        self.mismatch_frame = mismatch_frame
        self.spec_output = spec_output
        self.impl_output = impl_output
        self.reason = reason
        self.missing_inputs = missing_inputs

    def as_dict(self):
        return {
            "valid": self.valid,
            "frames": self.frames,
            "mismatch_frame": self.mismatch_frame,
            "spec_output": self.spec_output,
            "impl_output": self.impl_output,
            "reason": self.reason,
            "missing_inputs": self.missing_inputs,
        }

    def __repr__(self):
        if self.valid:
            return "ReplayReport(valid, frame={}, {} != {})".format(
                self.mismatch_frame, self.spec_output, self.impl_output)
        return "ReplayReport(INVALID: {})".format(self.reason)


def replay_trace(circuit, frames, input_map=None, sim=None,
                 sim_backend="auto"):
    """Drive ``circuit`` from its initial state with explicit input vectors.

    ``frames`` is a list of ``{net: bool}`` dicts keyed by the *trace's*
    input names; ``input_map`` maps each of the circuit's input nets to the
    trace name supplying it (identity by default).  Unassigned inputs
    replay as 0.  Returns ``(per_frame_outputs, missing)`` where
    ``per_frame_outputs[t]`` lists the circuit's output values (by output
    position) in frame ``t``.

    ``sim`` lets callers reuse a prebuilt kernel for ``circuit`` across
    many traces; otherwise one is built on the fly, selected by
    ``sim_backend`` (:data:`~repro.netlist.simulate.SIM_BACKENDS`).
    """
    if sim is None:
        sim = make_sim(circuit, sim_backend)
    input_frames = []
    missing = 0
    for frame in frames:
        env = {}
        for net in circuit.inputs:
            source = input_map.get(net, net) if input_map else net
            if source in frame:
                env[net] = int(bool(frame[source]))
            else:
                env[net] = 0
                missing += 1
        input_frames.append(env)
    replayed = sim.replay(circuit.initial_state(), input_frames)
    per_frame = [
        [bool(values[net]) for net in circuit.outputs]
        for values in replayed
    ]
    return per_frame, missing


def _output_pairs(spec, impl, match_outputs):
    """Positional (spec_idx, impl_idx) pairs under the matching mode."""
    if match_outputs == "order":
        return list(zip(range(len(spec.outputs)), range(len(impl.outputs))))
    if match_outputs == "name":
        impl_pos = {net: idx for idx, net in enumerate(impl.outputs)}
        return [(idx, impl_pos[net]) for idx, net in enumerate(spec.outputs)]
    raise ValueError("match_outputs must be 'name' or 'order'")


def replay_counterexample(spec, impl, cex, match_inputs="name",
                          match_outputs="order"):
    """Replay ``cex`` on both circuits; returns a :class:`ReplayReport`.

    The trace's input names are the product machine's, i.e. the spec's
    primary input names; with ``match_inputs="order"`` the impl's inputs
    are fed positionally from the same vectors, mirroring
    :func:`repro.netlist.product.build_product`.
    """
    if cex is None:
        return ReplayReport(False, reason="no counterexample attached")
    frames = cex.full_sequence()
    if not frames:
        return ReplayReport(False, reason="empty trace")
    if match_inputs == "name":
        impl_in_map = None
    elif match_inputs == "order":
        impl_in_map = dict(zip(impl.inputs, spec.inputs))
    else:
        return ReplayReport(False, reason="bad match_inputs {!r}".format(
            match_inputs))
    try:
        pairs = _output_pairs(spec, impl, match_outputs)
        spec_frames, spec_missing = replay_trace(spec, frames)
        impl_frames, impl_missing = replay_trace(impl, frames,
                                                 input_map=impl_in_map)
    except Exception as exc:  # malformed trace / circuit mismatch
        return ReplayReport(False, frames=len(frames),
                            reason="replay error: {!r}".format(exc))
    missing = spec_missing + impl_missing
    for t, (s_vals, i_vals) in enumerate(zip(spec_frames, impl_frames)):
        for s_idx, i_idx in pairs:
            if s_vals[s_idx] != i_vals[i_idx]:
                return ReplayReport(
                    True, frames=len(frames), mismatch_frame=t,
                    spec_output=spec.outputs[s_idx],
                    impl_output=impl.outputs[i_idx],
                    missing_inputs=missing,
                )
    return ReplayReport(
        False, frames=len(frames),
        reason="no output mismatch in any of {} frames".format(len(frames)),
        missing_inputs=missing,
    )


def validate_refutation(spec, impl, result, match_inputs="name",
                        match_outputs="order"):
    """Replay-check a refuting :class:`~repro.reach.SecResult`.

    Returns a :class:`ReplayReport`; a refutation with no attached trace is
    invalid by definition (nothing to audit).  Raises ``ValueError`` when
    the result is not a refutation — callers decide what *inconclusive*
    means, this function only audits claims of inequivalence.
    """
    if result.equivalent is not False:
        raise ValueError("result is not a refutation: {!r}".format(result))
    return replay_counterexample(spec, impl, result.counterexample,
                                 match_inputs=match_inputs,
                                 match_outputs=match_outputs)
