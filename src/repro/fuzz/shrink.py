"""Delta-debugging of fuzz recipes.

A disagreement found on a 9-register circuit with a three-step transform
chain is a poor regression test: slow to re-run and hard to diagnose.  The
shrinker greedily simplifies the *recipe* — dropping transform steps,
halving the register count, removing the deep-counter/mixer motifs,
trimming outputs and inputs, weakening step parameters — and keeps any
candidate on which the disagreement (as judged by a caller-supplied
predicate) persists.  Shrinking the generator input rather than the built
netlist keeps every shrunk artifact reproducible from its JSON recipe,
which is what the corpus format requires; dropping registers/outputs at
the recipe level is what drops whole motifs and gate cones from the built
circuit.

The predicate is re-evaluated on every candidate, so it must be
deterministic for the walk to terminate at a meaningful minimum; all
engine seeds live in the recipe, making that the default.
"""

import copy

_MIN_REGS = 3


def _candidates(recipe):
    """Yield progressively simpler variants of ``recipe``, boldest first."""
    transforms = recipe.get("transforms", [])
    # 1. Drop each transform step (rear first: the fault/most-derived step
    #    is the most suspicious, but dropping early steps shrinks more).
    for idx in range(len(transforms)):
        variant = copy.deepcopy(recipe)
        del variant["transforms"][idx]
        yield variant
    if "base" not in recipe:
        # Datapath recipes: the pair construction itself has one knob.
        datapath = recipe.get("datapath", {})
        if datapath.get("width", 0) > 2:
            variant = copy.deepcopy(recipe)
            variant["datapath"]["width"] = datapath["width"] - 1
            yield variant
        yield from _weaken_steps(recipe, transforms)
        return
    base = recipe["base"]
    # 2. Shrink the base circuit: halving drops whole motifs.
    n_regs = base.get("n_regs", 0)
    for smaller in (n_regs // 2, n_regs - 1):
        if _MIN_REGS <= smaller < n_regs:
            variant = copy.deepcopy(recipe)
            variant["base"]["n_regs"] = smaller
            if variant["base"].get("deep_counter_bits", 0) > smaller:
                variant["base"]["deep_counter_bits"] = smaller
            yield variant
    for knob in ("deep_counter_bits", "mixer_width"):
        if base.get(knob, 0):
            variant = copy.deepcopy(recipe)
            variant["base"][knob] = 0
            yield variant
    if base.get("n_outputs", 1) > 1:
        variant = copy.deepcopy(recipe)
        variant["base"]["n_outputs"] = 1
        yield variant
    if base.get("n_inputs", 2) > 2:
        variant = copy.deepcopy(recipe)
        variant["base"]["n_inputs"] = base["n_inputs"] - 1
        yield variant
    yield from _weaken_steps(recipe, transforms)


def _weaken_steps(recipe, transforms):
    # 3. Weaken individual steps.
    for idx, step in enumerate(transforms):
        kind = step.get("kind")
        if kind == "retime" and step.get("moves", 4) > 1:
            variant = copy.deepcopy(recipe)
            variant["transforms"][idx]["moves"] = step["moves"] // 2
            yield variant
        elif kind == "optimize" and step.get("level", 2) > 1:
            variant = copy.deepcopy(recipe)
            variant["transforms"][idx]["level"] = 1
            yield variant
        elif kind == "xor_reencode" and step.get("pairs", 1) > 1:
            variant = copy.deepcopy(recipe)
            variant["transforms"][idx]["pairs"] = step["pairs"] // 2
            yield variant


def recipe_size(recipe):
    """Rough complexity measure used to report shrink progress."""
    if "base" not in recipe:
        datapath = recipe.get("datapath", {})
        return (datapath.get("width", 2)
                + sum(2 for _ in recipe.get("transforms", ())))
    base = recipe["base"]
    return (base.get("n_regs", 0) + base.get("n_inputs", 0)
            + base.get("n_outputs", 0) + base.get("mixer_width", 0)
            + sum(2 for _ in recipe.get("transforms", ())))


def shrink_recipe(recipe, still_fails, max_evaluations=48):
    """Greedy first-improvement shrink loop.

    ``still_fails(candidate_recipe)`` re-runs the caller's check and
    returns True when the disagreement persists on the candidate; it must
    tolerate candidates whose pair cannot be built (and return False for
    them).  Returns ``(shrunk_recipe, evaluations)``; the input recipe is
    returned unchanged when nothing simpler still fails.
    """
    current = copy.deepcopy(recipe)
    evaluations = 0
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for candidate in _candidates(current):
            if evaluations >= max_evaluations:
                break
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current, evaluations
