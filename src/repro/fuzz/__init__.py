"""Differential fuzzing of the verification engines.

The repo races four engines whose verdicts must agree whenever two are
conclusive — including the paper's method under *both* refinement backends
(BDD fixed point and incremental SAT sweep), which must compute the same
relation — and the method is trusted to be *sound*.  This package is the
machinery that checks those claims continuously instead of hoping:

* :mod:`repro.fuzz.generate` — seeded circuit pairs with a known
  equivalence label (recipes: base generator parameters + a transform
  chain);
* :mod:`repro.fuzz.replay` — the counterexample-replay oracle: concrete
  re-simulation of every :class:`~repro.reach.CexTrace` on both circuits;
* :mod:`repro.fuzz.harness` — the differential loop over the batch
  scheduler, cross-checking engines against the label, each other, and
  replay;
* :mod:`repro.fuzz.shrink` — delta-debugging of failing recipes;
* :mod:`repro.fuzz.corpus` — the persisted regression corpus that the
  tier-1 suite re-runs (``tests/corpus/``).

CLI entry point: ``repro-sec fuzz --iterations N --seed K``.
"""

from .corpus import CorpusEntry, discover, entry_id, load_entry, save_entry, verify_entry
from .generate import (
    EQUIVALENT,
    INEQUIVALENT,
    FuzzCase,
    build_pair,
    expected_label,
    make_case,
    make_recipe,
)
from .harness import (
    CROSS_ENGINE,
    DEFAULT_FUZZ_ENGINES,
    EXTERNAL_DISAGREEMENT,
    FALSE_PROOF,
    FALSE_REFUTATION,
    INVALID_CEX,
    DifferentialFuzzer,
    FuzzFinding,
    FuzzReport,
    run_fuzz,
)
from .replay import ReplayReport, replay_counterexample, replay_trace, validate_refutation
from .shrink import recipe_size, shrink_recipe

__all__ = [
    "CROSS_ENGINE",
    "CorpusEntry",
    "DEFAULT_FUZZ_ENGINES",
    "DifferentialFuzzer",
    "EQUIVALENT",
    "EXTERNAL_DISAGREEMENT",
    "FALSE_PROOF",
    "FALSE_REFUTATION",
    "FuzzCase",
    "FuzzFinding",
    "FuzzReport",
    "INEQUIVALENT",
    "INVALID_CEX",
    "ReplayReport",
    "build_pair",
    "discover",
    "entry_id",
    "expected_label",
    "load_entry",
    "make_case",
    "make_recipe",
    "recipe_size",
    "replay_counterexample",
    "replay_trace",
    "run_fuzz",
    "save_entry",
    "shrink_recipe",
    "validate_refutation",
    "verify_entry",
]
