"""Transfer a BDD from one manager to another (with variable remapping)."""

from ..errors import BddError


def transfer(src, edge, dst, var_map):
    """Rebuild ``edge`` (owned by manager ``src``) inside manager ``dst``.

    ``var_map`` maps source variable indices to destination variable
    indices; every variable in the edge's support must be mapped.  The
    destination order may differ — the rebuild goes through ITE, which
    reorders internally.
    """
    cache = {}

    def walk(e):
        sign = e & 1
        node = e >> 1
        if node == 0:
            return dst.true ^ sign
        cached = cache.get(node)
        if cached is None:
            var = src._var[node]
            mapped = var_map.get(var)
            if mapped is None:
                raise BddError(
                    "transfer: unmapped variable {!r}".format(src.var_name(var))
                )
            hi = walk(src._hi[node])
            lo = walk(src._lo[node])
            cached = dst.ite(dst.var_edge(mapped), hi, lo)
            cache[node] = cached
        return cached ^ sign

    return walk(edge)
