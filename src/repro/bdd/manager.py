"""Reduced ordered binary decision diagrams with complement edges.

This module provides :class:`BddManager`, a self-contained ROBDD package in
the style of the Eindhoven/CUDD packages the paper builds on.  Edges are plain
Python integers: ``edge = node_index << 1 | complement_bit``.  Node index 0 is
the constant function ONE, so ``manager.true == 0`` and ``manager.false == 1``.

Canonical form
--------------
The *then* (high) child of every stored node is a regular (uncomplemented)
edge; complementation is pushed onto parent edges and else children.  Under
this rule every Boolean function has exactly one representation, negation is
O(1) (``edge ^ 1``), and a function and its complement share all nodes — which
is what makes the paper's antivalence detection structural.

Variable order
--------------
Nodes store a *variable index* (stable for the lifetime of the manager); the
manager separately maintains a permutation ``level_of_var``/``var_at_level``.
Recursive operations branch on the variable of least level.  The sifting
reorderer in :mod:`repro.bdd.reorder` swaps adjacent levels in place, so all
outstanding edges remain valid across reordering.
"""

import sys

from ..errors import BddError, NodeLimitExceeded

_TERMINAL_LEVEL = 1 << 60


class BddManager:
    """A manager owning a shared multi-rooted BDD forest.

    Parameters
    ----------
    node_limit:
        Optional cap on the number of *live* nodes.  Exceeding it raises
        :class:`~repro.errors.NodeLimitExceeded`; the paper imposes the same
        kind of memory limit (100 MB) on its BDD package.
    """

    def __init__(self, node_limit=None):
        self.node_limit = node_limit
        # Node storage; index 0 is the terminal ONE node.
        self._var = [_TERMINAL_LEVEL]
        self._hi = [0]
        self._lo = [0]
        self._free = []  # recycled node indices
        # Variable order bookkeeping.
        self._level_of_var = []
        self._var_at_level = []
        self._var_names = []
        self._name_to_var = {}
        # unique[var] maps (hi, lo) -> node index.
        self._unique = []
        # Operation caches.
        self._ite_cache = {}
        self._quant_cache = {}
        self._compose_cache = {}
        self._misc_cache = {}
        # Statistics.
        self.live_nodes = 1
        self.peak_live_nodes = 1
        self.created_nodes = 1
        self.cache_lookups = 0
        self.cache_hits = 0
        # Registered roots (protected across garbage collection/reordering).
        self._roots = {}
        self._next_root_token = 0
        if sys.getrecursionlimit() < 100000:
            sys.setrecursionlimit(100000)

    # ------------------------------------------------------------------
    # Constants and variables
    # ------------------------------------------------------------------

    @property
    def true(self):
        """The constant-1 function."""
        return 0

    @property
    def false(self):
        """The constant-0 function."""
        return 1

    def add_var(self, name=None):
        """Create a fresh variable at the bottom of the order.

        Returns the edge of the positive literal.  ``name`` defaults to
        ``"v<index>"`` and must be unique.
        """
        var = len(self._level_of_var)
        if name is None:
            name = "v{}".format(var)
        if name in self._name_to_var:
            raise BddError("duplicate variable name: {!r}".format(name))
        self._level_of_var.append(len(self._var_at_level))
        self._var_at_level.append(var)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._unique.append({})
        return self._mk(var, self.true, self.false)

    def add_vars(self, names):
        """Create several variables; returns their positive-literal edges."""
        return [self.add_var(name) for name in names]

    @property
    def num_vars(self):
        return len(self._level_of_var)

    def var_edge(self, var):
        """Edge of the positive literal of variable index ``var``."""
        self._check_var(var)
        return self._mk(var, self.true, self.false)

    def var_by_name(self, name):
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BddError("unknown variable name: {!r}".format(name)) from None

    def var_name(self, var):
        self._check_var(var)
        return self._var_names[var]

    def level_of(self, var):
        self._check_var(var)
        return self._level_of_var[var]

    def var_at_level(self, level):
        return self._var_at_level[level]

    def current_order(self):
        """Variable indices from top level to bottom level."""
        return list(self._var_at_level)

    def _check_var(self, var):
        if not 0 <= var < len(self._level_of_var):
            raise BddError("unknown variable index: {}".format(var))

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------

    def _mk(self, var, hi, lo):
        """Find-or-create the canonical node for ``ITE(var, hi, lo)``.

        ``hi``/``lo`` must be edges of nodes strictly below ``var``'s level.
        """
        if hi == lo:
            return hi
        if hi & 1:
            # Canonicity: the then-edge must be regular; complement the node.
            return self._mk(var, hi ^ 1, lo ^ 1) ^ 1
        table = self._unique[var]
        key = (hi, lo)
        node = table.get(key)
        if node is not None:
            return node << 1
        if self._free:
            idx = self._free.pop()
            self._var[idx] = var
            self._hi[idx] = hi
            self._lo[idx] = lo
        else:
            idx = len(self._var)
            self._var.append(var)
            self._hi.append(hi)
            self._lo.append(lo)
        table[key] = idx
        self.live_nodes += 1
        self.created_nodes += 1
        if self.live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self.live_nodes
        if self.node_limit is not None and self.live_nodes > self.node_limit:
            raise NodeLimitExceeded(
                "BDD node limit of {} exceeded".format(self.node_limit)
            )
        return idx << 1

    def node_of(self, edge):
        return edge >> 1

    def is_complemented(self, edge):
        return bool(edge & 1)

    def is_constant(self, edge):
        return edge >> 1 == 0

    def var_of(self, edge):
        """Variable index of the edge's top node (error on constants)."""
        if self.is_constant(edge):
            raise BddError("constant edge has no variable")
        return self._var[edge >> 1]

    def _top_level(self, edge):
        node = edge >> 1
        if node == 0:
            return _TERMINAL_LEVEL
        var = self._var[node]
        if var < 0:
            raise BddError(
                "edge references a freed node (unregistered root held "
                "across garbage collection?)"
            )
        return self._level_of_var[var]

    def cofactors(self, edge, var):
        """(positive, negative) cofactor of ``edge`` w.r.t. ``var``.

        ``var`` must be at or above the edge's top level for the O(1) case;
        arbitrary variables are handled via :meth:`restrict`.
        """
        node = edge >> 1
        if node != 0 and self._var[node] == var:
            sign = edge & 1
            return self._hi[node] ^ sign, self._lo[node] ^ sign
        if node == 0 or self._level_of_var[self._var[node]] > self._level_of_var[var]:
            return edge, edge
        one = self.restrict(edge, {var: True})
        zero = self.restrict(edge, {var: False})
        return one, zero

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------

    def ite(self, f, g, h):
        """``ITE(f, g, h) = f·g + ¬f·h`` — the universal binary operation."""
        # Terminal cases.
        if f == self.true:
            return g
        if f == self.false:
            return h
        if g == h:
            return g
        if g == self.true and h == self.false:
            return f
        if g == self.false and h == self.true:
            return f ^ 1
        # Reductions using f itself.
        if g == f:
            g = self.true
        elif g == (f ^ 1):
            g = self.false
        if h == f:
            h = self.false
        elif h == (f ^ 1):
            h = self.true
        if g == self.true and h == self.false:
            return f
        if g == self.false and h == self.true:
            return f ^ 1
        if g == h:
            return g
        # Normalize: first argument regular.
        if f & 1:
            f, g, h = f ^ 1, h, g
        # Normalize: choose a canonical representative among equivalent
        # triples so the cache hits more often (standard-triple rules).
        if g == self.true and self._top_level(h) < self._top_level(f):
            f, h = h, f  # f+h is commutative
        elif h == self.false and self._top_level(g) < self._top_level(f):
            f, g = g, f  # f·g is commutative
        elif g == (h ^ 1) and self._top_level(g) < self._top_level(f):
            f, g = g, f  # f xnor g is commutative
            h = g ^ 1
        # Normalize: result sign out (then-branch regular).
        negate = False
        if g & 1:
            g, h = g ^ 1, h ^ 1
            negate = True
        key = (f, g, h)
        self.cache_lookups += 1
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached ^ 1 if negate else cached
        top = min(self._top_level(f), self._top_level(g), self._top_level(h))
        var = self._var_at_level[top]
        f1, f0 = self._fast_cofactors(f, var)
        g1, g0 = self._fast_cofactors(g, var)
        h1, h0 = self._fast_cofactors(h, var)
        t = self.ite(f1, g1, h1)
        e = self.ite(f0, g0, h0)
        result = self._mk(var, t, e)
        self._ite_cache[key] = result
        return result ^ 1 if negate else result

    def _fast_cofactors(self, edge, var):
        node = edge >> 1
        if node != 0 and self._var[node] == var:
            sign = edge & 1
            return self._hi[node] ^ sign, self._lo[node] ^ sign
        return edge, edge

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------

    def apply_not(self, f):
        return f ^ 1

    def apply_and(self, f, g):
        return self.ite(f, g, self.false)

    def apply_or(self, f, g):
        return self.ite(f, self.true, g)

    def apply_xor(self, f, g):
        return self.ite(f, g ^ 1, g)

    def apply_xnor(self, f, g):
        return self.ite(f, g, g ^ 1)

    def apply_nand(self, f, g):
        return self.apply_and(f, g) ^ 1

    def apply_nor(self, f, g):
        return self.apply_or(f, g) ^ 1

    def apply_implies(self, f, g):
        return self.ite(f, g, self.true)

    def and_is_false(self, f, g):
        """Decide ``f ∧ g == 0`` without building the conjunction.

        The inner loop of the correspondence refinement asks exactly this
        question (``Q ∧ (ν_m ⊕ ν_n) == 0``); deciding it by traversal avoids
        materializing conjunction nodes that are discarded immediately.
        """
        cache = self._misc_cache

        def rec(a, b):
            if a == self.false or b == self.false:
                return True
            if a == self.true and b == self.true:
                return False
            if a == (b ^ 1):
                return True
            if a == self.true or b == self.true or a == b:
                return False
            if a > b:
                a, b = b, a
            key = ("AIF", a, b)
            cached = cache.get(key)
            if cached is not None:
                return cached
            level = min(self._top_level(a), self._top_level(b))
            var = self._var_at_level[level]
            a1, a0 = self._fast_cofactors(a, var)
            b1, b0 = self._fast_cofactors(b, var)
            result = rec(a1, b1) and rec(a0, b0)
            cache[key] = result
            return result

        return rec(f, g)

    def and_many(self, edges):
        """Conjunction of an iterable of edges (balanced reduction)."""
        items = list(edges)
        if not items:
            return self.true
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                nxt.append(self.apply_and(items[i], items[i + 1]))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def or_many(self, edges):
        """Disjunction of an iterable of edges (balanced reduction)."""
        return self.and_many(e ^ 1 for e in edges) ^ 1

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def exists(self, f, variables):
        """Existential quantification over an iterable of variable indices."""
        varset = frozenset(variables)
        if not varset:
            return f
        for var in varset:
            self._check_var(var)
        max_level = max(self._level_of_var[v] for v in varset)
        return self._exists_rec(f, varset, max_level)

    def forall(self, f, variables):
        """Universal quantification: ``∀v.f = ¬∃v.¬f``."""
        return self.exists(f ^ 1, variables) ^ 1

    def _exists_rec(self, f, varset, max_level):
        if self.is_constant(f):
            return f
        level = self._top_level(f)
        if level > max_level:
            return f
        key = (f, varset)
        self.cache_lookups += 1
        cached = self._quant_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        var = self._var_at_level[level]
        hi, lo = self._fast_cofactors(f, var)
        t = self._exists_rec(hi, varset, max_level)
        if var in varset:
            if t == self.true:
                result = self.true
            else:
                e = self._exists_rec(lo, varset, max_level)
                result = self.apply_or(t, e)
        else:
            e = self._exists_rec(lo, varset, max_level)
            result = self._mk(var, t, e)
        self._quant_cache[key] = result
        return result

    def and_exists(self, f, g, variables):
        """Relational product ``∃vars. f ∧ g`` without building ``f ∧ g``."""
        varset = frozenset(variables)
        for var in varset:
            self._check_var(var)
        if not varset:
            return self.apply_and(f, g)
        max_level = max(self._level_of_var[v] for v in varset)
        return self._and_exists_rec(f, g, varset, max_level)

    def _and_exists_rec(self, f, g, varset, max_level):
        if f == self.false or g == self.false:
            return self.false
        if f == self.true and g == self.true:
            return self.true
        if f == (g ^ 1):
            return self.false
        if f == self.true or f == g:
            return self._exists_rec(g, varset, max_level)
        if g == self.true:
            return self._exists_rec(f, varset, max_level)
        level = min(self._top_level(f), self._top_level(g))
        if level > max_level:
            return self.apply_and(f, g)
        if f > g:
            f, g = g, f
        key = (f, g, varset)
        self.cache_lookups += 1
        cached = self._misc_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        var = self._var_at_level[level]
        f1, f0 = self._fast_cofactors(f, var)
        g1, g0 = self._fast_cofactors(g, var)
        if var in varset:
            t = self._and_exists_rec(f1, g1, varset, max_level)
            if t == self.true:
                result = self.true
            else:
                e = self._and_exists_rec(f0, g0, varset, max_level)
                result = self.apply_or(t, e)
        else:
            t = self._and_exists_rec(f1, g1, varset, max_level)
            e = self._and_exists_rec(f0, g0, varset, max_level)
            result = self._mk(var, t, e)
        self._misc_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Substitution / restriction
    # ------------------------------------------------------------------

    def restrict(self, f, assignment):
        """Cofactor ``f`` by a partial assignment ``{var: bool}``."""
        if not assignment:
            return f
        fixed = {}
        for var, value in assignment.items():
            self._check_var(var)
            fixed[var] = bool(value)
        max_level = max(self._level_of_var[v] for v in fixed)
        token = tuple(sorted(fixed.items()))
        return self._restrict_rec(f, fixed, max_level, token)

    def _restrict_rec(self, f, fixed, max_level, token):
        if self.is_constant(f) or self._top_level(f) > max_level:
            return f
        key = (f, token)
        self.cache_lookups += 1
        cached = self._misc_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        var = self._var_at_level[self._top_level(f)]
        hi, lo = self._fast_cofactors(f, var)
        if var in fixed:
            result = self._restrict_rec(hi if fixed[var] else lo, fixed, max_level, token)
        else:
            t = self._restrict_rec(hi, fixed, max_level, token)
            e = self._restrict_rec(lo, fixed, max_level, token)
            result = self._mk(var, t, e)
        self._misc_cache[key] = result
        return result

    def compose(self, f, var, g):
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        return self.vector_compose(f, {var: g})

    def vector_compose(self, f, substitution):
        """Simultaneously substitute ``{var: edge}`` into ``f``.

        The substitution is *simultaneous*: variables appearing inside the
        replacement functions are not substituted again.  This is exactly the
        frame-shift operation the paper's ν functions need:
        ``ν_v = f_v[s := δ(s, x), x := x']``.
        """
        if not substitution:
            return f
        subst = {}
        for var, edge in substitution.items():
            self._check_var(var)
            subst[var] = edge
        token = tuple(sorted(subst.items()))
        cache = self._compose_cache.setdefault(token, {})
        max_level = max(self._level_of_var[v] for v in subst)
        return self._compose_rec(f, subst, max_level, cache)

    def _compose_rec(self, f, subst, max_level, cache):
        if self.is_constant(f) or self._top_level(f) > max_level:
            return f
        sign = f & 1
        node = f >> 1
        key = node
        cached = cache.get(key)
        if cached is not None:
            return cached ^ sign
        var = self._var[node]
        hi = self._hi[node]
        lo = self._lo[node]
        t = self._compose_rec(hi, subst, max_level, cache)
        e = self._compose_rec(lo, subst, max_level, cache)
        replacement = subst.get(var)
        if replacement is None:
            replacement = self._mk(var, self.true, self.false)
        result = self.ite(replacement, t, e)
        cache[key] = result
        return result ^ sign

    def constrain(self, f, care):
        """Coudert-Madre generalized cofactor ``f ↓ care``.

        Semantics: ``(f ↓ care)(x) = f(μ(x))`` where μ maps every point to
        the nearest (in variable order) point of the care set.  Key
        property used by the correspondence engine: two functions agree on
        every care-set point **iff** their generalized cofactors are the
        same BDD — so "equivalence under the don't-care complement of Q"
        becomes a hashable canonical form.
        """
        if care == self.false:
            raise BddError("constrain by the empty care set")
        return self._constrain_rec(f, care)

    def _constrain_rec(self, f, care):
        if care == self.true or self.is_constant(f):
            return f
        if f == care:
            return self.true
        if f == (care ^ 1):
            return self.false
        key = ("CON", f, care)
        self.cache_lookups += 1
        cached = self._misc_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        level = min(self._top_level(f), self._top_level(care))
        var = self._var_at_level[level]
        f1, f0 = self._fast_cofactors(f, var)
        c1, c0 = self._fast_cofactors(care, var)
        if c1 == self.false:
            result = self._constrain_rec(f0, c0)
        elif c0 == self.false:
            result = self._constrain_rec(f1, c1)
        else:
            result = self._mk(
                var,
                self._constrain_rec(f1, c1),
                self._constrain_rec(f0, c0),
            )
        self._misc_cache[key] = result
        return result

    def rename_vars(self, f, mapping):
        """Substitute variables for variables (``{old_var: new_var}``)."""
        return self.vector_compose(
            f, {old: self.var_edge(new) for old, new in mapping.items()}
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def evaluate(self, f, assignment):
        """Evaluate ``f`` under a total assignment ``{var: bool}``."""
        sign = f & 1
        node = f >> 1
        while node != 0:
            var = self._var[node]
            try:
                value = assignment[var]
            except KeyError:
                raise BddError(
                    "assignment misses variable {!r}".format(self._var_names[var])
                ) from None
            edge = self._hi[node] if value else self._lo[node]
            sign ^= edge & 1
            node = edge >> 1
        return sign == 0

    def support(self, f):
        """Set of variable indices ``f`` depends on."""
        seen = set()
        result = set()
        stack = [f >> 1]
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._hi[node] >> 1)
            stack.append(self._lo[node] >> 1)
        return result

    def dag_size(self, edges):
        """Number of distinct nodes reachable from the given edges
        (the terminal node included)."""
        if isinstance(edges, int):
            edges = [edges]
        seen = {0}
        stack = [e >> 1 for e in edges]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.append(self._hi[node] >> 1)
            stack.append(self._lo[node] >> 1)
        return len(seen)

    def sat_count(self, f, nvars=None):
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to the number of manager variables and must not be
        smaller than it; extra variables double the count per variable.
        """
        if nvars is None:
            nvars = self.num_vars
        if nvars < self.num_vars:
            raise BddError("nvars must cover all manager variables")
        cache = {}

        def count(edge):
            # Returns model count over variables strictly below the edge's
            # top level, normalized afterwards.
            sign = edge & 1
            node = edge >> 1
            if node == 0:
                return 0 if sign else 1
            key = (node, sign)
            val = cache.get(key)
            if val is not None:
                return val
            var = self._var[node]
            hi = self._hi[node] ^ sign
            lo = self._lo[node] ^ sign
            level = self._level_of_var[var]
            c_hi = count(hi) * 2 ** (self._gap(level, hi) - 1)
            c_lo = count(lo) * 2 ** (self._gap(level, lo) - 1)
            val = c_hi + c_lo
            cache[key] = val
            return val

        top_gap = self._top_level(f)
        if top_gap > self.num_vars:
            top_gap = self.num_vars
        scale = 2 ** (nvars - self.num_vars)
        return count(f) * 2 ** top_gap * scale

    def _gap(self, level, edge):
        """Number of levels spanned between ``level`` and the edge's top."""
        target = self._top_level(edge)
        if target >= self.num_vars:
            target = self.num_vars
        return target - level

    def pick_one(self, f):
        """One satisfying assignment ``{var: bool}`` or ``None`` if f == 0.

        Unmentioned variables are don't-cares for the returned assignment.
        """
        if f == self.false:
            return None
        assignment = {}
        edge = f
        while not self.is_constant(edge):
            node = edge >> 1
            sign = edge & 1
            var = self._var[node]
            hi = self._hi[node] ^ sign
            lo = self._lo[node] ^ sign
            if hi != self.false:
                assignment[var] = True
                edge = hi
            else:
                assignment[var] = False
                edge = lo
        return assignment

    def pick_one_and(self, f, g):
        """One assignment satisfying ``f ∧ g``, or ``None`` if empty.

        The witness-extracting dual of :meth:`and_is_false`: the conjunction
        is never materialized, and the traversal shares (and reuses) the
        emptiness cache, so a preceding ``and_is_false(f, g) == False`` makes
        the witness search skip every branch already known to be empty.
        Unmentioned variables are don't-cares, as in :meth:`pick_one`.
        """
        cache = self._misc_cache
        assignment = {}

        def rec(a, b):
            if a == self.false or b == self.false:
                return False
            if a == self.true and b == self.true:
                return True
            if a == (b ^ 1):
                return False
            if a == b or a == self.true or b == self.true:
                # Nonempty, one-sided: any witness of the non-constant side
                # works.  Its support is disjoint from the variables decided
                # so far (they were cofactored away above this level).
                witness = self.pick_one(b if a == self.true else a)
                assignment.update(witness)
                return True
            aa, bb = (a, b) if a <= b else (b, a)
            key = ("AIF", aa, bb)
            if cache.get(key) is True:
                return False
            level = min(self._top_level(a), self._top_level(b))
            var = self._var_at_level[level]
            a1, a0 = self._fast_cofactors(a, var)
            b1, b0 = self._fast_cofactors(b, var)
            assignment[var] = True
            if rec(a1, b1):
                return True
            assignment[var] = False
            if rec(a0, b0):
                return True
            del assignment[var]
            cache[key] = True
            return False

        return assignment if rec(f, g) else None

    def cube(self, assignment):
        """Conjunction of literals from ``{var: bool}``."""
        result = self.true
        for var, value in sorted(
            assignment.items(), key=lambda item: -self._level_of_var[item[0]]
        ):
            lit = self.var_edge(var)
            if not value:
                lit ^= 1
            result = self.apply_and(lit, result)
        return result

    # ------------------------------------------------------------------
    # Roots, garbage collection, cache control
    # ------------------------------------------------------------------

    def register_root(self, edge):
        """Protect ``edge`` across garbage collection; returns a token."""
        token = self._next_root_token
        self._next_root_token += 1
        self._roots[token] = edge
        return token

    def update_root(self, token, edge):
        if token not in self._roots:
            raise BddError("unknown root token: {}".format(token))
        self._roots[token] = edge

    def release_root(self, token):
        self._roots.pop(token, None)

    def root_edges(self):
        return list(self._roots.values())

    def clear_caches(self):
        self._ite_cache.clear()
        self._quant_cache.clear()
        self._compose_cache.clear()
        self._misc_cache.clear()

    def garbage_collect(self, extra_roots=()):
        """Sweep nodes unreachable from registered roots + ``extra_roots``.

        Outstanding edges that were *not* protected become invalid.  Returns
        the number of nodes freed.
        """
        live = {0}
        stack = [e >> 1 for e in self.root_edges()]
        stack.extend(e >> 1 for e in extra_roots)
        while stack:
            node = stack.pop()
            if node in live:
                continue
            live.add(node)
            stack.append(self._hi[node] >> 1)
            stack.append(self._lo[node] >> 1)
        freed = 0
        for var, table in enumerate(self._unique):
            dead = [key for key, node in table.items() if node not in live]
            for key in dead:
                idx = table.pop(key)
                self._free.append(idx)
                self._var[idx] = -1
                freed += 1
        self.live_nodes -= freed
        self.clear_caches()
        return freed

    # ------------------------------------------------------------------
    # Internal helpers shared with the reorderer
    # ------------------------------------------------------------------

    def _node_fields(self, node):
        return self._var[node], self._hi[node], self._lo[node]

    def check_invariants(self):
        """Validate canonical-form invariants (test/debug helper)."""
        for var, table in enumerate(self._unique):
            for (hi, lo), node in table.items():
                if self._var[node] != var:
                    raise BddError("unique table var mismatch at node %d" % node)
                if self._hi[node] != hi or self._lo[node] != lo:
                    raise BddError("unique table child mismatch at node %d" % node)
                if hi & 1:
                    raise BddError("complemented then-edge at node %d" % node)
                if hi == lo:
                    raise BddError("redundant node %d" % node)
                level = self._level_of_var[var]
                for child in (hi, lo):
                    if self._top_level(child) <= level:
                        raise BddError("order violation at node %d" % node)
        return True
