"""Binary decision diagrams with complement edges and sifting reordering.

The package exposes:

* :class:`BddManager` — the ROBDD manager (edges are plain integers).
* :func:`sift`, :func:`maybe_sift`, :func:`swap_adjacent` — dynamic variable
  reordering.
* :func:`to_dot` — Graphviz export for debugging and documentation.
"""

from .manager import BddManager
from .reorder import maybe_sift, sift, swap_adjacent
from .dot import to_dot
from .exprs import parse, to_sop
from .transfer import transfer

__all__ = ["BddManager", "maybe_sift", "parse", "sift", "swap_adjacent",
           "to_dot", "to_sop", "transfer"]
