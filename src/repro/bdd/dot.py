"""Graphviz export of BDD forests (debugging / documentation aid)."""


def to_dot(manager, edges, names=None):
    """Render the forest rooted at ``edges`` as a Graphviz ``dot`` string.

    Complemented edges are drawn dashed with a dot arrowhead, following the
    usual convention.  ``names`` optionally labels the roots.
    """
    if isinstance(edges, int):
        edges = [edges]
    if names is None:
        names = ["f{}".format(i) for i in range(len(edges))]
    lines = [
        "digraph bdd {",
        "  rankdir=TB;",
        '  node [shape=circle, fontsize=10];',
        '  one [shape=box, label="1"];',
    ]
    seen = set()
    stack = []
    for edge in edges:
        stack.append(edge >> 1)
    while stack:
        node = stack.pop()
        if node == 0 or node in seen:
            continue
        seen.add(node)
        var = manager.var_of(node << 1)
        lines.append(
            '  n{} [label="{}"];'.format(node, manager.var_name(var))
        )
        for child, style in ((manager._hi[node], "solid"), (manager._lo[node], "dashed")):
            target = "one" if child >> 1 == 0 else "n{}".format(child >> 1)
            arrow = ", arrowhead=dot" if child & 1 else ""
            lines.append(
                '  n{} -> {} [style={}{}];'.format(node, target, style, arrow)
            )
            stack.append(child >> 1)
    for name, edge in zip(names, edges):
        root_id = "r_{}".format(name)
        lines.append('  {} [shape=plaintext, label="{}"];'.format(root_id, name))
        target = "one" if edge >> 1 == 0 else "n{}".format(edge >> 1)
        arrow = ", arrowhead=dot" if edge & 1 else ""
        lines.append('  {} -> {} [style=solid{}];'.format(root_id, target, arrow))
    lines.append("}")
    return "\n".join(lines)
