"""Boolean expression front end for the BDD manager.

A small recursive-descent parser so tests, examples and interactive use can
write ``parse(mgr, "a & (b | !c) ^ d")`` instead of chaining apply calls,
plus the reverse direction: a sum-of-products expression string for any
edge (via cube enumeration — intended for small functions).

Grammar (C-style precedence, lowest first)::

    expr   := xor
    xor    := or ('^' or)*
    or     := and ('|' and)*
    and    := unary ('&' unary)*
    unary  := '!' unary | atom
    atom   := '0' | '1' | identifier | '(' expr ')'

Unknown identifiers create fresh variables when ``auto_vars`` is set.
"""

import re

from ..errors import BddError

_TOKEN_RE = re.compile(r"\s*(=>|<=>|[()&|^!01]|[A-Za-z_][A-Za-z0-9_.\[\]]*)")


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise BddError(
                "cannot tokenize expression at: {!r}".format(text[position:])
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, manager, tokens, auto_vars):
        self.mgr = manager
        self.tokens = tokens
        self.pos = 0
        self.auto_vars = auto_vars

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self):
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, token):
        got = self.take()
        if got != token:
            raise BddError("expected {!r}, got {!r}".format(token, got))

    def parse(self):
        edge = self.expr()
        if self.peek() is not None:
            raise BddError("trailing input: {!r}".format(self.peek()))
        return edge

    def expr(self):
        # Implication / equivalence (right associative, lowest precedence).
        left = self.xor()
        token = self.peek()
        if token == "=>":
            self.take()
            right = self.expr()
            return self.mgr.apply_implies(left, right)
        if token == "<=>":
            self.take()
            right = self.expr()
            return self.mgr.apply_xnor(left, right)
        return left

    def xor(self):
        edge = self.or_()
        while self.peek() == "^":
            self.take()
            edge = self.mgr.apply_xor(edge, self.or_())
        return edge

    def or_(self):
        edge = self.and_()
        while self.peek() == "|":
            self.take()
            edge = self.mgr.apply_or(edge, self.and_())
        return edge

    def and_(self):
        edge = self.unary()
        while self.peek() == "&":
            self.take()
            edge = self.mgr.apply_and(edge, self.unary())
        return edge

    def unary(self):
        if self.peek() == "!":
            self.take()
            return self.mgr.apply_not(self.unary())
        return self.atom()

    def atom(self):
        token = self.take()
        if token == "0":
            return self.mgr.false
        if token == "1":
            return self.mgr.true
        if token == "(":
            edge = self.expr()
            self.expect(")")
            return edge
        if token is None:
            raise BddError("unexpected end of expression")
        if not re.match(r"^[A-Za-z_]", token):
            raise BddError("unexpected token {!r}".format(token))
        try:
            var = self.mgr.var_by_name(token)
        except BddError:
            if not self.auto_vars:
                raise
            return self.mgr.add_var(token)
        return self.mgr.var_edge(var)


def parse(manager, text, auto_vars=True):
    """Parse a Boolean expression into a BDD edge."""
    return _Parser(manager, _tokenize(text), auto_vars).parse()


def to_sop(manager, edge, max_cubes=256):
    """A sum-of-products string for ``edge`` (small functions only).

    Enumerates the BDD's one-paths; raises when more than ``max_cubes``
    cubes would be printed.
    """
    if edge == manager.true:
        return "1"
    if edge == manager.false:
        return "0"
    cubes = []

    def walk(e, path):
        if len(cubes) > max_cubes:
            raise BddError("function has too many cubes for to_sop")
        if e == manager.true:
            cubes.append(list(path))
            return
        if e == manager.false:
            return
        var = manager.var_of(e)
        hi, lo = manager.cofactors(e, var)
        name = manager.var_name(var)
        path.append(name)
        walk(hi, path)
        path.pop()
        path.append("!" + name)
        walk(lo, path)
        path.pop()

    walk(edge, [])
    terms = [" & ".join(cube) if cube else "1" for cube in cubes]
    return " | ".join(terms)
