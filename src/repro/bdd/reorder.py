"""Dynamic variable reordering by sifting (Rudell's algorithm).

The paper's BDD package uses dynamic variable ordering to keep the
correspondence-condition and next-state BDDs small; this module provides the
same capability for :class:`~repro.bdd.manager.BddManager`.

The central primitive is an *in-place* swap of two adjacent levels: nodes are
mutated rather than replaced, so every externally held edge stays valid across
reordering.  Callers must register all edges they hold with
:meth:`BddManager.register_root` before sifting — unregistered nodes are
treated as garbage and may be collected.

Correctness of the in-place swap with complement edges rests on three
invariants (see the manager's canonical form):

* the positive cofactor of a node's *then* child is always a regular edge, so
  the rebuilt then child is regular;
* a rebuilt node always keeps at least one child at the swapped-down variable,
  while pre-existing nodes of the swapped-up variable never do, so unique
  table insertion cannot collide;
* two distinct nodes denote distinct functions before the swap and functions
  are preserved, so two rebuilt nodes cannot collide either.
"""


def _compute_refcounts(manager):
    """Reference counts from unique-table parents and registered roots."""
    rc = [0] * len(manager._var)
    for table in manager._unique:
        for (hi, lo) in table:
            rc[hi >> 1] += 1
            rc[lo >> 1] += 1
    for edge in manager.root_edges():
        rc[edge >> 1] += 1
    return rc


class _Sifter:
    """Holds the mutable state of one sifting pass."""

    def __init__(self, manager):
        self.m = manager
        manager.clear_caches()
        manager.garbage_collect()
        self.rc = _compute_refcounts(manager)
        self.deferred_free = []

    # -- refcounted node management ------------------------------------

    def _mk_rc(self, var, hi, lo):
        """Like ``BddManager._mk`` but maintains reference counts.

        The returned edge is *not* referenced on behalf of the caller; the
        caller increments it when storing it into a node.  A freshly created
        node does reference its own children.
        """
        m = self.m
        if hi == lo:
            return hi
        if hi & 1:
            return self._mk_rc(var, hi ^ 1, lo ^ 1) ^ 1
        table = m._unique[var]
        key = (hi, lo)
        node = table.get(key)
        if node is not None:
            return node << 1
        idx = len(m._var)
        m._var.append(var)
        m._hi.append(hi)
        m._lo.append(lo)
        self.rc.append(0)
        table[key] = idx
        self._inc(hi)
        self._inc(lo)
        m.live_nodes += 1
        m.created_nodes += 1
        if m.live_nodes > m.peak_live_nodes:
            m.peak_live_nodes = m.live_nodes
        return idx << 1

    def _inc(self, edge):
        node = edge >> 1
        if node:
            self.rc[node] += 1

    def _dec(self, edge):
        node = edge >> 1
        if not node:
            return
        self.rc[node] -= 1
        if self.rc[node] == 0:
            m = self.m
            var = m._var[node]
            hi = m._hi[node]
            lo = m._lo[node]
            m._unique[var].pop((hi, lo), None)
            m._var[node] = -1
            m.live_nodes -= 1
            self.deferred_free.append(node)
            self._dec(hi)
            self._dec(lo)

    # -- the adjacent-level swap ---------------------------------------

    def swap(self, level):
        """Swap the variables at ``level`` and ``level + 1`` in place."""
        m = self.m
        up = m._var_at_level[level]
        down = m._var_at_level[level + 1]
        table_up = m._unique[up]
        var_arr, hi_arr, lo_arr = m._var, m._hi, m._lo
        rebuild = []
        for (t, e), node in list(table_up.items()):
            t_node = t >> 1
            e_node = e >> 1
            if (t_node and var_arr[t_node] == down) or (
                e_node and var_arr[e_node] == down
            ):
                rebuild.append(node)
                del table_up[(t, e)]
        m._var_at_level[level] = down
        m._var_at_level[level + 1] = up
        m._level_of_var[up] = level + 1
        m._level_of_var[down] = level
        table_down = m._unique[down]
        for node in rebuild:
            t = hi_arr[node]
            e = lo_arr[node]
            t_node = t >> 1
            if t_node and var_arr[t_node] == down:
                t1, t0 = hi_arr[t_node], lo_arr[t_node]
            else:
                t1 = t0 = t
            e_node = e >> 1
            if e_node and var_arr[e_node] == down:
                sign = e & 1
                e1, e0 = hi_arr[e_node] ^ sign, lo_arr[e_node] ^ sign
            else:
                e1 = e0 = e
            new_hi = self._mk_rc(up, t1, e1)
            new_lo = self._mk_rc(up, t0, e0)
            # Reference the new children before dropping the old ones, so a
            # shared subgraph cannot be collected in between.
            self._inc(new_hi)
            self._inc(new_lo)
            self._dec(t)
            self._dec(e)
            var_arr[node] = down
            hi_arr[node] = new_hi
            lo_arr[node] = new_lo
            table_down[(new_hi, new_lo)] = node

    def finish(self):
        self.m._free.extend(self.deferred_free)
        self.deferred_free = []
        self.m.clear_caches()


def swap_adjacent(manager, level):
    """Swap two adjacent levels in place (exposed for tests)."""
    sifter = _Sifter(manager)
    sifter.swap(level)
    sifter.finish()


def sift(manager, max_growth=1.2, max_vars=None):
    """Run one sifting pass; returns (nodes_before, nodes_after).

    Each variable (largest unique subtable first) is moved through the whole
    order by adjacent swaps and parked at the position that minimized the
    total number of live nodes.  Movement in one direction is abandoned early
    when the size exceeds ``max_growth`` times the best size seen.
    """
    sifter = _Sifter(manager)
    m = manager
    before = m.live_nodes
    order = sorted(range(m.num_vars), key=lambda v: -len(m._unique[v]))
    if max_vars is not None:
        order = order[:max_vars]
    for var in order:
        if len(m._unique[var]) <= 1:
            continue
        best_size = m.live_nodes
        best_pos = m._level_of_var[var]
        start = best_pos
        bottom = m.num_vars - 1
        # Phase 1: sift towards the nearer end first.
        go_down_first = (bottom - start) <= start
        if go_down_first:
            phases = [(+1, bottom), (-1, 0)]
        else:
            phases = [(-1, 0), (+1, bottom)]
        for direction, limit in phases:
            pos = m._level_of_var[var]
            while pos != limit:
                if direction > 0:
                    sifter.swap(pos)
                    pos += 1
                else:
                    sifter.swap(pos - 1)
                    pos -= 1
                size = m.live_nodes
                if size < best_size:
                    best_size = size
                    best_pos = pos
                elif size > best_size * max_growth:
                    break
        # Phase 2: park at the best position seen.
        pos = m._level_of_var[var]
        while pos < best_pos:
            sifter.swap(pos)
            pos += 1
        while pos > best_pos:
            sifter.swap(pos - 1)
            pos -= 1
    sifter.finish()
    return before, m.live_nodes


def maybe_sift(manager, threshold, max_growth=1.2):
    """Sift when the live node count exceeds ``threshold``.

    Returns True when a reordering pass ran.  Doubles as the paper's
    "dynamic variable ordering is used to control the BDD variable ordering":
    call it at safe points (all held edges registered as roots).
    """
    if manager.live_nodes <= threshold:
        return False
    sift(manager, max_growth=max_growth)
    return True
