"""Combinational equivalence checking (the paper's base verification engine).

Two interchangeable backends:

* :func:`check_comb_equivalence_bdd` — canonical-form comparison via BDDs.
* :func:`check_comb_equivalence_sat` — Tseitin miter + CDCL SAT.

Both report a :class:`CecResult` with a counterexample on failure.
"""

from .result import CecResult
from .bddcec import check_comb_equivalence_bdd
from .satcec import check_comb_equivalence_sat
from .fraigcec import check_comb_equivalence_fraig

__all__ = [
    "CecResult",
    "check_comb_equivalence_bdd",
    "check_comb_equivalence_fraig",
    "check_comb_equivalence_sat",
    "check_comb_equivalence",
]


def check_comb_equivalence(spec, impl, backend="bdd", **kwargs):
    """Dispatch to a CEC backend by name: 'bdd', 'sat' or 'fraig'."""
    if backend == "bdd":
        return check_comb_equivalence_bdd(spec, impl, **kwargs)
    if backend == "sat":
        return check_comb_equivalence_sat(spec, impl, **kwargs)
    if backend == "fraig":
        return check_comb_equivalence_fraig(spec, impl, **kwargs)
    raise ValueError("unknown CEC backend: {!r}".format(backend))
