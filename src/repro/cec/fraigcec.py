"""Fraig-based combinational equivalence checking.

Builds a single AIG containing both circuits over shared inputs plus a
miter output, then runs SAT sweeping: if the miter literal folds to
constant FALSE the circuits are equivalent.  This mirrors how modern
CEC engines actually work and doubles as an integration test between the
AIG, simulation and SAT substrates.
"""

from ..errors import VerificationError
from ..netlist.aig import Aig, FALSE, _gate_to_aig, fraig, lit_neg
from .result import CecResult


def check_comb_equivalence_fraig(spec, impl, match_inputs="name",
                                 match_outputs="order", seed=2024):
    """Check two combinational circuits by AIG sweeping."""
    if spec.num_registers or impl.num_registers:
        raise VerificationError(
            "combinational check on sequential circuits; use the SEC engine"
        )
    if len(spec.inputs) != len(impl.inputs):
        raise VerificationError("input count mismatch")
    if len(spec.outputs) != len(impl.outputs):
        raise VerificationError("output count mismatch")
    if match_inputs == "name" and set(spec.inputs) != set(impl.inputs):
        raise VerificationError("input names differ; use match_inputs='order'")

    aig = Aig()
    shared = {net: aig.add_input(name=net) for net in spec.inputs}
    if match_inputs == "name":
        impl_inputs = {net: shared[net] for net in impl.inputs}
    else:
        impl_inputs = {
            i_net: shared[s_net]
            for i_net, s_net in zip(impl.inputs, spec.inputs)
        }

    def embed(circuit, input_lits):
        values = dict(input_lits)
        for name in circuit.topo_order():
            gate = circuit.gates[name]
            values[name] = _gate_to_aig(
                aig, gate.gtype, [values[f] for f in gate.fanins]
            )
        return values

    spec_map = embed(spec, shared)
    impl_map = embed(impl, impl_inputs)
    if match_outputs == "name":
        pairs = [(net, net) for net in spec.outputs]
    else:
        pairs = list(zip(spec.outputs, impl.outputs))
    diff_lits = [
        aig.xor2(spec_map[a], impl_map[b]) for a, b in pairs
    ]
    miter = lit_neg(aig.and_many([lit_neg(d) for d in diff_lits]))
    aig.add_output(miter)
    ands_before = aig.num_ands
    reduced, _ = fraig(aig, seed=seed)
    if reduced.outputs[0] == FALSE:
        return CecResult(True, stats={
            "ands_before": ands_before,
            "ands_after": reduced.num_ands,
        })
    # Not folded to constant: extract a concrete distinguishing input by
    # solving the miter directly.
    from ..sat.solver import Solver
    from ..netlist.aig import lit_sign, lit_var

    solver = Solver()
    sat_var = {0: solver.new_var()}
    solver.add_clause([-sat_var[0]])
    for var in aig.inputs:
        sat_var[var] = solver.new_var()
    for var in aig.topo_vars():
        rhs0, rhs1 = aig.ands[var]
        sat_var[var] = solver.new_var()
        y = sat_var[var]

        def sl(lit):
            v = sat_var[lit_var(lit)]
            return -v if lit_sign(lit) else v

        solver.add_clause([-y, sl(rhs0)])
        solver.add_clause([-y, sl(rhs1)])
        solver.add_clause([y, -sl(rhs0), -sl(rhs1)])
    miter_var = sat_var[lit_var(miter)]
    assumption = -miter_var if miter & 1 else miter_var
    if not solver.solve(assumptions=[assumption]):
        # Sweeping was simply incomplete; SAT settles it: equivalent.
        return CecResult(True, stats={"settled_by": "direct_sat"})
    model = solver.model()
    cex = {
        net: model.get(sat_var[shared_var >> 1], False)
        for net, shared_var in shared.items()
    }
    failing = None
    for (a, b), diff in zip(pairs, diff_lits):
        # Identify a failing pair by evaluating the diff literal.
        env = {var: int(model.get(sat_var[var], False))
               for var in aig.inputs}
        _, lit_value = aig.simulate(env, width=1)
        if lit_value(diff):
            failing = (a, b)
            break
    return CecResult(False, counterexample=cex, failing_output=failing)
