"""Result record shared by the CEC backends."""


class CecResult:
    """Outcome of a combinational equivalence check.

    ``equivalent`` is the verdict; on inequivalence, ``counterexample`` maps
    input nets to booleans and ``failing_output`` names the first output pair
    that differs under it.
    """

    def __init__(self, equivalent, counterexample=None, failing_output=None,
                 stats=None):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.failing_output = failing_output
        self.stats = stats or {}

    def __bool__(self):
        return self.equivalent

    def __repr__(self):
        if self.equivalent:
            return "CecResult(equivalent)"
        return "CecResult(INEQUIVALENT at {!r}, cex={})".format(
            self.failing_output, self.counterexample
        )
