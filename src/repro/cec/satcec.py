"""SAT-based combinational equivalence checking (Tseitin miter + CDCL)."""

from ..errors import VerificationError
from ..sat import Solver
from ..sat.tseitin import TseitinEncoder
from .result import CecResult


def check_comb_equivalence_sat(spec, impl, match_inputs="name",
                               match_outputs="order", conflict_budget=None):
    """Check two combinational circuits for equivalence with the SAT solver.

    Each output pair becomes one incremental query under a selector
    assumption, so the counterexample identifies the failing pair.
    """
    if spec.num_registers or impl.num_registers:
        raise VerificationError(
            "combinational check on sequential circuits; use the SEC engine"
        )
    if len(spec.inputs) != len(impl.inputs):
        raise VerificationError("input count mismatch")
    if len(spec.outputs) != len(impl.outputs):
        raise VerificationError("output count mismatch")
    if match_inputs == "name" and set(spec.inputs) != set(impl.inputs):
        raise VerificationError("input names differ; use match_inputs='order'")

    enc = TseitinEncoder()
    spec_vars = enc.encode_frame(spec)
    if match_inputs == "name":
        leaves = {net: spec_vars[net] for net in impl.inputs}
    else:
        leaves = {
            i_net: spec_vars[s_net]
            for i_net, s_net in zip(impl.inputs, spec.inputs)
        }
    impl_vars = enc.encode_frame(impl, leaves=leaves)
    solver = Solver()
    solver.add_cnf(enc.cnf)
    if match_outputs == "name":
        pairs = [(net, net) for net in spec.outputs]
    else:
        pairs = list(zip(spec.outputs, impl.outputs))
    for s_out, i_out in pairs:
        # Ask for s_out != i_out via two polarity-split queries.
        for pos, neg in (
            (spec_vars[s_out], impl_vars[i_out]),
            (impl_vars[i_out], spec_vars[s_out]),
        ):
            verdict = solver.solve(
                assumptions=[pos, -neg], conflict_budget=conflict_budget
            )
            if verdict is None:
                raise VerificationError("SAT conflict budget exhausted")
            if verdict:
                model = solver.model()
                cex = {
                    net: model.get(spec_vars[net], False)
                    for net in spec.inputs
                }
                return CecResult(
                    False,
                    counterexample=cex,
                    failing_output=(s_out, i_out),
                    stats=_stats(solver),
                )
    return CecResult(True, stats=_stats(solver))


def _stats(solver):
    return {
        "conflicts": solver.conflicts,
        "decisions": solver.decisions,
        "propagations": solver.propagations,
    }
