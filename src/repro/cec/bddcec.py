"""BDD-based combinational equivalence checking."""

from ..bdd import BddManager
from ..errors import VerificationError
from ..netlist.bddnet import build_bdds
from ..netlist.cones import static_variable_order
from .result import CecResult


def check_comb_equivalence_bdd(spec, impl, match_inputs="name",
                               match_outputs="order", node_limit=None):
    """Check two combinational circuits for equivalence with BDDs.

    Inputs are matched by name (default) or positionally; outputs are matched
    positionally by default (names often diverge after synthesis).
    """
    _check_interfaces(spec, impl, match_inputs)
    manager = BddManager(node_limit=node_limit)
    order = static_variable_order(spec)
    leaves = {net: manager.add_var(net) for net in order}
    if match_inputs == "name":
        impl_leaves = {net: leaves[net] for net in impl.inputs}
    else:
        impl_leaves = {
            i_net: leaves[s_net]
            for i_net, s_net in zip(impl.inputs, spec.inputs)
        }
    spec_values = build_bdds(spec, manager, leaves, nets=spec.outputs)
    impl_values = build_bdds(impl, manager, impl_leaves, nets=impl.outputs)
    if match_outputs == "name":
        pairs = [(net, net) for net in spec.outputs]
    else:
        pairs = list(zip(spec.outputs, impl.outputs))
    input_ids = {net: manager.var_of(leaves[net]) for net in spec.inputs}
    for s_out, i_out in pairs:
        f = spec_values[s_out]
        g = impl_values[i_out]
        if f != g:
            diff = manager.apply_xor(f, g)
            assignment = manager.pick_one(diff)
            cex = {
                net: assignment.get(var, False)
                for net, var in input_ids.items()
            }
            return CecResult(
                False,
                counterexample=cex,
                failing_output=(s_out, i_out),
                stats={"peak_nodes": manager.peak_live_nodes},
            )
    return CecResult(True, stats={"peak_nodes": manager.peak_live_nodes})


def _check_interfaces(spec, impl, match_inputs):
    if spec.num_registers or impl.num_registers:
        raise VerificationError(
            "combinational check on sequential circuits; use the SEC engine"
        )
    if len(spec.inputs) != len(impl.inputs):
        raise VerificationError("input count mismatch")
    if len(spec.outputs) != len(impl.outputs):
        raise VerificationError("output count mismatch")
    if match_inputs == "name" and set(spec.inputs) != set(impl.inputs):
        raise VerificationError("input names differ; use match_inputs='order'")
