"""Persistent job store for the verification daemon.

One JSON file per job under ``<root>/jobs/``, written atomically
(temp file + ``os.replace``), so the queue survives a daemon crash or
restart: :meth:`JobStore.recover` re-queues jobs that were *running* when
the process died and leaves *queued* jobs queued, preserving submission
order.  Terminal records (done / cancelled / error) are kept for
``GET /v1/jobs/{id}`` until pruned.

The store holds the submission *payload* (a named suite entry or the two
circuits as ``.bench`` text), not live :class:`~repro.netlist.Circuit`
objects — rebuilding the :class:`~repro.service.job.JobSpec` is the
daemon's task (see :func:`repro.server.app.build_jobspec`), which keeps
records JSON-pure and restart-safe.
"""

import json
import os
import tempfile
import time

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
ERROR = "error"

#: States a job can never leave.
TERMINAL_STATES = (DONE, CANCELLED, ERROR)


class JobRecord:
    """One submitted job: payload, lifecycle state, outcome."""

    def __init__(self, job_id, payload, state=QUEUED, result=None,
                 error=None, submitted_at=None, started_at=None,
                 finished_at=None, requeues=0, client=None, cached=False,
                 meta=None):
        self.id = job_id
        self.payload = dict(payload)
        self.state = state
        self.result = result  # JobResult.as_dict() once terminal
        self.error = error
        self.submitted_at = (time.time() if submitted_at is None
                             else submitted_at)
        self.started_at = started_at
        self.finished_at = finished_at
        self.requeues = requeues
        self.client = client
        self.cached = cached
        # Owner-side bookkeeping that is not part of the payload: the
        # fleet coordinator keeps its node assignment here ({"node": ...,
        # "remote_id": ...}), persisted so failover survives restarts.
        self.meta = dict(meta or {})

    @property
    def name(self):
        return self.payload.get("name") or self.id

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def as_dict(self):
        return {
            "id": self.id,
            "payload": self.payload,
            "state": self.state,
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "requeues": self.requeues,
            "client": self.client,
            "cached": self.cached,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["id"], data.get("payload") or {},
            state=data.get("state", QUEUED),
            result=data.get("result"),
            error=data.get("error"),
            submitted_at=data.get("submitted_at"),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            requeues=data.get("requeues", 0),
            client=data.get("client"),
            cached=data.get("cached", False),
            meta=data.get("meta"),
        )

    def public_dict(self):
        """The ``GET /v1/jobs/{id}`` response body."""
        data = self.as_dict()
        # The bench text can be large; the submitter already has it.
        payload = dict(data["payload"])
        for key in ("spec_bench", "impl_bench"):
            if key in payload:
                payload[key] = "<{} chars>".format(len(payload[key]))
        data["payload"] = payload
        data["name"] = self.name
        return data

    def __repr__(self):
        return "JobRecord({!r}, state={}, name={!r})".format(
            self.id, self.state, self.name)


class JobStore:
    """Disk-backed map of job id → :class:`JobRecord` with FIFO queue view."""

    def __init__(self, root):
        self.root = str(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._records = {}
        self._counter = 0
        self._load()

    # -- loading / recovery -------------------------------------------------

    def _load(self):
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as fh:
                    record = JobRecord.from_dict(json.load(fh))
            except (OSError, ValueError, KeyError):
                continue  # half-written/corrupt entry: skip, don't crash
            self._records[record.id] = record
            self._counter = max(self._counter, _sequence_of(record.id))

    def recover(self):
        """Post-restart fixup; returns the re-queued (was-running) records.

        Jobs that were *running* when the previous daemon died go back to
        the queue (their worker is gone); *queued* jobs simply remain
        queued.  Callers emit the ``job_requeued`` events.
        """
        requeued = []
        for record in self._records.values():
            if record.state == RUNNING:
                record.state = QUEUED
                record.started_at = None
                record.requeues += 1
                self.save(record)
                requeued.append(record)
        return requeued

    # -- CRUD ---------------------------------------------------------------

    def new_id(self):
        self._counter += 1
        return "j{:08d}-{}".format(self._counter,
                                   os.urandom(3).hex())

    def create(self, payload, client=None):
        record = JobRecord(self.new_id(), payload, client=client)
        self._records[record.id] = record
        self.save(record)
        return record

    def get(self, job_id):
        return self._records.get(job_id)

    def save(self, record):
        path = os.path.join(self.jobs_dir, record.id + ".json")
        fd, tmp = tempfile.mkstemp(dir=self.jobs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record.as_dict(), fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, job_id):
        self._records.pop(job_id, None)
        try:
            os.unlink(os.path.join(self.jobs_dir, job_id + ".json"))
        except OSError:
            pass

    # -- views --------------------------------------------------------------

    def all(self):
        return sorted(self._records.values(),
                      key=lambda r: (r.submitted_at, r.id))

    def queued(self):
        """Queued records in FIFO (submission) order."""
        return [r for r in self.all() if r.state == QUEUED]

    def counts(self):
        counts = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, CANCELLED, ERROR)}
        for record in self._records.values():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def __len__(self):
        return len(self._records)


def _sequence_of(job_id):
    """The numeric sequence inside ``jNNNNNNNN-xxxxxx`` ids (0 if foreign)."""
    try:
        return int(job_id.split("-", 1)[0].lstrip("j"))
    except (ValueError, AttributeError):
        return 0
