"""Per-client token-bucket rate limiting for the daemon.

One bucket per client key (the daemon keys by peer IP): ``burst`` tokens
capacity, refilled at ``rate`` tokens/second.  A request costs one token;
an empty bucket yields the number of seconds until a token is available —
the daemon turns that into ``429`` + ``Retry-After``.

Buckets for idle clients are garbage-collected so a daemon scanning many
short-lived clients does not accumulate state without bound.
"""

import time


class TokenBucket:
    """Classic token bucket with lazy refill."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate, burst, now):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def take(self, now):
        """Take one token; returns 0.0 on success, else seconds to wait."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Maps client keys to :class:`TokenBucket`\\ s.

    ``rate=None`` disables limiting entirely.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, rate=20.0, burst=40, clock=time.monotonic,
                 max_idle=300.0):
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.max_idle = max_idle
        self.rejected = 0
        self._buckets = {}

    def check(self, key):
        """0.0 when ``key`` may proceed, else the suggested retry delay."""
        if self.rate is None:
            return 0.0
        now = self.clock()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = TokenBucket(
                self.rate, self.burst, now)
        wait = bucket.take(now)
        if wait > 0.0:
            self.rejected += 1
        if len(self._buckets) > 1024:
            self._gc(now)
        return wait

    def _gc(self, now):
        stale = [key for key, bucket in self._buckets.items()
                 if now - bucket.updated > self.max_idle]
        for key in stale:
            del self._buckets[key]
