"""The networked verification daemon (``repro-sec serve``).

A stdlib-only asyncio HTTP server multiplexing the existing service stack
— :class:`~repro.service.scheduler.WorkerPool` workers,
:class:`~repro.service.cache.ResultCache` and the
:class:`~repro.service.events.EventBus` — behind a JSON API:

========================  =====================================================
``POST /v1/jobs``         submit one job (or ``{"jobs": [...]}``): a named
                          suite entry or a serialized circuit pair; 202 + id
``GET /v1/jobs``          list job summaries
``GET /v1/jobs/{id}``     state + ``SecResult.as_dict`` once terminal
``DELETE /v1/jobs/{id}``  cancel (SIGTERM → cooperative cancel → SIGKILL)
``GET /v1/jobs/{id}/events``  Server-Sent Events: the job's JSONL progress
                          stream, replayed from the start then live
``GET /v1/healthz``       liveness (never rate-limited)
``GET /v1/stats``         queue depth, worker utilization, cache hit rate,
                          aggregated solver stats
========================  =====================================================

Durability: every job is a JSON record in the :class:`~repro.server.store.
JobStore`; on restart queued jobs resume and jobs that were running
re-enqueue (:meth:`JobStore.recover`).  Backpressure: submissions past
``queue_limit`` get ``429`` + ``Retry-After``, as do clients that exhaust
their per-IP token bucket.  A stuck SSE consumer is disconnected by the
write timeout instead of wedging the event pump.
"""

import asyncio
import json
import math
import os
import signal
import time

from .. import METHODS
from ..netlist import bench
from ..service.cache import ResultCache
from ..service.events import (
    CLIENT_THROTTLED,
    EventBus,
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_FINISHED,
    JOB_REQUEUED,
    JOB_SUBMITTED,
    SERVER_STARTED,
    SERVER_STOPPED,
)
from ..service.job import JobResult, JobSpec
from ..service.scheduler import WorkerPool
from . import store as store_mod
from .httpd import (
    HttpError,
    SseWriter,
    error_response,
    json_response,
    read_request,
)
from .ratelimit import RateLimiter


def validate_payload(payload):
    """Normalize one submission payload; raises :class:`HttpError` (400)."""
    if not isinstance(payload, dict):
        raise HttpError(400, "job payload must be a JSON object")
    method = payload.get("method", "van_eijk")
    if method not in METHODS:
        raise HttpError(400, "unknown method {!r}; choose one of {}".format(
            method, list(METHODS)))
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise HttpError(400, "options must be a JSON object")
    if options.get("preprocess"):
        from ..sweep import PREPROCESS_PASSES

        if options["preprocess"] not in PREPROCESS_PASSES:
            raise HttpError(400, "unknown preprocess pass {!r}; choose one "
                                 "of {}".format(options["preprocess"],
                                                list(PREPROCESS_PASSES)))
    has_suite = bool(payload.get("suite"))
    has_pair = "spec_bench" in payload and "impl_bench" in payload
    if has_suite == has_pair:
        raise HttpError(
            400, "submit either a 'suite' row name or both "
                 "'spec_bench' and 'impl_bench' circuit texts")
    if has_suite:
        from ..circuits import row_by_name

        try:
            row_by_name(payload["suite"])
        except KeyError:
            raise HttpError(400, "unknown suite row {!r}".format(
                payload["suite"]))
    normalized = {
        "name": payload.get("name") or payload.get("suite") or "job",
        "method": method,
        "options": options,
        "match_inputs": payload.get("match_inputs", "name"),
        "match_outputs": payload.get("match_outputs", "order"),
        "tags": payload.get("tags") or {},
    }
    if has_suite:
        normalized["suite"] = payload["suite"]
        normalized["optimize_level"] = int(payload.get("optimize_level", 2))
    else:
        for key in ("spec_bench", "impl_bench"):
            if not isinstance(payload[key], str):
                raise HttpError(400, "{} must be .bench text".format(key))
            normalized[key] = payload[key]
    try:
        json.dumps(normalized)
    except (TypeError, ValueError):
        raise HttpError(400, "job payload is not JSON-serializable")
    return normalized


def build_jobspec(record):
    """Rebuild the schedulable :class:`JobSpec` from a stored record.

    The spec's *name* is the record id — that is the key every event in
    the stream carries, so SSE consumers and the daemon route on it
    unambiguously even when display names collide.
    """
    payload = record.payload
    if payload.get("suite"):
        from ..circuits import row_by_name

        row = row_by_name(payload["suite"])
        spec, impl = row.pair(optimize_level=payload.get(
            "optimize_level", 2))
    else:
        spec = bench.loads(payload["spec_bench"],
                           name=payload.get("name", "spec"))
        impl = bench.loads(payload["impl_bench"],
                           name=payload.get("name", "impl") + "_impl")
    job = JobSpec(record.id, spec, impl,
                  method=payload.get("method", "van_eijk"),
                  options=payload.get("options") or {},
                  match_inputs=payload.get("match_inputs", "name"),
                  match_outputs=payload.get("match_outputs", "order"),
                  tags=payload.get("tags") or {})
    if job.options.get("preprocess"):
        # Reduce *before* the cache key is first computed: a preprocessed
        # submission and a direct submission of the identical reduced pair
        # share one cache entry, and the worker never re-reduces.
        from ..sweep import preprocess_jobspec

        job, _ = preprocess_jobspec(job)
    return job


class VerifyServer:
    """The daemon: HTTP front end + job pump over a :class:`WorkerPool`."""

    def __init__(self, host="127.0.0.1", port=0, workers=2, store_dir=None,
                 cache_dir=None, cache_max_entries=None, cache_max_bytes=None,
                 queue_limit=64, job_time_limit=None, retries=1, grace=2.0,
                 rate=20.0, burst=40, request_timeout=10.0,
                 sse_heartbeat=10.0, sse_write_timeout=10.0,
                 poll_interval=0.02, history_limit=2000, bus=None,
                 ready_file=None, refine_workers=0, node_id=None,
                 join_url=None, advertise_host=None, heartbeat_interval=2.0,
                 trusted_proxies=(), remote_cache_url=None):
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.retries = retries
        # Fleet membership (repro.fleet): a node id for healthz/debugging,
        # the coordinator to join (None = standalone daemon), and the
        # proxies whose X-Forwarded-For header identifies the real client
        # for rate limiting.
        self.node_id = node_id or "node-{}-{}".format(
            os.getpid(), os.urandom(2).hex())
        self.join_url = join_url
        self.advertise_host = advertise_host
        self.heartbeat_interval = heartbeat_interval
        self.trusted_proxies = frozenset(trusted_proxies or ())
        self._member = None
        self._member_task = None
        # Daemon-wide default for sat_sweep jobs that don't pin their own
        # refine_workers; becomes part of the job's cache key (a serial and
        # a parallel run produce identical verdicts but different stats).
        self.refine_workers = int(refine_workers or 0)
        self.request_timeout = request_timeout
        self.sse_heartbeat = sse_heartbeat
        self.sse_write_timeout = sse_write_timeout
        self.poll_interval = poll_interval
        self.history_limit = history_limit
        self.ready_file = ready_file
        self.bus = bus or EventBus()
        self.store = store_mod.JobStore(store_dir or ".repro-server")
        self.cache = None
        if cache_dir:
            self.cache = ResultCache(cache_dir,
                                     max_entries=cache_max_entries,
                                     max_bytes=cache_max_bytes)
        if remote_cache_url:
            # Fleet-shared far tier: local misses consult the
            # coordinator's cache, local solves are published to it, so
            # any node serves any fingerprint once one node solved it.
            from ..fleet.cachenet import CacheClient, TieredCache

            self.cache = TieredCache(self.cache,
                                     CacheClient(remote_cache_url))
        self.pool = WorkerPool(workers=workers, bus=self.bus,
                               job_time_limit=job_time_limit, grace=grace)
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self._history = {}    # job id -> [event dict, ...] (bounded)
        self._watchers = {}   # job id -> set of asyncio.Queue
        self._server = None
        self._pump_task = None
        self._connections = set()
        self._stop_event = None
        self._started_at = None
        self.events_published = 0
        self.events_dropped = 0
        self._solver_stats = {}
        self.bus.subscribe(self._on_event)

    # -- event fan-out ------------------------------------------------------

    def _on_event(self, event):
        """Bus subscriber: record per-job history, wake SSE watchers."""
        self.events_published += 1
        if event.job is None:
            return
        payload = event.as_dict()
        history = self._history.setdefault(event.job, [])
        history.append(payload)
        if len(history) > self.history_limit:
            del history[:len(history) - self.history_limit]
            self.events_dropped += 1
        for queue in self._watchers.get(event.job, ()):  # same-loop puts
            queue.put_nowait(payload)

    def _notify_terminal(self, job_id):
        for queue in self._watchers.get(job_id, ()):
            queue.put_nowait(None)

    # -- lifecycle ----------------------------------------------------------

    async def start(self):
        """Bind the listener, recover the persisted queue, start the pump."""
        self._started_at = time.monotonic()
        self._stop_event = asyncio.Event()
        for record in self.store.recover():
            self.bus.emit(JOB_REQUEUED, job=record.id, name=record.name,
                          requeues=record.requeues, reason="daemon restart")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.ensure_future(self._pump())
        self.bus.emit(SERVER_STARTED, host=self.host, port=self.port,
                      workers=self.pool.workers, pid=os.getpid(),
                      node=self.node_id,
                      jobs_recovered=len(self.store))
        if self.join_url:
            # Fleet mode: announce this node to the coordinator and keep
            # the membership lease alive.  The advertise URL must carry
            # the *bound* port (the daemon may have asked for port 0).
            from ..fleet.node import FleetMember

            advertise = "http://{}:{}".format(
                self.advertise_host or
                ("127.0.0.1" if self.host in ("", "0.0.0.0") else self.host),
                self.port)
            self._member = FleetMember(self.join_url, self.node_id,
                                       advertise, self.bus,
                                       interval=self.heartbeat_interval)
            self._member_task = asyncio.ensure_future(self._member.run())
        if self.ready_file:
            payload = {"host": self.host, "port": self.port,
                       "pid": os.getpid(), "node": self.node_id,
                       "url": self.url()}
            tmp = self.ready_file + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.ready_file)

    def url(self):
        host = "127.0.0.1" if self.host in ("", "0.0.0.0") else self.host
        return "http://{}:{}".format(host, self.port)

    def request_stop(self):
        """Signal-safe stop request (wired to SIGINT/SIGTERM)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self):
        """Run until :meth:`request_stop`; installs signal handlers."""
        await self.start()
        loop = asyncio.get_event_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await self._stop_event.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()

    async def stop(self):
        """Graceful shutdown: stop intake, park running jobs, kill workers.

        Running jobs go back to *queued* on disk — the same resume
        semantics as a crash, but without waiting for them to finish —
        so a restarted daemon picks them up where the queue left off.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._member_task is not None:
            self._member_task.cancel()
            try:
                await self._member_task
            except (asyncio.CancelledError, Exception):
                pass
            self._member_task = None
        if self._member is not None:
            await self._member.leave()
            self._member = None
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except (asyncio.CancelledError, Exception):
                pass
        for outcome in self.pool.shutdown():
            record = self.store.get(outcome.token)
            if record is None or record.terminal:
                continue
            record.state = store_mod.QUEUED
            record.started_at = None
            record.requeues += 1
            self.store.save(record)
            self.bus.emit(JOB_REQUEUED, job=record.id, name=record.name,
                          requeues=record.requeues,
                          reason="daemon shutdown")
        self.bus.emit(SERVER_STOPPED, host=self.host, port=self.port,
                      uptime_seconds=self._uptime())
        for job_id in list(self._watchers):
            self._notify_terminal(job_id)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.wait(list(self._connections))

    def _uptime(self):
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- the job pump -------------------------------------------------------

    async def _pump(self):
        while True:
            try:
                self._start_queued()
                for outcome in self.pool.poll():
                    self._finish(outcome)
            except asyncio.CancelledError:
                raise
            except Exception:
                # The pump must survive a bad record; the record itself is
                # marked errored in _start_queued/_finish where possible.
                pass
            await asyncio.sleep(self.poll_interval)

    def _start_queued(self):
        while self.pool.has_capacity():
            queued = self.store.queued()
            if not queued:
                return
            record = queued[0]
            try:
                job = build_jobspec(record)
            except Exception as exc:
                self._mark_error(record, "cannot build job: {!r}".format(exc))
                continue
            if (self.refine_workers and job.method == "sat_sweep"
                    and "refine_workers" not in job.options):
                job.options["refine_workers"] = self.refine_workers
            cached = (self.cache.get(job.cache_key())
                      if self.cache is not None else None)
            if cached is not None:
                record.state = store_mod.DONE
                record.cached = True
                record.finished_at = time.time()
                record.result = JobResult(
                    record.id, cached, cached=True, wall_seconds=0.0,
                    method=job.method).as_dict()
                self.store.save(record)
                self.bus.emit(JOB_CACHED, job=record.id, name=record.name,
                              verdict=cached.equivalent, method=job.method)
                self._accumulate_solver_stats(cached)
                self._notify_terminal(record.id)
                continue
            record.state = store_mod.RUNNING
            record.started_at = time.time()
            self.store.save(record)
            self.pool.submit(record.id, job)

    def _finish(self, outcome):
        record = self.store.get(outcome.token)
        if record is None:
            return
        if outcome.cancelled:
            record.state = store_mod.CANCELLED
            record.result = outcome.result.as_dict()
            record.finished_at = time.time()
            self.store.save(record)
            self.bus.emit(JOB_CANCELLED, job=record.id, name=record.name,
                          method=outcome.job.method)
            self._notify_terminal(record.id)
            return
        if outcome.error is not None and record.requeues < self.retries:
            # Worker crash: put the job back at the head of the queue.
            record.state = store_mod.QUEUED
            record.started_at = None
            record.requeues += 1
            self.store.save(record)
            self.bus.emit(JOB_REQUEUED, job=record.id, name=record.name,
                          requeues=record.requeues, reason=outcome.error)
            return
        record.state = (store_mod.ERROR if outcome.error is not None
                        else store_mod.DONE)
        record.error = outcome.error
        record.result = outcome.result.as_dict()
        record.finished_at = time.time()
        self.store.save(record)
        result = outcome.result.result
        if (self.cache is not None and outcome.error is None
                and result is not None):
            self.cache.put(outcome.job.cache_key(), result,
                           meta={"job": record.name,
                                 "method": outcome.job.method})
        if result is not None:
            self._accumulate_solver_stats(result)
        self.bus.emit(JOB_FINISHED, job=record.id, name=record.name,
                      verdict=outcome.result.verdict,
                      method=outcome.job.method,
                      seconds=None if result is None else result.seconds,
                      error=outcome.error)
        self._notify_terminal(record.id)

    def _mark_error(self, record, message):
        record.state = store_mod.ERROR
        record.error = message
        record.finished_at = time.time()
        self.store.save(record)
        self.bus.emit(JOB_FINISHED, job=record.id, name=record.name,
                      verdict=None, error=message)
        self._notify_terminal(record.id)

    def _accumulate_solver_stats(self, result):
        stats = (result.details or {}).get("solver_stats")
        if not isinstance(stats, dict):
            return
        for key, value in stats.items():
            if isinstance(value, (int, float)):
                self._solver_stats[key] = (
                    self._solver_stats.get(key, 0) + value)

    # -- HTTP ---------------------------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except (asyncio.CancelledError, asyncio.TimeoutError,
                ConnectionError):
            pass
        except Exception:
            try:
                writer.write(error_response(
                    HttpError(500, "internal server error")))
            except Exception:
                pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_one(self, reader, writer):
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "unknown"
        try:
            request = await read_request(reader, peer=peer,
                                         timeout=self.request_timeout)
        except HttpError as exc:
            writer.write(error_response(exc))
            await writer.drain()
            return
        if request is None:
            return
        try:
            response = await self._route(request, writer)
        except HttpError as exc:
            response = error_response(exc)
        if response is not None:
            writer.write(response)
            await writer.drain()

    async def _route(self, request, writer):
        path, method = request.path, request.method
        if path == "/v1/healthz":
            if method != "GET":
                raise HttpError(405, "method not allowed")
            return json_response(200, {"status": "ok", "role": "worker",
                                       "node": self.node_id,
                                       "uptime_seconds": self._uptime()})
        self._throttle(request)
        if path == "/v1/stats":
            if method != "GET":
                raise HttpError(405, "method not allowed")
            return json_response(200, self.stats())
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(request)
            if method == "GET":
                return json_response(200, {
                    "jobs": [self._summary(r) for r in self.store.all()]})
            raise HttpError(405, "method not allowed")
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            record = self.store.get(job_id)
            if record is None:
                raise HttpError(404, "no such job {!r}".format(job_id))
            if tail == "events":
                if method != "GET":
                    raise HttpError(405, "method not allowed")
                await self._stream_events(record, writer)
                return None
            if tail:
                raise HttpError(404, "unknown resource {!r}".format(tail))
            if method == "GET":
                return json_response(200, record.public_dict())
            if method == "DELETE":
                return self._cancel(record)
            raise HttpError(405, "method not allowed")
        raise HttpError(404, "unknown path {!r}".format(path))

    def _client_key(self, request):
        """The rate-limit bucket key for one request.

        Keyed by socket peer, except when the request arrives from a
        *trusted proxy* (the fleet coordinator) carrying an
        ``X-Forwarded-For`` header: then the first forwarded hop is the
        key, so distinct downstream clients fill distinct buckets instead
        of the whole fleet's traffic collapsing into the coordinator's
        one.  The header is ignored from untrusted peers — anyone can
        send it, only the coordinator is believed.
        """
        if request.peer in self.trusted_proxies:
            forwarded = request.headers.get("x-forwarded-for")
            if forwarded:
                client = forwarded.split(",")[0].strip()
                if client:
                    return client
        return request.peer

    def _throttle(self, request):
        key = self._client_key(request)
        wait = self.limiter.check(key)
        if wait > 0.0:
            retry_after = max(1, int(math.ceil(min(wait, 3600.0))))
            self.bus.emit(CLIENT_THROTTLED, client=key,
                          path=request.path, retry_after=retry_after)
            raise HttpError(429, "rate limit exceeded",
                            headers={"Retry-After": str(retry_after)})

    def _submit(self, request):
        client = self._client_key(request)
        body = request.json()
        many = isinstance(body, dict) and "jobs" in body
        payloads = body["jobs"] if many else [body]
        if not isinstance(payloads, list) or not payloads:
            raise HttpError(400, "'jobs' must be a non-empty list")
        normalized = [validate_payload(p) for p in payloads]
        counts = self.store.counts()
        backlog = counts[store_mod.QUEUED] + counts[store_mod.RUNNING]
        if backlog + len(normalized) > self.queue_limit:
            self.bus.emit(CLIENT_THROTTLED, client=client,
                          path=request.path, reason="queue full",
                          backlog=backlog)
            raise HttpError(429, "job queue is full ({} of {})".format(
                backlog, self.queue_limit),
                headers={"Retry-After": "2"})
        ids = []
        for payload in normalized:
            record = self.store.create(payload, client=client)
            ids.append(record.id)
            self.bus.emit(JOB_SUBMITTED, job=record.id, name=record.name,
                          method=payload["method"], client=client)
        response = {"ids": ids} if many else {"id": ids[0]}
        response["state"] = store_mod.QUEUED
        return json_response(202, response)

    def _cancel(self, record):
        if record.terminal:
            return json_response(
                200, {"id": record.id, "state": record.state,
                      "detail": "already terminal"})
        if record.state == store_mod.QUEUED:
            record.state = store_mod.CANCELLED
            record.finished_at = time.time()
            self.store.save(record)
            self.bus.emit(JOB_CANCELLED, job=record.id, name=record.name,
                          method=record.payload.get("method"))
            self._notify_terminal(record.id)
            return json_response(200, {"id": record.id,
                                       "state": record.state})
        self.pool.cancel(record.id)
        return json_response(202, {"id": record.id, "state": "cancelling"})

    def _summary(self, record):
        return {
            "id": record.id,
            "name": record.name,
            "method": record.payload.get("method"),
            "state": record.state,
            "cached": record.cached,
            "submitted_at": record.submitted_at,
            "finished_at": record.finished_at,
        }

    async def _stream_events(self, record, writer):
        queue = asyncio.Queue()
        watchers = self._watchers.setdefault(record.id, set())
        watchers.add(queue)
        # Snapshot before any await: events published mid-replay land on the
        # queue (subscribed above), never duplicated and never lost.
        history = list(self._history.get(record.id, []))
        terminal = record.terminal
        try:
            sse = SseWriter(writer, write_timeout=self.sse_write_timeout)
            await sse.start()
            for payload in history:
                await sse.event(payload, payload.get("type"))
            if terminal:
                await sse.event(record.public_dict(), "done")
                return
            while True:
                try:
                    item = await asyncio.wait_for(queue.get(),
                                                  self.sse_heartbeat)
                except asyncio.TimeoutError:
                    await sse.comment()
                    continue
                if item is None:
                    fresh = self.store.get(record.id)
                    await sse.event(
                        fresh.public_dict() if fresh else {"id": record.id},
                        "done")
                    return
                await sse.event(item, item.get("type"))
        finally:
            watchers.discard(queue)
            if not watchers:
                self._watchers.pop(record.id, None)

    # -- stats --------------------------------------------------------------

    def stats(self):
        counts = self.store.counts()
        cache_stats = None
        if self.cache is not None:
            cache_stats = self.cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            cache_stats["hit_rate"] = (
                cache_stats["hits"] / lookups if lookups else None)
        return {
            "uptime_seconds": self._uptime(),
            "jobs": counts,
            "queue_limit": self.queue_limit,
            "workers": {"total": self.pool.workers,
                        "busy": self.pool.active},
            "cache": cache_stats,
            "events": {"published": self.events_published,
                       "dropped": self.events_dropped},
            "rate_limit": {"rejected": self.limiter.rejected,
                           "rate": self.limiter.rate,
                           "burst": self.limiter.burst},
            "solver_stats": dict(self._solver_stats),
        }


def serve(host="127.0.0.1", port=8439, **kwargs):
    """Blocking entry point used by ``repro-sec serve``; returns exit code."""
    server = VerifyServer(host=host, port=port, **kwargs)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback path
        pass
    return 0
