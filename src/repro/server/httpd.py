"""Minimal stdlib-only HTTP/1.1 plumbing for the asyncio daemon.

Just enough of the protocol for a JSON API plus Server-Sent Events:
request parsing off an :class:`asyncio.StreamReader` (with a read
timeout and body-size cap, so a stalled or hostile client cannot pin a
connection), response serialization, and an SSE writer with heartbeats
and a write timeout (a stuck consumer is disconnected instead of
wedging the daemon's event fan-out).

Connections are ``Connection: close`` — one request per connection keeps
the state machine trivial and matches the stdlib ``urllib`` client the
:mod:`repro.client` module uses.  SSE responses stay open until the job
ends or the client goes away.
"""

import asyncio
import json

#: Reason phrases for the handful of statuses the API uses.
_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}

MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 64


class HttpError(Exception):
    """Maps to an HTTP error response; ``headers`` ride along (Retry-After)."""

    def __init__(self, status, message, headers=None):
        super(HttpError, self).__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


class Request:
    """One parsed HTTP request."""

    def __init__(self, method, target, headers, body=b"", peer=None):
        self.method = method
        self.path, _, query = target.partition("?")
        self.query = _parse_query(query)
        self.headers = headers  # lower-cased names
        self.body = body
        self.peer = peer

    def json(self):
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON")

    def __repr__(self):
        return "Request({} {})".format(self.method, self.path)


def _parse_query(query):
    params = {}
    for part in query.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        params[key] = value
    return params


async def read_request(reader, peer=None, timeout=10.0,
                       max_body=8 * 1024 * 1024):
    """Parse one request; ``None`` on clean EOF before a request line.

    Raises :class:`HttpError` on malformed input, oversized bodies or a
    client that stalls past ``timeout``.
    """
    try:
        line = await asyncio.wait_for(reader.readline(), timeout)
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out waiting for request line")
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "unsupported HTTP version")

    headers = {}
    while True:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout)
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading headers")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        try:
            name, value = line.decode("latin-1").split(":", 1)
        except ValueError:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, "request body exceeds {} bytes".format(
                max_body))
        try:
            body = await asyncio.wait_for(reader.readexactly(length), timeout)
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading request body")
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
    return Request(method.upper(), target, headers, body, peer=peer)


def response_bytes(status, body=b"", content_type="application/json",
                   headers=None):
    """Serialize a full ``Connection: close`` response."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    lines = [
        "HTTP/1.1 {} {}".format(status, _REASONS.get(status, "Unknown")),
        "Content-Type: {}".format(content_type),
        "Content-Length: {}".format(len(body)),
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append("{}: {}".format(name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status, payload, headers=None):
    return response_bytes(status, json.dumps(payload, sort_keys=True),
                          headers=headers)


def error_response(exc):
    return json_response(exc.status, {"error": exc.message},
                         headers=exc.headers)


class SseWriter:
    """Server-Sent Events framing over an asyncio writer.

    Every write is bounded by ``write_timeout`` (drain included): a client
    that stops reading gets disconnected by :class:`asyncio.TimeoutError`
    propagating to the connection handler, instead of the daemon's event
    pump backing up behind one dead socket.
    """

    def __init__(self, writer, write_timeout=10.0):
        self.writer = writer
        self.write_timeout = write_timeout

    async def start(self, headers=None):
        lines = [
            "HTTP/1.1 200 OK",
            "Content-Type: text/event-stream",
            "Cache-Control: no-cache",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append("{}: {}".format(name, value))
        await self._write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

    async def event(self, payload, event_type=None):
        """Send one event; ``payload`` is JSON-serialized into ``data:``."""
        chunks = []
        if event_type:
            chunks.append("event: {}\n".format(event_type))
        chunks.append("data: {}\n\n".format(
            json.dumps(payload, sort_keys=True)))
        await self._write("".join(chunks).encode("utf-8"))

    async def comment(self, text="keep-alive"):
        """Heartbeat comment line; also how client liveness is probed."""
        await self._write(": {}\n\n".format(text).encode("utf-8"))

    async def _write(self, data):
        self.writer.write(data)
        await asyncio.wait_for(self.writer.drain(), self.write_timeout)


def parse_sse_stream(lines):
    """Yield ``(event_type, data_str)`` from an iterable of SSE lines.

    Shared with the client: works on any iterator of ``str`` lines (a
    ``urllib`` response wrapped in a decoder, a test fixture list, ...).
    Comment lines (heartbeats) are skipped.
    """
    event_type = None
    data_parts = []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if not line:
            if data_parts:
                yield event_type, "\n".join(data_parts)
            event_type = None
            data_parts = []
            continue
        if line.startswith(":"):
            continue
        name, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if name == "event":
            event_type = value
        elif name == "data":
            data_parts.append(value)
    if data_parts:
        yield event_type, "\n".join(data_parts)
