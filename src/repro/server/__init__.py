"""Networked verification daemon: asyncio HTTP job API + SSE streaming.

``repro-sec serve`` boots a :class:`VerifyServer` that accepts verification
jobs over HTTP, runs them on the service layer's worker processes, persists
the queue across restarts and streams each job's progress events live over
Server-Sent Events.  :mod:`repro.client` is the matching remote client.

See ``docs/SERVER.md`` for the API reference and lifecycle semantics.
"""

from .app import VerifyServer, build_jobspec, serve, validate_payload
from .httpd import HttpError, parse_sse_stream
from .ratelimit import RateLimiter, TokenBucket
from .store import (
    CANCELLED,
    DONE,
    ERROR,
    JobRecord,
    JobStore,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "ERROR",
    "HttpError",
    "JobRecord",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "RateLimiter",
    "TERMINAL_STATES",
    "TokenBucket",
    "VerifyServer",
    "build_jobspec",
    "parse_sse_stream",
    "serve",
    "validate_payload",
]
