"""Structural cone analysis: supports, fanin cones, levels, variable orders."""

from collections import deque


def transitive_fanin(circuit, nets, stop_at_registers=True):
    """All nets in the combinational fanin cone of ``nets``.

    With ``stop_at_registers`` the cone stops at register outputs and primary
    inputs (one time frame); otherwise it continues through register data
    inputs (the sequential cone).
    """
    if isinstance(nets, str):
        nets = [nets]
    seen = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        if net in circuit.gates:
            stack.extend(circuit.gates[net].fanins)
        elif net in circuit.registers and not stop_at_registers:
            stack.append(circuit.registers[net].data_in)
    return seen


def combinational_support(circuit, net):
    """Primary inputs and register outputs the net combinationally depends on."""
    cone = transitive_fanin(circuit, net)
    sources = set(circuit.inputs) | set(circuit.registers)
    return cone & sources


def level_map(circuit):
    """``{net: logic depth}``; sources are level 0."""
    levels = {net: 0 for net in circuit.inputs}
    levels.update({net: 0 for net in circuit.registers})
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        levels[name] = 1 + max((levels[f] for f in gate.fanins), default=0)
    return levels


def static_variable_order(circuit, extra_first=()):
    """A good static BDD variable order over inputs and register outputs.

    Depth-first traversal from the outputs (then register data inputs), which
    places related state variables and inputs next to each other — the usual
    topology-driven initial order.  ``extra_first`` pins given nets to the
    front.  Returns a list of input/register net names.
    """
    sources = list(circuit.inputs) + list(circuit.registers)
    source_set = set(sources)
    order = []
    placed = set()
    for net in extra_first:
        if net in source_set and net not in placed:
            order.append(net)
            placed.add(net)
    roots = list(circuit.outputs) + [
        reg.data_in for reg in circuit.registers.values()
    ]
    visited = set()
    for root in roots:
        stack = [root]
        while stack:
            net = stack.pop()
            if net in visited:
                continue
            visited.add(net)
            if net in source_set:
                if net not in placed:
                    order.append(net)
                    placed.add(net)
                continue
            if net in circuit.gates:
                # Reversed so the first fanin is explored first.
                stack.extend(reversed(circuit.gates[net].fanins))
    for net in sources:
        if net not in placed:
            order.append(net)
            placed.add(net)
    return order


def output_cone_sizes(circuit):
    """``{output: cone size}`` — a cheap complexity indicator for reports."""
    return {
        net: len(transitive_fanin(circuit, net)) for net in circuit.outputs
    }


def register_dependency_graph(circuit):
    """``{register: set(registers feeding its next-state function)}``."""
    graph = {}
    for reg in circuit.registers.values():
        support = combinational_support(circuit, reg.data_in)
        graph[reg.name] = {net for net in support if net in circuit.registers}
    return graph


def register_blocks(circuit, max_block=8):
    """Partition registers into blocks of connected next-state dependencies.

    Greedy BFS clustering over :func:`register_dependency_graph`, used by the
    approximate-traversal substrate (machine-by-machine traversal, Cho et al.).
    """
    graph = register_dependency_graph(circuit)
    undirected = {name: set() for name in graph}
    for name, deps in graph.items():
        for dep in deps:
            undirected[name].add(dep)
            undirected[dep].add(name)
    blocks = []
    unassigned = set(graph)
    for seed in sorted(graph):
        if seed not in unassigned:
            continue
        block = [seed]
        unassigned.discard(seed)
        frontier = deque([seed])
        while frontier and len(block) < max_block:
            current = frontier.popleft()
            for neighbor in sorted(undirected[current]):
                if neighbor in unassigned and len(block) < max_block:
                    unassigned.discard(neighbor)
                    block.append(neighbor)
                    frontier.append(neighbor)
        blocks.append(block)
    return blocks
