"""Berkeley Logic Interchange Format (BLIF) reader and writer.

Supports the combinational + latch subset used for equivalence-checking
workloads: ``.model``, ``.inputs``, ``.outputs``, ``.names`` (PLA covers),
``.latch`` (with optional init value) and ``.end``.  Covers are converted to
AND/OR/NOT gate networks on input; on output every gate is serialized as a
single-cube or XOR-expanded cover.
"""

from .circuit import Circuit, GateType
from ..errors import ParseError


def loads(text, name=None):
    """Parse BLIF text into a validated :class:`Circuit`."""
    lines = _logical_lines(text)
    circuit = None
    i = 0
    while i < len(lines):
        lineno, tokens = lines[i]
        head = tokens[0]
        if head == ".model":
            model_name = tokens[1] if len(tokens) > 1 else "blif"
            circuit = Circuit(name or model_name)
            i += 1
        elif head == ".inputs":
            _require(circuit, lineno)
            for net in tokens[1:]:
                circuit.add_input(net)
            i += 1
        elif head == ".outputs":
            _require(circuit, lineno)
            for net in tokens[1:]:
                circuit.add_output(net)
            i += 1
        elif head == ".latch":
            _require(circuit, lineno)
            if len(tokens) < 3:
                raise ParseError(".latch needs input and output", lineno)
            data_in, out = tokens[1], tokens[2]
            init = False
            if len(tokens) >= 4 and tokens[-1] in ("0", "1", "2", "3"):
                init = tokens[-1] == "1"
            circuit.add_register(out, data_in, init=init)
            i += 1
        elif head == ".names":
            _require(circuit, lineno)
            nets = tokens[1:]
            if not nets:
                raise ParseError(".names needs at least an output", lineno)
            output, fanins = nets[-1], nets[:-1]
            cover = []
            i += 1
            while i < len(lines) and not lines[i][1][0].startswith("."):
                row_line, row = lines[i]
                if len(fanins) == 0:
                    if len(row) != 1:
                        raise ParseError("bad constant cover row", row_line)
                    cover.append(("", row[0]))
                else:
                    if len(row) != 2:
                        raise ParseError("bad cover row", row_line)
                    cover.append((row[0], row[1]))
                i += 1
            _build_cover(circuit, output, fanins, cover, lineno)
        elif head == ".end":
            i += 1
        else:
            raise ParseError("unsupported construct {!r}".format(head), lineno)
    if circuit is None:
        raise ParseError("no .model found")
    circuit.validate()
    return circuit


def _logical_lines(text):
    """Strip comments, join ``\\`` continuations, tokenize."""
    merged = []
    pending = ""
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        tokens = line.split()
        if tokens:
            merged.append((lineno, tokens))
    return merged


def _require(circuit, lineno):
    if circuit is None:
        raise ParseError("statement before .model", lineno)


def _build_cover(circuit, output, fanins, cover, lineno):
    """Expand a PLA cover into AND/OR/NOT gates with output net ``output``."""
    if not fanins:
        # Constant: a single row "1" means const 1; empty cover means const 0.
        value = bool(cover) and cover[0][1] == "1"
        circuit.add_gate(output, GateType.CONST1 if value else GateType.CONST0, [])
        return
    if not cover:
        circuit.add_gate(output, GateType.CONST0, [])
        return
    on_set = all(out_bit == "1" for _, out_bit in cover)
    off_set = all(out_bit == "0" for _, out_bit in cover)
    if not on_set and not off_set:
        raise ParseError("mixed on/off cover for {!r}".format(output), lineno)
    inverters = {}

    def literal(net, positive):
        if positive:
            return net
        inv = inverters.get(net)
        if inv is None:
            inv = circuit.fresh_name("{}_not".format(output))
            circuit.add_gate(inv, GateType.NOT, [net])
            inverters[net] = inv
        return inv

    terms = []
    for row, (in_bits, _) in enumerate(cover):
        if len(in_bits) != len(fanins):
            raise ParseError(
                "cover row width mismatch for {!r}".format(output), lineno
            )
        literals = []
        for bit, net in zip(in_bits, fanins):
            if bit == "1":
                literals.append(literal(net, True))
            elif bit == "0":
                literals.append(literal(net, False))
            elif bit != "-":
                raise ParseError("bad cover character {!r}".format(bit), lineno)
        if not literals:
            # A row of all don't-cares makes the function constant true.
            terms = [None]
            break
        if len(literals) == 1:
            terms.append(literals[0])
        else:
            term_net = circuit.fresh_name("{}_t{}".format(output, row))
            circuit.add_gate(term_net, GateType.AND, literals)
            terms.append(term_net)
    final_positive = on_set
    if terms == [None]:
        circuit.add_gate(
            output, GateType.CONST1 if final_positive else GateType.CONST0, []
        )
        return
    if len(terms) == 1:
        gtype = GateType.BUF if final_positive else GateType.NOT
        circuit.add_gate(output, gtype, [terms[0]])
        return
    gtype = GateType.OR if final_positive else GateType.NOR
    circuit.add_gate(output, gtype, terms)


def load(path, name=None):
    """Parse a BLIF file from disk."""
    with open(path) as handle:
        return loads(handle.read(), name=name)


_GATE_COVERS = {
    GateType.BUF: lambda n: [("1", "1")],
    GateType.NOT: lambda n: [("0", "1")],
    GateType.AND: lambda n: [("1" * n, "1")],
    GateType.NAND: lambda n: [("1" * n, "0")],
    GateType.OR: lambda n: [
        ("-" * i + "1" + "-" * (n - i - 1), "1") for i in range(n)
    ],
    GateType.NOR: lambda n: [("0" * n, "1")],
}


def dumps(circuit):
    """Serialize a circuit to BLIF text."""
    lines = [".model {}".format(circuit.name)]
    if circuit.inputs:
        lines.append(".inputs {}".format(" ".join(circuit.inputs)))
    if circuit.outputs:
        lines.append(".outputs {}".format(" ".join(circuit.outputs)))
    for reg in circuit.registers.values():
        lines.append(
            ".latch {} {} re clk {}".format(reg.data_in, reg.name, int(reg.init))
        )
    for gname in circuit.topo_order():
        gate = circuit.gates[gname]
        if gate.gtype is GateType.CONST0:
            lines.append(".names {}".format(gname))
        elif gate.gtype is GateType.CONST1:
            lines.append(".names {}".format(gname))
            lines.append("1")
        elif gate.gtype in (GateType.XOR, GateType.XNOR):
            lines.extend(_xor_cover(gate))
        else:
            cover = _GATE_COVERS[gate.gtype](len(gate.fanins))
            lines.append(".names {} {}".format(" ".join(gate.fanins), gname))
            for in_bits, out_bit in cover:
                lines.append("{} {}".format(in_bits, out_bit) if in_bits else out_bit)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _xor_cover(gate):
    """Enumerate the on-set of an XOR/XNOR gate (arity is small in practice)."""
    n = len(gate.fanins)
    want_odd = gate.gtype is GateType.XOR
    rows = []
    for bits in range(1 << n):
        ones = bin(bits).count("1")
        if (ones % 2 == 1) == want_odd:
            pattern = format(bits, "0{}b".format(n))
            rows.append("{} 1".format(pattern))
    header = ".names {} {}".format(" ".join(gate.fanins), gate.name)
    return [header] + rows


def dump(circuit, path):
    """Write a circuit to a BLIF file."""
    with open(path, "w") as handle:
        handle.write(dumps(circuit))
