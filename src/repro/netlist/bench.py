"""ISCAS-89 ``.bench`` format reader and writer.

The format the paper's benchmark set uses::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NOT(G5)
    G14 = AND(G0, G11)

DFFs initialize to 0 by ISCAS convention; this implementation additionally
accepts ``DFF1(...)`` for registers that initialize to 1 (our synthesized
benchmark circuits use it after forward retiming, which can produce
initial-value-1 registers).
"""

import io
import re

from .circuit import Circuit, GateType
from ..errors import ParseError

_LINE_RE = re.compile(
    r"^\s*(?:"
    r"(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<ionet>[^\s()]+)\s*\)"
    r"|(?P<lhs>[^\s=()]+)\s*=\s*(?P<op>[A-Za-z0-9_]+)\s*\(\s*(?P<args>[^()]*)\)"
    r")\s*$"
)

_GATE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def loads(text, name="bench"):
    """Parse ``.bench`` text into a validated :class:`Circuit`."""
    circuit = Circuit(name)
    pending_outputs = []
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ParseError("unrecognized syntax: {!r}".format(line), lineno)
        if match.group("io"):
            net = match.group("ionet")
            if match.group("io") == "INPUT":
                circuit.add_input(net)
            else:
                pending_outputs.append((net, lineno))
            continue
        lhs = match.group("lhs")
        op = match.group("op").upper()
        args = [a.strip() for a in match.group("args").split(",") if a.strip()]
        if op in ("DFF", "DFF1"):
            if len(args) != 1:
                raise ParseError(
                    "{} takes exactly one argument".format(op), lineno
                )
            circuit.add_register(lhs, args[0], init=(op == "DFF1"))
        elif op in _GATE_ALIASES:
            circuit.add_gate(lhs, _GATE_ALIASES[op], args)
        else:
            raise ParseError("unknown gate type {!r}".format(op), lineno)
    for net, lineno in pending_outputs:
        if not circuit.is_defined(net):
            raise ParseError("undefined output net {!r}".format(net), lineno)
        circuit.add_output(net)
    circuit.validate()
    return circuit


def load(path, name=None):
    """Parse a ``.bench`` file from disk."""
    with open(path) as handle:
        text = handle.read()
    if name is None:
        name = str(path).rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return loads(text, name=name)


def dumps(circuit):
    """Serialize a circuit to ``.bench`` text (topologically ordered gates)."""
    lines = ["# {}".format(circuit.name)]
    lines.append(
        "# {} inputs, {} outputs, {} registers, {} gates".format(
            len(circuit.inputs),
            len(circuit.outputs),
            circuit.num_registers,
            circuit.num_gates,
        )
    )
    for net in circuit.inputs:
        lines.append("INPUT({})".format(net))
    for net in circuit.outputs:
        lines.append("OUTPUT({})".format(net))
    for reg in circuit.registers.values():
        op = "DFF1" if reg.init else "DFF"
        lines.append("{} = {}({})".format(reg.name, op, reg.data_in))
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        lines.append(
            "{} = {}({})".format(name, gate.gtype.value, ", ".join(gate.fanins))
        )
    return "\n".join(lines) + "\n"


def dump(circuit, path):
    """Write a circuit to a ``.bench`` file."""
    with open(path, "w") as handle:
        handle.write(dumps(circuit))
