"""Product machine construction.

The product machine combines specification and implementation over *shared*
primary inputs; its state space is the Cartesian product of both register
files and its output function is 1 iff all pairwise corresponding outputs
agree (the paper's §3 model).  Output pairs are kept as data rather than
being materialized as miter gates, so the signal set F of the correspondence
engine contains exactly the signals of the two circuits.
"""

from .circuit import Circuit, Gate, Register
from ..errors import VerificationError

SPEC_PREFIX = "s."
IMPL_PREFIX = "i."


class ProductMachine:
    """The combined circuit plus bookkeeping about signal origins."""

    def __init__(self, circuit, output_pairs, spec_nets, impl_nets, spec, impl):
        self.circuit = circuit
        self.output_pairs = output_pairs  # [(spec_out_net, impl_out_net)]
        self.spec_nets = spec_nets        # product nets originating in spec
        self.impl_nets = impl_nets        # product nets originating in impl
        self.spec = spec
        self.impl = impl

    @property
    def registers(self):
        return self.circuit.registers

    @property
    def inputs(self):
        return self.circuit.inputs

    def origin(self, net):
        """'spec', 'impl' or 'input' for a product net."""
        if net in self.circuit.inputs:
            return "input"
        if net in self.spec_nets:
            return "spec"
        if net in self.impl_nets:
            return "impl"
        raise VerificationError("net {!r} is not part of the product".format(net))

    def __repr__(self):
        return "ProductMachine({} PI, {} pairs, {} regs, {} gates)".format(
            len(self.circuit.inputs),
            len(self.output_pairs),
            self.circuit.num_registers,
            self.circuit.num_gates,
        )


def build_product(spec, impl, match_inputs="name", match_outputs="name"):
    """Combine two circuits into a :class:`ProductMachine`.

    ``match_inputs``/``match_outputs`` are ``"name"`` (nets matched by name;
    both interfaces must coincide as sets) or ``"order"`` (positional).
    """
    spec.validate()
    impl.validate()
    if len(spec.inputs) != len(impl.inputs):
        raise VerificationError(
            "input count mismatch: {} vs {}".format(
                len(spec.inputs), len(impl.inputs)
            )
        )
    if len(spec.outputs) != len(impl.outputs):
        raise VerificationError(
            "output count mismatch: {} vs {}".format(
                len(spec.outputs), len(impl.outputs)
            )
        )
    if match_inputs == "name":
        if set(spec.inputs) != set(impl.inputs):
            raise VerificationError(
                "input names differ; use match_inputs='order'"
            )
        impl_in_map = {net: net for net in impl.inputs}
    elif match_inputs == "order":
        impl_in_map = dict(zip(impl.inputs, spec.inputs))
    else:
        raise VerificationError("match_inputs must be 'name' or 'order'")

    product = Circuit("product({},{})".format(spec.name, impl.name))
    for net in spec.inputs:
        product.add_input(net)

    spec_map = _embed(product, spec, SPEC_PREFIX, {n: n for n in spec.inputs})
    impl_map = _embed(product, impl, IMPL_PREFIX, impl_in_map)

    if match_outputs == "name":
        if set(spec.outputs) != set(impl.outputs):
            raise VerificationError(
                "output names differ; use match_outputs='order'"
            )
        pairs = [
            (spec_map[name], impl_map[name]) for name in spec.outputs
        ]
    elif match_outputs == "order":
        pairs = [
            (spec_map[s], impl_map[m])
            for s, m in zip(spec.outputs, impl.outputs)
        ]
    else:
        raise VerificationError("match_outputs must be 'name' or 'order'")

    for s_net, i_net in pairs:
        product.add_output(s_net)
        product.add_output(i_net)
    product.validate()
    spec_nets = set(spec_map.values())
    impl_nets = set(impl_map.values())
    return ProductMachine(product, pairs, spec_nets, impl_nets, spec, impl)


def _embed(product, circuit, prefix, input_map):
    """Copy ``circuit`` into ``product`` with renamed nets; returns net map."""
    mapping = dict(input_map)
    for reg in circuit.registers.values():
        new_name = prefix + reg.name
        mapping[reg.name] = new_name
    for name in circuit.topo_order():
        mapping[name] = prefix + name
    for reg in circuit.registers.values():
        product.add_register(
            mapping[reg.name], mapping[reg.data_in], reg.init
        )
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        product.add_gate(
            mapping[name], gate.gtype, [mapping[f] for f in gate.fanins]
        )
    return mapping
