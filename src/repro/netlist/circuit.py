"""Gate-level sequential circuit intermediate representation.

A :class:`Circuit` is a deterministic Mealy machine, the paper's basic model:
primary inputs, primary outputs, registers with a *specified initial state*,
and combinational gates.  Every signal (net) is identified by a string name;
gate outputs, register outputs, constants and primary inputs are all nets.

The IR is deliberately simple and dictionary-based; performance-sensitive
consumers (bit-parallel simulation, Tseitin encoding, BDD construction)
compile it once into arrays.
"""

import enum

from ..errors import NetlistError


class GateType(enum.Enum):
    """Combinational gate vocabulary (the ISCAS-89 set plus constants)."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def arity(self):
        """(min_fanins, max_fanins); ``None`` means unbounded."""
        if self in (GateType.NOT, GateType.BUF):
            return (1, 1)
        if self in (GateType.CONST0, GateType.CONST1):
            return (0, 0)
        if self in (GateType.XOR, GateType.XNOR):
            return (2, None)
        return (1, None)

    @property
    def is_commutative(self):
        return self not in (GateType.NOT, GateType.BUF)


def eval_gate(gtype, values):
    """Evaluate a gate over booleans (the single source of gate semantics)."""
    if gtype is GateType.AND:
        return all(values)
    if gtype is GateType.OR:
        return any(values)
    if gtype is GateType.NAND:
        return not all(values)
    if gtype is GateType.NOR:
        return not any(values)
    if gtype is GateType.XOR:
        return sum(values) % 2 == 1
    if gtype is GateType.XNOR:
        return sum(values) % 2 == 0
    if gtype is GateType.NOT:
        return not values[0]
    if gtype is GateType.BUF:
        return bool(values[0])
    if gtype is GateType.CONST0:
        return False
    if gtype is GateType.CONST1:
        return True
    raise NetlistError("unknown gate type: {!r}".format(gtype))


class Gate:
    """A combinational gate; its output net carries the gate's name."""

    __slots__ = ("name", "gtype", "fanins")

    def __init__(self, name, gtype, fanins):
        self.name = name
        self.gtype = gtype
        self.fanins = list(fanins)

    def __repr__(self):
        return "Gate({!r}, {}, {})".format(self.name, self.gtype.value, self.fanins)


class Register:
    """A D flip-flop with a known initial value (the paper requires one)."""

    __slots__ = ("name", "data_in", "init")

    def __init__(self, name, data_in, init=False):
        self.name = name
        self.data_in = data_in
        self.init = bool(init)

    def __repr__(self):
        return "Register({!r}, data_in={!r}, init={})".format(
            self.name, self.data_in, int(self.init)
        )


class Circuit:
    """A sequential circuit: Mealy FSM with explicit gate-level structure."""

    def __init__(self, name="circuit"):
        self.name = name
        self.inputs = []          # ordered primary input net names
        self.outputs = []         # ordered primary output net names
        self.gates = {}           # net name -> Gate
        self.registers = {}       # net name -> Register
        self._topo_cache = None
        self.topo_computations = 0  # full topo sorts performed (perf assert)

    # -- construction ----------------------------------------------------

    def add_input(self, name):
        """Declare a primary input net; returns its name."""
        self._check_fresh(name)
        self.inputs.append(name)
        self._topo_cache = None
        return name

    def add_output(self, net):
        """Declare an existing (or later-defined) net as a primary output."""
        self.outputs.append(net)
        return net

    def add_gate(self, name, gtype, fanins):
        """Add a combinational gate whose output net is ``name``."""
        self._check_fresh(name)
        if not isinstance(gtype, GateType):
            gtype = GateType(str(gtype).upper())
        fanins = list(fanins)
        lo, hi = gtype.arity
        if len(fanins) < lo or (hi is not None and len(fanins) > hi):
            raise NetlistError(
                "gate {!r}: {} takes {}..{} fanins, got {}".format(
                    name, gtype.value, lo, "inf" if hi is None else hi, len(fanins)
                )
            )
        self.gates[name] = Gate(name, gtype, fanins)
        self._topo_cache = None
        return name

    def add_register(self, name, data_in, init=False):
        """Add a register; ``name`` is its output net, ``data_in`` its input."""
        self._check_fresh(name)
        self.registers[name] = Register(name, data_in, init)
        self._topo_cache = None
        return name

    def set_register_input(self, name, data_in):
        self.registers[name].data_in = data_in
        self._topo_cache = None

    def _check_fresh(self, name):
        if name in self.gates or name in self.registers or name in self.inputs:
            raise NetlistError("net {!r} is already defined".format(name))

    # -- queries ----------------------------------------------------------

    @property
    def num_gates(self):
        return len(self.gates)

    @property
    def num_registers(self):
        return len(self.registers)

    def is_defined(self, net):
        return net in self.gates or net in self.registers or net in self.inputs

    def driver_kind(self, net):
        """'input', 'gate' or 'register' for a defined net."""
        if net in self.gates:
            return "gate"
        if net in self.registers:
            return "register"
        if net in self.inputs:
            return "input"
        raise NetlistError("undefined net: {!r}".format(net))

    def signals(self):
        """All net names: inputs, register outputs, then gates in topo order."""
        return list(self.inputs) + list(self.registers) + self.topo_order()

    def initial_state(self):
        """``{register_net: bool}`` initial state s0."""
        return {name: reg.init for name, reg in self.registers.items()}

    def fanout_map(self):
        """``{net: [consumer names]}`` over gates and registers."""
        fanout = {net: [] for net in self.signals()}
        for gate in self.gates.values():
            for net in gate.fanins:
                fanout[net].append(gate.name)
        for reg in self.registers.values():
            fanout[reg.data_in].append(reg.name)
        return fanout

    def topo_order(self):
        """Gate names in topological order; raises on combinational cycles.

        The sort is memoized: every mutator (``add_*``, ``remove_gate``,
        ``replace_fanin``, ``set_register_input``) drops ``_topo_cache``, so
        repeated frame evaluation pays for one sort per mutation epoch.
        ``topo_computations`` counts actual sorts for perf assertions.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        self.topo_computations += 1
        order = []
        state = {}  # name -> 1 (visiting) | 2 (done)
        for root in self.gates:
            if state.get(root):
                continue
            stack = [(root, iter(self.gates[root].fanins))]
            state[root] = 1
            while stack:
                name, fanins = stack[-1]
                advanced = False
                for net in fanins:
                    if net in self.gates:
                        mark = state.get(net)
                        if mark == 1:
                            raise NetlistError(
                                "combinational cycle through {!r}".format(net)
                            )
                        if mark is None:
                            state[net] = 1
                            stack.append((net, iter(self.gates[net].fanins)))
                            advanced = True
                            break
                    elif not self.is_defined(net):
                        raise NetlistError(
                            "gate {!r} reads undefined net {!r}".format(name, net)
                        )
                if not advanced:
                    stack.pop()
                    state[name] = 2
                    order.append(name)
        self._topo_cache = order
        return list(order)

    def validate(self):
        """Check structural well-formedness; returns self for chaining."""
        self.topo_order()
        for reg in self.registers.values():
            if not self.is_defined(reg.data_in):
                raise NetlistError(
                    "register {!r} reads undefined net {!r}".format(
                        reg.name, reg.data_in
                    )
                )
        for net in self.outputs:
            if not self.is_defined(net):
                raise NetlistError("undefined output net: {!r}".format(net))
        seen = set()
        for net in self.inputs:
            if net in seen:
                raise NetlistError("duplicate input: {!r}".format(net))
            seen.add(net)
        return self

    def stats(self):
        """Summary dict used by the reporting code."""
        return {
            "name": self.name,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": self.num_gates,
            "registers": self.num_registers,
        }

    # -- structure manipulation -------------------------------------------

    def copy(self, name=None):
        """Deep copy (gates and registers are duplicated)."""
        dup = Circuit(name or self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.gates = {
            g.name: Gate(g.name, g.gtype, list(g.fanins)) for g in self.gates.values()
        }
        dup.registers = {
            r.name: Register(r.name, r.data_in, r.init) for r in self.registers.values()
        }
        return dup

    def renamed(self, prefix, keep_inputs=True, name=None):
        """Copy with every net prefixed; optionally keep input names shared.

        Keeping input names is what the product machine construction needs:
        both circuits read the same primary inputs.
        """
        def rn(net):
            if keep_inputs and net in input_set:
                return net
            return prefix + net

        input_set = set(self.inputs)
        dup = Circuit(name or (prefix + self.name))
        dup.inputs = [rn(n) for n in self.inputs]
        dup.outputs = [rn(n) for n in self.outputs]
        dup.gates = {
            rn(g.name): Gate(rn(g.name), g.gtype, [rn(f) for f in g.fanins])
            for g in self.gates.values()
        }
        dup.registers = {
            rn(r.name): Register(rn(r.name), rn(r.data_in), r.init)
            for r in self.registers.values()
        }
        return dup

    def remove_gate(self, name):
        """Remove a gate (callers must have rewired its fanout first)."""
        del self.gates[name]
        self._topo_cache = None

    def replace_fanin(self, old, new):
        """Redirect every reader of net ``old`` to net ``new``."""
        for gate in self.gates.values():
            gate.fanins = [new if f == old else f for f in gate.fanins]
        for reg in self.registers.values():
            if reg.data_in == old:
                reg.data_in = new
        self.outputs = [new if o == old else o for o in self.outputs]
        self._topo_cache = None

    def fresh_name(self, stem):
        """A net name not yet used, derived from ``stem``."""
        if not self.is_defined(stem):
            return stem
        i = 0
        while True:
            candidate = "{}_{}".format(stem, i)
            if not self.is_defined(candidate):
                return candidate
            i += 1

    def __repr__(self):
        return "Circuit({!r}: {} PI, {} PO, {} regs, {} gates)".format(
            self.name,
            len(self.inputs),
            len(self.outputs),
            self.num_registers,
            self.num_gates,
        )
