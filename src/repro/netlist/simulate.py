"""Bit-parallel and three-valued simulation of sequential circuits.

Bit-parallel simulation packs ``width`` independent patterns into Python
integers (one bit per pattern), which is how the paper's implementation uses
"sequential simulation of the product machine with random input vectors" to
pre-partition the candidate equivalence classes cheaply.

Three-valued (0/1/X) simulation is provided for initialization analysis; a
value is a pair ``(ones, zeros)`` of bit masks — a bit set in neither mask is
unknown.
"""

import random

from .circuit import GateType
from ..errors import NetlistError


def _numpy():
    """The numpy module, or ``None`` when it is not installed.

    Cached after the first probe; the matrix backend is strictly optional
    and every selection point degrades to :class:`CompiledSim` without it.
    """
    global _NUMPY
    if _NUMPY is False:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
    return _NUMPY


_NUMPY = False

SIM_BACKENDS = ("auto", "compiled", "matrix")


def _mask(width):
    return (1 << width) - 1


def _env_net_category(circuit, net):
    """Category of a net an evaluator expected in ``env``.

    Exhaustive on purpose: a net in *neither* set (possible when callers
    hand-build env keys) must not be mislabelled as an input or register.
    """
    if net in circuit.inputs:
        return "input"
    if net in circuit.registers:
        return "register"
    return "undefined"


def _missing_env_error(circuit, net):
    return NetlistError(
        "bit_parallel_eval: env is missing a value for {} net {!r}".format(
            _env_net_category(circuit, net), net
        )
    )


def bit_parallel_eval(circuit, env, width):
    """Evaluate all nets for one time frame.

    ``env`` maps every primary input and register-output net to an integer of
    ``width`` pattern bits.  Returns ``{net: int}`` covering every net.
    """
    values = {}
    full = _mask(width)
    try:
        for net in circuit.inputs:
            values[net] = env[net] & full
        for net in circuit.registers:
            values[net] = env[net] & full
    except KeyError as exc:
        raise _missing_env_error(circuit, exc.args[0]) from None
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = _eval_words(gate.gtype, [values[f] for f in gate.fanins], full)
    return values


def _eval_words(gtype, words, full):
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = full
        for w in words:
            acc &= w
        return acc if gtype is GateType.AND else acc ^ full
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = 0
        for w in words:
            acc |= w
        return acc if gtype is GateType.OR else acc ^ full
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = 0
        for w in words:
            acc ^= w
        return acc if gtype is GateType.XOR else acc ^ full
    if gtype is GateType.NOT:
        return words[0] ^ full
    if gtype is GateType.BUF:
        return words[0]
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return full
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def single_eval(circuit, input_values, state_values):
    """Single-pattern convenience wrapper; booleans in, booleans out."""
    env = {net: int(bool(v)) for net, v in input_values.items()}
    env.update({net: int(bool(v)) for net, v in state_values.items()})
    words = bit_parallel_eval(circuit, env, 1)
    return {net: bool(v) for net, v in words.items()}


def next_state(circuit, values):
    """Next-state masks from the full net valuation of one frame."""
    return {name: values[reg.data_in] for name, reg in circuit.registers.items()}


class CompiledSim:
    """A compiled bit-parallel simulation kernel for one circuit.

    ``bit_parallel_eval`` walks ``topo_order()`` and the gate dicts on every
    frame; profiles of partition seeding and counterexample replay are
    dominated by those per-gate dict lookups.  ``CompiledSim`` flattens the
    structure once: the topological order and fanin lists are compiled into a
    single Python function (one expression per gate over local variables)
    that maps leaf words to the full frame valuation as a flat list.

    Slot layout (``net_order``): primary inputs, then register outputs (both
    in declaration order), then gates in topological order.  ``BUF`` and
    constant gates compile to aliases — zero per-frame cost.

    The kernel is semantics-identical to :func:`bit_parallel_eval` (pinned by
    property tests); three-valued simulation is deliberately not compiled.
    """

    backend = "compiled"

    def __init__(self, circuit):
        circuit.validate()
        self.circuit = circuit
        self.inputs = list(circuit.inputs)
        self.registers = list(circuit.registers)
        order = circuit.topo_order()
        self.net_order = self.inputs + self.registers + order
        self._index = {net: i for i, net in enumerate(self.net_order)}
        self.next_state_slots = [
            self._index[reg.data_in] for reg in circuit.registers.values()
        ]
        self._kernel = self._compile(order)

    def index(self, net):
        """Slot of ``net`` in the frame word list / ``net_order``."""
        return self._index[net]

    # -- code generation --------------------------------------------------

    _OPS = {
        GateType.AND: (" & ", ""),
        GateType.NAND: (" & ", " ^ F"),
        GateType.OR: (" | ", ""),
        GateType.NOR: (" | ", " ^ F"),
        GateType.XOR: (" ^ ", ""),
        GateType.XNOR: (" ^ ", " ^ F"),
    }

    def _compile(self, order):
        # One local name per leaf, one assignment per real gate; BUF/CONST
        # outputs alias their source expression instead of emitting code.
        names = {}
        for i, net in enumerate(self.inputs):
            names[net] = "i{}".format(i)
        for i, net in enumerate(self.registers):
            names[net] = "r{}".format(i)
        lines = []
        n_leaves = len(self.inputs) + len(self.registers)
        if n_leaves:
            leaf_names = [names[net] for net in self.inputs + self.registers]
            lines.append(" {}{} = E".format(
                ", ".join(leaf_names), "," if n_leaves == 1 else ""))
        gates = self.circuit.gates
        for j, net in enumerate(order):
            gate = gates[net]
            gtype = gate.gtype
            if gtype is GateType.CONST0:
                names[net] = "0"
                continue
            if gtype is GateType.CONST1:
                names[net] = "F"
                continue
            operands = [names[f] for f in gate.fanins]
            if gtype is GateType.BUF:
                names[net] = operands[0]
                continue
            if gtype is GateType.NOT:
                expr = "{} ^ F".format(operands[0])
            else:
                try:
                    joiner, suffix = self._OPS[gtype]
                except KeyError:
                    raise NetlistError(
                        "unknown gate type: {!r}".format(gtype)) from None
                expr = joiner.join(operands)
                if suffix:
                    expr = "({}){}".format(expr, suffix) if len(operands) > 1 \
                        else expr + suffix
            name = "g{}".format(j)
            names[net] = name
            lines.append(" {} = {}".format(name, expr))
        lines.append(" return [{}]".format(
            ", ".join(names[net] for net in self.net_order)))
        src = "def _kernel(E, F):\n" + "\n".join(lines or [" return []"])
        namespace = {}
        exec(compile(src, "<CompiledSim:{}>".format(self.circuit.name),
                     "exec"), namespace)
        return namespace["_kernel"]

    # -- evaluation -------------------------------------------------------

    def eval_words(self, leaves, full):
        """One frame from pre-masked leaf words (inputs then registers)."""
        return self._kernel(leaves, full)

    def eval(self, env, width):
        """Drop-in equivalent of ``bit_parallel_eval(circuit, env, width)``."""
        full = _mask(width)
        try:
            leaves = [env[net] & full for net in self.inputs]
            leaves += [env[net] & full for net in self.registers]
        except KeyError as exc:
            raise _missing_env_error(self.circuit, exc.args[0]) from None
        return dict(zip(self.net_order, self._kernel(leaves, full)))

    def next_state_words(self, words):
        """Register next-state words from a frame's full word list."""
        return [words[i] for i in self.next_state_slots]

    def replay(self, initial_state, input_frames):
        """Single-pattern replay; mirrors ``cexsplit.replay_pattern``.

        ``initial_state`` maps register nets to 0/1; ``input_frames`` is one
        ``{input: 0/1}`` dict per frame.  Returns the full 0/1 valuation dict
        of every frame.
        """
        state = [int(bool(initial_state[net])) for net in self.registers]
        frames = []
        for inputs in input_frames:
            leaves = [int(bool(inputs[net])) for net in self.inputs] + state
            words = self._kernel(leaves, 1)
            frames.append(dict(zip(self.net_order, words)))
            state = [words[i] for i in self.next_state_slots]
        return frames

    def replay_words(self, state_words, input_frame_words, width):
        """Multi-pattern replay over packed words.

        ``state_words`` packs one bit per pattern for each register (in
        ``self.registers`` order); ``input_frame_words`` is one word list per
        frame (in ``self.inputs`` order).  Returns the full word list of
        every frame — the parallel refinement engine replays *all* of a
        round's counterexamples in one pass this way.
        """
        full = _mask(width)
        state = [w & full for w in state_words]
        frames = []
        for inputs in input_frame_words:
            leaves = [w & full for w in inputs] + state
            words = self._kernel(leaves, full)
            frames.append(words)
            state = [words[i] for i in self.next_state_slots]
        return frames


#: MatrixSim stage opcodes (one vectorized numpy op per stage).
_OP_AND, _OP_OR, _OP_XOR, _OP_NOT, _OP_COPY, _OP_FILL0, _OP_FILL1 = range(7)

_GATE_BASE = {
    GateType.AND: (_OP_AND, False), GateType.NAND: (_OP_AND, True),
    GateType.OR: (_OP_OR, False), GateType.NOR: (_OP_OR, True),
    GateType.XOR: (_OP_XOR, False), GateType.XNOR: (_OP_XOR, True),
}

#: Value of a zero-fanin gate, per :func:`_eval_words` fold identities.
_GATE_EMPTY = {
    GateType.AND: _OP_FILL1, GateType.NAND: _OP_FILL0,
    GateType.OR: _OP_FILL0, GateType.NOR: _OP_FILL1,
    GateType.XOR: _OP_FILL0, GateType.XNOR: _OP_FILL1,
}


class MatrixSim:
    """A numpy bit-matrix simulation kernel: word-parallel × lane-parallel.

    ``MatrixSim`` holds a frame valuation as a ``(n_slots, n_lanes)``
    ``uint64`` matrix — 64 patterns per lane — evaluated level by level:
    every gate is decomposed into binary ops at build time, the ops are
    levelized, and each (level, opcode) group becomes **one** fancy-indexed
    numpy op (``M[dst] = M[a] & M[b]``) covering all its gates across all
    lanes.

    Measured honestly, that matrix pass does **not** beat
    :class:`CompiledSim` on plain frame evaluation: CPython big-integer
    bitwise ops are already word-parallel C loops with less per-op overhead
    than a numpy dispatch, at every width (see ``docs/PERFORMANCE.md``).
    Where the matrix representation *does* pay is packed counterexample
    replay (:meth:`replay_packed`): the generic path spends
    ``O(patterns × nets)`` pure-Python bit-twiddling transposing patterns
    into words, which here becomes a handful of vectorized
    ``unpackbits``/transpose/``packbits`` calls.  That transpose is the hot
    half of the parallel refinement engine's per-round merge, so the
    backend is wired exactly there — plus wide partition seeding and fuzz
    replay batteries, which share the same packing shape.

    Interface parity: slot layout (``net_order``), ``index()``,
    ``eval``/``eval_words``/``replay``/``replay_words``/``next_state_words``
    all mirror :class:`CompiledSim` bit for bit (pinned by
    ``tests/netlist/test_matrix_sim.py``), including the missing-env
    :class:`NetlistError` category naming.  By default every eval-shaped
    call takes the embedded compiled scalar kernel (the measured fast
    path); set ``narrow_width`` to an integer to route widths above it
    through the pure matrix pass instead (``narrow_width = 0`` forces it —
    the identity tests do).  Both paths are semantics-identical, so the
    switch is invisible.

    Requires numpy; construction raises :class:`NetlistError` without it
    (:func:`make_sim` with ``backend="auto"`` falls back instead).
    """

    backend = "matrix"

    #: Widths at or below this take the compiled scalar kernel for
    #: eval-shaped calls; ``None`` means "always" (the measured default —
    #: the matrix pass only wins on :meth:`replay_packed`).
    narrow_width = None

    def __init__(self, circuit):
        np = _numpy()
        if np is None:
            raise NetlistError(
                "sim backend 'matrix' requires numpy, which is not "
                "installed; use backend 'compiled' or 'auto'")
        self._np = np
        # The scalar kernel doubles as the narrow-width fast path and the
        # single source of the slot layout, so both backends agree on
        # net_order/index() by construction.
        self._scalar = CompiledSim(circuit)
        self.circuit = self._scalar.circuit
        self.inputs = self._scalar.inputs
        self.registers = self._scalar.registers
        self.net_order = self._scalar.net_order
        self._index = self._scalar._index
        self.next_state_slots = self._scalar.next_state_slots
        self._n_named = len(self.net_order)
        self._stages, self._n_slots = self._compile()

    def index(self, net):
        """Slot of ``net`` in the frame word list / ``net_order``."""
        return self._index[net]

    # -- program construction ---------------------------------------------

    def _compile(self):
        """Decompose gates into levelized binary ops; returns (stages, slots).

        Each op is ``(level, opcode, dst, a, b)`` over slot indices; ops are
        grouped by ``(level, opcode)`` into numpy index arrays.  Multi-fanin
        gates chain through their own destination slot (each rewrite bumps
        the slot's level, so the grouping never reorders a chain); inverted
        gates append an in-place NOT.
        """
        np = self._np
        index = self._index
        level = {}
        for i in range(len(self.inputs) + len(self.registers)):
            level[i] = 0
        ops = []

        def emit(opcode, dst, a=0, b=0):
            srcs = []
            if opcode in (_OP_AND, _OP_OR, _OP_XOR):
                srcs = [a, b]
            elif opcode in (_OP_NOT, _OP_COPY):
                srcs = [a]
            lvl = 1 + max([level.get(s, 0) for s in srcs] or [0])
            level[dst] = lvl
            ops.append((lvl, opcode, dst, a, b))

        gates = self.circuit.gates
        for net in self.circuit.topo_order():
            gate = gates[net]
            dst = index[net]
            gtype = gate.gtype
            if gtype is GateType.CONST0:
                emit(_OP_FILL0, dst)
                continue
            if gtype is GateType.CONST1:
                emit(_OP_FILL1, dst)
                continue
            fanins = [index[f] for f in gate.fanins]
            if gtype is GateType.BUF:
                emit(_OP_COPY, dst, fanins[0])
                continue
            if gtype is GateType.NOT:
                emit(_OP_NOT, dst, fanins[0])
                continue
            try:
                opcode, inverted = _GATE_BASE[gtype]
            except KeyError:
                raise NetlistError(
                    "unknown gate type: {!r}".format(gtype)) from None
            if not fanins:
                emit(_GATE_EMPTY[gtype], dst)
                continue
            if len(fanins) == 1:
                emit(_OP_NOT if inverted else _OP_COPY, dst, fanins[0])
                continue
            emit(opcode, dst, fanins[0], fanins[1])
            for extra in fanins[2:]:
                emit(opcode, dst, dst, extra)
            if inverted:
                emit(_OP_NOT, dst, dst)

        groups = {}
        for lvl, opcode, dst, a, b in ops:
            groups.setdefault((lvl, opcode), []).append((dst, a, b))
        stages = []
        for (lvl, opcode), members in sorted(groups.items()):
            dsts = np.array([m[0] for m in members], dtype=np.intp)
            srcs_a = np.array([m[1] for m in members], dtype=np.intp)
            srcs_b = np.array([m[2] for m in members], dtype=np.intp)
            stages.append((opcode, dsts, srcs_a, srcs_b))
        return stages, self._n_named

    # -- lane plumbing ----------------------------------------------------

    @staticmethod
    def _lane_count(width):
        return max(1, (width + 63) // 64)

    def _words_to_lanes(self, words, n_lanes):
        """Pack Python ints (one per row) into a ``(rows, n_lanes)`` matrix."""
        np = self._np
        nbytes = n_lanes * 8
        buf = b"".join(w.to_bytes(nbytes, "little") for w in words)
        lanes = np.frombuffer(buf, dtype="<u8").reshape(len(words), n_lanes)
        return lanes.astype(np.uint64, copy=True)

    def _lanes_to_words(self, matrix, full):
        """Rows of a lane matrix back to width-masked Python ints."""
        return [int.from_bytes(row.tobytes(), "little") & full
                for row in matrix]

    def _run_frame(self, M):
        """Evaluate one frame in place; ``M`` is the full slot matrix."""
        for opcode, dst, a, b in self._stages:
            if opcode == _OP_AND:
                M[dst] = M[a] & M[b]
            elif opcode == _OP_OR:
                M[dst] = M[a] | M[b]
            elif opcode == _OP_XOR:
                M[dst] = M[a] ^ M[b]
            elif opcode == _OP_NOT:
                M[dst] = ~M[a]
            elif opcode == _OP_COPY:
                M[dst] = M[a]
            elif opcode == _OP_FILL0:
                M[dst] = 0
            else:  # _OP_FILL1
                M[dst] = ~self._np.uint64(0)
        return M

    def _frame_matrix(self, leaf_words, n_lanes):
        np = self._np
        M = np.zeros((self._n_slots, n_lanes), dtype=np.uint64)
        M[:len(leaf_words)] = self._words_to_lanes(leaf_words, n_lanes)
        return self._run_frame(M)

    # -- evaluation (CompiledSim-parity surface) --------------------------

    def _use_scalar(self, width):
        return self.narrow_width is None or width <= self.narrow_width

    def eval_words(self, leaves, full):
        """One frame from pre-masked leaf words (inputs then registers)."""
        width = full.bit_length()
        if self._use_scalar(width):
            return self._scalar.eval_words(leaves, full)
        M = self._frame_matrix(leaves, self._lane_count(width))
        return self._lanes_to_words(M, full)

    def eval(self, env, width):
        """Drop-in equivalent of ``bit_parallel_eval(circuit, env, width)``."""
        full = _mask(width)
        try:
            leaves = [env[net] & full for net in self.inputs]
            leaves += [env[net] & full for net in self.registers]
        except KeyError as exc:
            raise _missing_env_error(self.circuit, exc.args[0]) from None
        return dict(zip(self.net_order, self.eval_words(leaves, full)))

    def next_state_words(self, words):
        """Register next-state words from a frame's full word list."""
        return [words[i] for i in self.next_state_slots]

    def replay(self, initial_state, input_frames):
        """Single-pattern replay; mirrors ``CompiledSim.replay``."""
        if self._use_scalar(1):
            return self._scalar.replay(initial_state, input_frames)
        state = [int(bool(initial_state[net])) for net in self.registers]
        frames = []
        for inputs in input_frames:
            leaves = [int(bool(inputs[net])) for net in self.inputs] + state
            words = self.eval_words(leaves, 1)
            frames.append(dict(zip(self.net_order, words)))
            state = [words[i] for i in self.next_state_slots]
        return frames

    def replay_words(self, state_words, input_frame_words, width):
        """Multi-pattern replay over packed words, all frames lane-parallel.

        The state matrix stays in lane space between frames — only the
        per-frame outputs are unpacked — so an n-frame replay costs n
        matrix passes plus one int conversion per frame, not per gate.
        """
        full = _mask(width)
        if self._use_scalar(width):
            return self._scalar.replay_words(state_words,
                                             input_frame_words, width)
        np = self._np
        n_lanes = self._lane_count(width)
        n_inputs = len(self.inputs)
        state = self._words_to_lanes([w & full for w in state_words],
                                     n_lanes) if state_words else \
            np.zeros((0, n_lanes), dtype=np.uint64)
        frames = []
        for inputs in input_frame_words:
            M = np.zeros((self._n_slots, n_lanes), dtype=np.uint64)
            if n_inputs:
                M[:n_inputs] = self._words_to_lanes(
                    [w & full for w in inputs], n_lanes)
            M[n_inputs:n_inputs + len(self.registers)] = state
            self._run_frame(M)
            frames.append(self._lanes_to_words(M, full))
            state = M[self.next_state_slots]
        return frames

    # -- vectorized packed-pattern replay ---------------------------------

    def _bits_matrix(self, pattern_ints, n_rows, n_lanes):
        """Transpose ``len(pattern_ints)`` packed ints into a lane matrix.

        Bit ``r`` of ``pattern_ints[i]`` lands in row ``r``, pattern-bit
        ``i`` — the transpose the generic :func:`~repro.core.cexsplit.
        replay_packed` performs one Python bit at a time.  Here it is three
        vectorized calls: bytes → ``unpackbits`` → transpose →
        ``packbits``, then a zero-padded uint64 view.
        """
        np = self._np
        if n_rows == 0:
            return np.zeros((0, n_lanes), dtype=np.uint64)
        n = len(pattern_ints)
        nbytes = (n_rows + 7) // 8
        buf = b"".join(v.to_bytes(nbytes, "little") for v in pattern_ints)
        rows = np.frombuffer(buf, dtype=np.uint8).reshape(n, nbytes)
        bits = np.unpackbits(rows, axis=1, bitorder="little", count=n_rows)
        packed = np.packbits(bits.T, axis=1, bitorder="little")
        out = np.zeros((n_rows, n_lanes * 8), dtype=np.uint8)
        out[:, :packed.shape[1]] = packed
        return out.view("<u8").astype(np.uint64)

    def replay_packed(self, patterns):
        """Replay packed ``(state_bits, frame_bits)`` patterns lane-parallel.

        Same contract as :func:`repro.core.cexsplit.replay_packed` (pattern
        *i* occupies bit *i* of every returned word), but the
        patterns→words transpose runs as vectorized numpy instead of an
        ``O(patterns × nets)`` Python loop — the dominant cost of the
        generic path once a refinement round streams back more than a
        word's worth of counterexamples.
        """
        np = self._np
        width = len(patterns)
        if width == 0:
            return []
        n_frames = len(patterns[0][1])
        for _, frame_bits in patterns:
            if len(frame_bits) != n_frames:
                raise ValueError("patterns disagree on frame count")
        full = _mask(width)
        n_lanes = self._lane_count(width)
        n_inputs = len(self.inputs)
        n_regs = len(self.registers)
        state = self._bits_matrix([p[0] for p in patterns], n_regs, n_lanes)
        frames = []
        M = np.zeros((self._n_slots, n_lanes), dtype=np.uint64)
        for t in range(n_frames):
            M[:n_inputs] = self._bits_matrix(
                [p[1][t] for p in patterns], n_inputs, n_lanes)
            M[n_inputs:n_inputs + n_regs] = state
            self._run_frame(M)
            frames.append(self._lanes_to_words(M, full))
            state = M[self.next_state_slots].copy()
        return frames


def make_sim(circuit, backend="auto"):
    """Build the simulation kernel for ``circuit``.

    ``backend`` is one of :data:`SIM_BACKENDS`:

    * ``"compiled"`` — the exec-compiled big-integer kernel, always
      available;
    * ``"matrix"`` — the numpy lane-parallel kernel; raises
      :class:`NetlistError` when numpy is not installed;
    * ``"auto"`` (default) — ``matrix`` when numpy is importable,
      ``compiled`` otherwise.  This is the runtime selection partition
      seeding, packed counterexample replay and fuzz replay go through.
    """
    if backend == "compiled":
        return CompiledSim(circuit)
    if backend == "matrix":
        return MatrixSim(circuit)
    if backend == "auto":
        if _numpy() is not None:
            return MatrixSim(circuit)
        return CompiledSim(circuit)
    raise NetlistError(
        "unknown sim backend {!r} (choose one of {})".format(
            backend, "|".join(SIM_BACKENDS)))


class SequentialSimulator:
    """Runs a circuit from its initial state with random input patterns.

    All ``width`` parallel patterns start in the circuit's initial state and
    evolve independently under per-frame random inputs.  Per-net *signatures*
    (the concatenation of all frame masks) distinguish any two signals that
    differ in some simulated reachable state — a sound pre-filter for the
    signal correspondence partition (§4 of the paper).
    """

    def __init__(self, circuit, width=64, seed=2024, compiled=None):
        self.sim = compiled if compiled is not None else CompiledSim(circuit)
        self.circuit = circuit
        self.width = width
        self.rng = random.Random(seed)
        full = _mask(width)
        init = circuit.initial_state()
        self._state_words = [
            full if init[net] else 0 for net in self.sim.registers
        ]
        self._signature_words = [0] * len(self.sim.net_order)
        self.frames_run = 0
        self.first_frame_inputs = None

    @property
    def state(self):
        """Current register words (``{register: word}``)."""
        return dict(zip(self.sim.registers, self._state_words))

    @property
    def signatures(self):
        """Per-net signatures (``{net: int}``) accumulated so far."""
        return dict(zip(self.sim.net_order, self._signature_words))

    def step(self):
        """Advance one frame; returns the frame's full valuation."""
        width = self.width
        rng = self.rng
        inputs = [rng.getrandbits(width) for _ in self.sim.inputs]
        if self.first_frame_inputs is None:
            self.first_frame_inputs = dict(zip(self.sim.inputs, inputs))
        words = self.sim.eval_words(inputs + self._state_words, _mask(width))
        sigs = self._signature_words
        for i, word in enumerate(words):
            sigs[i] = (sigs[i] << width) | word
        self._state_words = self.sim.next_state_words(words)
        self.frames_run += 1
        return dict(zip(self.sim.net_order, words))

    def run(self, frames):
        """Run ``frames`` frames; returns the signature map."""
        for _ in range(frames):
            self.step()
        return self.signatures

    def signature_bits(self):
        """Total number of signature bits accumulated so far."""
        return self.frames_run * self.width


# ----------------------------------------------------------------------
# Three-valued simulation
# ----------------------------------------------------------------------

X = (0, 0)


def tv_const(value, width=1):
    """Ternary constant: True/False/None → (ones, zeros)."""
    full = _mask(width)
    if value is None:
        return (0, 0)
    return (full, 0) if value else (0, full)


def ternary_eval(circuit, env, width=1):
    """Three-valued evaluation of one frame.

    ``env`` maps inputs and register outputs to ``(ones, zeros)`` pairs.
    Returns the same encoding for every net.
    """
    values = {}
    for net in list(circuit.inputs) + list(circuit.registers):
        values[net] = env.get(net, X)
    full = _mask(width)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        operands = [values[f] for f in gate.fanins]
        values[name] = _ternary_gate(gate.gtype, operands, full)
    return values


def _ternary_gate(gtype, operands, full):
    if gtype in (GateType.AND, GateType.NAND):
        ones, zeros = full, 0
        for o, z in operands:
            ones &= o
            zeros |= z
        if gtype is GateType.NAND:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype in (GateType.OR, GateType.NOR):
        ones, zeros = 0, full
        for o, z in operands:
            ones |= o
            zeros &= z
        if gtype is GateType.NOR:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype in (GateType.XOR, GateType.XNOR):
        ones, zeros = operands[0]
        for o, z in operands[1:]:
            ones, zeros = (ones & z) | (zeros & o), (ones & o) | (zeros & z)
        if gtype is GateType.XNOR:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype is GateType.NOT:
        ones, zeros = operands[0]
        return zeros, ones
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return 0, full
    if gtype is GateType.CONST1:
        return full, 0
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def x_initialized_fixpoint(circuit, max_frames=64):
    """Three-valued reachability of register values from the all-X state.

    Repeatedly simulates with X inputs until register knowledge stabilizes.
    Registers that settle to a known constant regardless of inputs are
    self-initializing; the rest stay X.  Returns ``{register: True/False/None}``.
    """
    state = {net: X for net in circuit.registers}
    for _ in range(max_frames):
        env = {net: X for net in circuit.inputs}
        env.update(state)
        values = ternary_eval(circuit, env)
        new_state = {
            name: values[reg.data_in] for name, reg in circuit.registers.items()
        }
        if new_state == state:
            break
        state = new_state
    result = {}
    for net, (ones, zeros) in state.items():
        if ones and not zeros:
            result[net] = True
        elif zeros and not ones:
            result[net] = False
        else:
            result[net] = None
    return result
