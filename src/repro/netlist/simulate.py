"""Bit-parallel and three-valued simulation of sequential circuits.

Bit-parallel simulation packs ``width`` independent patterns into Python
integers (one bit per pattern), which is how the paper's implementation uses
"sequential simulation of the product machine with random input vectors" to
pre-partition the candidate equivalence classes cheaply.

Three-valued (0/1/X) simulation is provided for initialization analysis; a
value is a pair ``(ones, zeros)`` of bit masks — a bit set in neither mask is
unknown.
"""

import random

from .circuit import GateType
from ..errors import NetlistError


def _mask(width):
    return (1 << width) - 1


def _env_net_category(circuit, net):
    """Category of a net an evaluator expected in ``env``.

    Exhaustive on purpose: a net in *neither* set (possible when callers
    hand-build env keys) must not be mislabelled as an input or register.
    """
    if net in circuit.inputs:
        return "input"
    if net in circuit.registers:
        return "register"
    return "undefined"


def _missing_env_error(circuit, net):
    return NetlistError(
        "bit_parallel_eval: env is missing a value for {} net {!r}".format(
            _env_net_category(circuit, net), net
        )
    )


def bit_parallel_eval(circuit, env, width):
    """Evaluate all nets for one time frame.

    ``env`` maps every primary input and register-output net to an integer of
    ``width`` pattern bits.  Returns ``{net: int}`` covering every net.
    """
    values = {}
    full = _mask(width)
    try:
        for net in circuit.inputs:
            values[net] = env[net] & full
        for net in circuit.registers:
            values[net] = env[net] & full
    except KeyError as exc:
        raise _missing_env_error(circuit, exc.args[0]) from None
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = _eval_words(gate.gtype, [values[f] for f in gate.fanins], full)
    return values


def _eval_words(gtype, words, full):
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = full
        for w in words:
            acc &= w
        return acc if gtype is GateType.AND else acc ^ full
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = 0
        for w in words:
            acc |= w
        return acc if gtype is GateType.OR else acc ^ full
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = 0
        for w in words:
            acc ^= w
        return acc if gtype is GateType.XOR else acc ^ full
    if gtype is GateType.NOT:
        return words[0] ^ full
    if gtype is GateType.BUF:
        return words[0]
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return full
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def single_eval(circuit, input_values, state_values):
    """Single-pattern convenience wrapper; booleans in, booleans out."""
    env = {net: int(bool(v)) for net, v in input_values.items()}
    env.update({net: int(bool(v)) for net, v in state_values.items()})
    words = bit_parallel_eval(circuit, env, 1)
    return {net: bool(v) for net, v in words.items()}


def next_state(circuit, values):
    """Next-state masks from the full net valuation of one frame."""
    return {name: values[reg.data_in] for name, reg in circuit.registers.items()}


class CompiledSim:
    """A compiled bit-parallel simulation kernel for one circuit.

    ``bit_parallel_eval`` walks ``topo_order()`` and the gate dicts on every
    frame; profiles of partition seeding and counterexample replay are
    dominated by those per-gate dict lookups.  ``CompiledSim`` flattens the
    structure once: the topological order and fanin lists are compiled into a
    single Python function (one expression per gate over local variables)
    that maps leaf words to the full frame valuation as a flat list.

    Slot layout (``net_order``): primary inputs, then register outputs (both
    in declaration order), then gates in topological order.  ``BUF`` and
    constant gates compile to aliases — zero per-frame cost.

    The kernel is semantics-identical to :func:`bit_parallel_eval` (pinned by
    property tests); three-valued simulation is deliberately not compiled.
    """

    def __init__(self, circuit):
        circuit.validate()
        self.circuit = circuit
        self.inputs = list(circuit.inputs)
        self.registers = list(circuit.registers)
        order = circuit.topo_order()
        self.net_order = self.inputs + self.registers + order
        self._index = {net: i for i, net in enumerate(self.net_order)}
        self.next_state_slots = [
            self._index[reg.data_in] for reg in circuit.registers.values()
        ]
        self._kernel = self._compile(order)

    def index(self, net):
        """Slot of ``net`` in the frame word list / ``net_order``."""
        return self._index[net]

    # -- code generation --------------------------------------------------

    _OPS = {
        GateType.AND: (" & ", ""),
        GateType.NAND: (" & ", " ^ F"),
        GateType.OR: (" | ", ""),
        GateType.NOR: (" | ", " ^ F"),
        GateType.XOR: (" ^ ", ""),
        GateType.XNOR: (" ^ ", " ^ F"),
    }

    def _compile(self, order):
        # One local name per leaf, one assignment per real gate; BUF/CONST
        # outputs alias their source expression instead of emitting code.
        names = {}
        for i, net in enumerate(self.inputs):
            names[net] = "i{}".format(i)
        for i, net in enumerate(self.registers):
            names[net] = "r{}".format(i)
        lines = []
        n_leaves = len(self.inputs) + len(self.registers)
        if n_leaves:
            leaf_names = [names[net] for net in self.inputs + self.registers]
            lines.append(" {}{} = E".format(
                ", ".join(leaf_names), "," if n_leaves == 1 else ""))
        gates = self.circuit.gates
        for j, net in enumerate(order):
            gate = gates[net]
            gtype = gate.gtype
            if gtype is GateType.CONST0:
                names[net] = "0"
                continue
            if gtype is GateType.CONST1:
                names[net] = "F"
                continue
            operands = [names[f] for f in gate.fanins]
            if gtype is GateType.BUF:
                names[net] = operands[0]
                continue
            if gtype is GateType.NOT:
                expr = "{} ^ F".format(operands[0])
            else:
                try:
                    joiner, suffix = self._OPS[gtype]
                except KeyError:
                    raise NetlistError(
                        "unknown gate type: {!r}".format(gtype)) from None
                expr = joiner.join(operands)
                if suffix:
                    expr = "({}){}".format(expr, suffix) if len(operands) > 1 \
                        else expr + suffix
            name = "g{}".format(j)
            names[net] = name
            lines.append(" {} = {}".format(name, expr))
        lines.append(" return [{}]".format(
            ", ".join(names[net] for net in self.net_order)))
        src = "def _kernel(E, F):\n" + "\n".join(lines or [" return []"])
        namespace = {}
        exec(compile(src, "<CompiledSim:{}>".format(self.circuit.name),
                     "exec"), namespace)
        return namespace["_kernel"]

    # -- evaluation -------------------------------------------------------

    def eval_words(self, leaves, full):
        """One frame from pre-masked leaf words (inputs then registers)."""
        return self._kernel(leaves, full)

    def eval(self, env, width):
        """Drop-in equivalent of ``bit_parallel_eval(circuit, env, width)``."""
        full = _mask(width)
        try:
            leaves = [env[net] & full for net in self.inputs]
            leaves += [env[net] & full for net in self.registers]
        except KeyError as exc:
            raise _missing_env_error(self.circuit, exc.args[0]) from None
        return dict(zip(self.net_order, self._kernel(leaves, full)))

    def next_state_words(self, words):
        """Register next-state words from a frame's full word list."""
        return [words[i] for i in self.next_state_slots]

    def replay(self, initial_state, input_frames):
        """Single-pattern replay; mirrors ``cexsplit.replay_pattern``.

        ``initial_state`` maps register nets to 0/1; ``input_frames`` is one
        ``{input: 0/1}`` dict per frame.  Returns the full 0/1 valuation dict
        of every frame.
        """
        state = [int(bool(initial_state[net])) for net in self.registers]
        frames = []
        for inputs in input_frames:
            leaves = [int(bool(inputs[net])) for net in self.inputs] + state
            words = self._kernel(leaves, 1)
            frames.append(dict(zip(self.net_order, words)))
            state = [words[i] for i in self.next_state_slots]
        return frames

    def replay_words(self, state_words, input_frame_words, width):
        """Multi-pattern replay over packed words.

        ``state_words`` packs one bit per pattern for each register (in
        ``self.registers`` order); ``input_frame_words`` is one word list per
        frame (in ``self.inputs`` order).  Returns the full word list of
        every frame — the parallel refinement engine replays *all* of a
        round's counterexamples in one pass this way.
        """
        full = _mask(width)
        state = [w & full for w in state_words]
        frames = []
        for inputs in input_frame_words:
            leaves = [w & full for w in inputs] + state
            words = self._kernel(leaves, full)
            frames.append(words)
            state = [words[i] for i in self.next_state_slots]
        return frames


class SequentialSimulator:
    """Runs a circuit from its initial state with random input patterns.

    All ``width`` parallel patterns start in the circuit's initial state and
    evolve independently under per-frame random inputs.  Per-net *signatures*
    (the concatenation of all frame masks) distinguish any two signals that
    differ in some simulated reachable state — a sound pre-filter for the
    signal correspondence partition (§4 of the paper).
    """

    def __init__(self, circuit, width=64, seed=2024, compiled=None):
        self.sim = compiled if compiled is not None else CompiledSim(circuit)
        self.circuit = circuit
        self.width = width
        self.rng = random.Random(seed)
        full = _mask(width)
        init = circuit.initial_state()
        self._state_words = [
            full if init[net] else 0 for net in self.sim.registers
        ]
        self._signature_words = [0] * len(self.sim.net_order)
        self.frames_run = 0
        self.first_frame_inputs = None

    @property
    def state(self):
        """Current register words (``{register: word}``)."""
        return dict(zip(self.sim.registers, self._state_words))

    @property
    def signatures(self):
        """Per-net signatures (``{net: int}``) accumulated so far."""
        return dict(zip(self.sim.net_order, self._signature_words))

    def step(self):
        """Advance one frame; returns the frame's full valuation."""
        width = self.width
        rng = self.rng
        inputs = [rng.getrandbits(width) for _ in self.sim.inputs]
        if self.first_frame_inputs is None:
            self.first_frame_inputs = dict(zip(self.sim.inputs, inputs))
        words = self.sim.eval_words(inputs + self._state_words, _mask(width))
        sigs = self._signature_words
        for i, word in enumerate(words):
            sigs[i] = (sigs[i] << width) | word
        self._state_words = self.sim.next_state_words(words)
        self.frames_run += 1
        return dict(zip(self.sim.net_order, words))

    def run(self, frames):
        """Run ``frames`` frames; returns the signature map."""
        for _ in range(frames):
            self.step()
        return self.signatures

    def signature_bits(self):
        """Total number of signature bits accumulated so far."""
        return self.frames_run * self.width


# ----------------------------------------------------------------------
# Three-valued simulation
# ----------------------------------------------------------------------

X = (0, 0)


def tv_const(value, width=1):
    """Ternary constant: True/False/None → (ones, zeros)."""
    full = _mask(width)
    if value is None:
        return (0, 0)
    return (full, 0) if value else (0, full)


def ternary_eval(circuit, env, width=1):
    """Three-valued evaluation of one frame.

    ``env`` maps inputs and register outputs to ``(ones, zeros)`` pairs.
    Returns the same encoding for every net.
    """
    values = {}
    for net in list(circuit.inputs) + list(circuit.registers):
        values[net] = env.get(net, X)
    full = _mask(width)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        operands = [values[f] for f in gate.fanins]
        values[name] = _ternary_gate(gate.gtype, operands, full)
    return values


def _ternary_gate(gtype, operands, full):
    if gtype in (GateType.AND, GateType.NAND):
        ones, zeros = full, 0
        for o, z in operands:
            ones &= o
            zeros |= z
        if gtype is GateType.NAND:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype in (GateType.OR, GateType.NOR):
        ones, zeros = 0, full
        for o, z in operands:
            ones |= o
            zeros &= z
        if gtype is GateType.NOR:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype in (GateType.XOR, GateType.XNOR):
        ones, zeros = operands[0]
        for o, z in operands[1:]:
            ones, zeros = (ones & z) | (zeros & o), (ones & o) | (zeros & z)
        if gtype is GateType.XNOR:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype is GateType.NOT:
        ones, zeros = operands[0]
        return zeros, ones
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return 0, full
    if gtype is GateType.CONST1:
        return full, 0
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def x_initialized_fixpoint(circuit, max_frames=64):
    """Three-valued reachability of register values from the all-X state.

    Repeatedly simulates with X inputs until register knowledge stabilizes.
    Registers that settle to a known constant regardless of inputs are
    self-initializing; the rest stay X.  Returns ``{register: True/False/None}``.
    """
    state = {net: X for net in circuit.registers}
    for _ in range(max_frames):
        env = {net: X for net in circuit.inputs}
        env.update(state)
        values = ternary_eval(circuit, env)
        new_state = {
            name: values[reg.data_in] for name, reg in circuit.registers.items()
        }
        if new_state == state:
            break
        state = new_state
    result = {}
    for net, (ones, zeros) in state.items():
        if ones and not zeros:
            result[net] = True
        elif zeros and not ones:
            result[net] = False
        else:
            result[net] = None
    return result
