"""Bit-parallel and three-valued simulation of sequential circuits.

Bit-parallel simulation packs ``width`` independent patterns into Python
integers (one bit per pattern), which is how the paper's implementation uses
"sequential simulation of the product machine with random input vectors" to
pre-partition the candidate equivalence classes cheaply.

Three-valued (0/1/X) simulation is provided for initialization analysis; a
value is a pair ``(ones, zeros)`` of bit masks — a bit set in neither mask is
unknown.
"""

import random

from .circuit import GateType
from ..errors import NetlistError


def _mask(width):
    return (1 << width) - 1


def bit_parallel_eval(circuit, env, width):
    """Evaluate all nets for one time frame.

    ``env`` maps every primary input and register-output net to an integer of
    ``width`` pattern bits.  Returns ``{net: int}`` covering every net.
    """
    values = {}
    full = _mask(width)
    try:
        for net in circuit.inputs:
            values[net] = env[net] & full
        for net in circuit.registers:
            values[net] = env[net] & full
    except KeyError as exc:
        raise NetlistError(
            "bit_parallel_eval: env is missing a value for {} net {!r}".format(
                "input" if exc.args[0] in circuit.inputs else "register",
                exc.args[0],
            )
        ) from None
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = _eval_words(gate.gtype, [values[f] for f in gate.fanins], full)
    return values


def _eval_words(gtype, words, full):
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = full
        for w in words:
            acc &= w
        return acc if gtype is GateType.AND else acc ^ full
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = 0
        for w in words:
            acc |= w
        return acc if gtype is GateType.OR else acc ^ full
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = 0
        for w in words:
            acc ^= w
        return acc if gtype is GateType.XOR else acc ^ full
    if gtype is GateType.NOT:
        return words[0] ^ full
    if gtype is GateType.BUF:
        return words[0]
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return full
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def single_eval(circuit, input_values, state_values):
    """Single-pattern convenience wrapper; booleans in, booleans out."""
    env = {net: int(bool(v)) for net, v in input_values.items()}
    env.update({net: int(bool(v)) for net, v in state_values.items()})
    words = bit_parallel_eval(circuit, env, 1)
    return {net: bool(v) for net, v in words.items()}


def next_state(circuit, values):
    """Next-state masks from the full net valuation of one frame."""
    return {name: values[reg.data_in] for name, reg in circuit.registers.items()}


class SequentialSimulator:
    """Runs a circuit from its initial state with random input patterns.

    All ``width`` parallel patterns start in the circuit's initial state and
    evolve independently under per-frame random inputs.  Per-net *signatures*
    (the concatenation of all frame masks) distinguish any two signals that
    differ in some simulated reachable state — a sound pre-filter for the
    signal correspondence partition (§4 of the paper).
    """

    def __init__(self, circuit, width=64, seed=2024):
        circuit.validate()
        self.circuit = circuit
        self.width = width
        self.rng = random.Random(seed)
        full = _mask(width)
        init = circuit.initial_state()
        self.state = {net: (full if init[net] else 0) for net in circuit.registers}
        self.signatures = {net: 0 for net in circuit.signals()}
        self.frames_run = 0
        self.first_frame_inputs = None

    def step(self):
        """Advance one frame; returns the frame's full valuation."""
        env = {
            net: self.rng.getrandbits(self.width) for net in self.circuit.inputs
        }
        if self.first_frame_inputs is None:
            self.first_frame_inputs = dict(env)
        env.update(self.state)
        values = bit_parallel_eval(self.circuit, env, self.width)
        for net, word in values.items():
            self.signatures[net] = (self.signatures[net] << self.width) | word
        self.state = next_state(self.circuit, values)
        self.frames_run += 1
        return values

    def run(self, frames):
        """Run ``frames`` frames; returns the signature map."""
        for _ in range(frames):
            self.step()
        return dict(self.signatures)

    def signature_bits(self):
        """Total number of signature bits accumulated so far."""
        return self.frames_run * self.width


# ----------------------------------------------------------------------
# Three-valued simulation
# ----------------------------------------------------------------------

X = (0, 0)


def tv_const(value, width=1):
    """Ternary constant: True/False/None → (ones, zeros)."""
    full = _mask(width)
    if value is None:
        return (0, 0)
    return (full, 0) if value else (0, full)


def ternary_eval(circuit, env, width=1):
    """Three-valued evaluation of one frame.

    ``env`` maps inputs and register outputs to ``(ones, zeros)`` pairs.
    Returns the same encoding for every net.
    """
    values = {}
    for net in list(circuit.inputs) + list(circuit.registers):
        values[net] = env.get(net, X)
    full = _mask(width)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        operands = [values[f] for f in gate.fanins]
        values[name] = _ternary_gate(gate.gtype, operands, full)
    return values


def _ternary_gate(gtype, operands, full):
    if gtype in (GateType.AND, GateType.NAND):
        ones, zeros = full, 0
        for o, z in operands:
            ones &= o
            zeros |= z
        if gtype is GateType.NAND:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype in (GateType.OR, GateType.NOR):
        ones, zeros = 0, full
        for o, z in operands:
            ones |= o
            zeros &= z
        if gtype is GateType.NOR:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype in (GateType.XOR, GateType.XNOR):
        ones, zeros = operands[0]
        for o, z in operands[1:]:
            ones, zeros = (ones & z) | (zeros & o), (ones & o) | (zeros & z)
        if gtype is GateType.XNOR:
            ones, zeros = zeros, ones
        return ones, zeros
    if gtype is GateType.NOT:
        ones, zeros = operands[0]
        return zeros, ones
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return 0, full
    if gtype is GateType.CONST1:
        return full, 0
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def x_initialized_fixpoint(circuit, max_frames=64):
    """Three-valued reachability of register values from the all-X state.

    Repeatedly simulates with X inputs until register knowledge stabilizes.
    Registers that settle to a known constant regardless of inputs are
    self-initializing; the rest stay X.  Returns ``{register: True/False/None}``.
    """
    state = {net: X for net in circuit.registers}
    for _ in range(max_frames):
        env = {net: X for net in circuit.inputs}
        env.update(state)
        values = ternary_eval(circuit, env)
        new_state = {
            name: values[reg.data_in] for name, reg in circuit.registers.items()
        }
        if new_state == state:
            break
        state = new_state
    result = {}
    for net, (ones, zeros) in state.items():
        if ones and not zeros:
            result[net] = True
        elif zeros and not ones:
            result[net] = False
        else:
            result[net] = None
    return result
