"""Time-frame expansion: unroll a sequential circuit into a combinational one.

Frame ``t``'s register outputs are driven by frame ``t-1``'s data inputs;
frame 0 registers are constants (the initial state) or fresh inputs (free
initial state).  Net names are suffixed ``@t``.  Used by the BMC engine and
useful on its own for exporting unrolled problems.
"""

from ..errors import NetlistError
from .circuit import Circuit, GateType


def unroll(circuit, frames, initial="state", name=None):
    """Unroll ``circuit`` over ``frames`` time frames.

    ``initial`` is ``"state"`` (frame-0 registers fixed to the initial
    values) or ``"free"`` (frame-0 registers become primary inputs).
    Returns ``(unrolled_circuit, net_at)`` where ``net_at(net, t)`` gives
    the unrolled name of ``net`` in frame ``t``.  Outputs of every frame
    are exported in frame order.
    """
    circuit.validate()
    if frames < 1:
        raise NetlistError("need at least one frame")
    if initial not in ("state", "free"):
        raise NetlistError("initial must be 'state' or 'free'")
    result = Circuit(name or "{}_x{}".format(circuit.name, frames))

    def net_at(net, t):
        return "{}@{}".format(net, t)

    for t in range(frames):
        for net in circuit.inputs:
            result.add_input(net_at(net, t))
    for net, reg in circuit.registers.items():
        if initial == "state":
            result.add_gate(
                net_at(net, 0),
                GateType.CONST1 if reg.init else GateType.CONST0,
                [],
            )
        else:
            result.add_input(net_at(net, 0))
    for t in range(frames):
        for gname in circuit.topo_order():
            gate = circuit.gates[gname]
            result.add_gate(
                net_at(gname, t),
                gate.gtype,
                [net_at(f, t) for f in gate.fanins],
            )
        if t + 1 < frames:
            for net, reg in circuit.registers.items():
                result.add_gate(
                    net_at(net, t + 1),
                    GateType.BUF,
                    [net_at(reg.data_in, t)],
                )
    for t in range(frames):
        for net in circuit.outputs:
            result.add_output(net_at(net, t))
    result.validate()
    return result, net_at
