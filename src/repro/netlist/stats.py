"""Circuit statistics and structural analysis.

Provides the numbers the experiment reports cite (gate histograms, logic
depth, fanout distribution) and graph-theoretic structure built on
networkx: the register dependency digraph, its strongly connected
components (sequential feedback clusters), and a greedy feedback register
set — the registers whose removal makes the machine acyclic, a classic
difficulty indicator for sequential verification.
"""

from collections import Counter

import networkx as nx

from .circuit import GateType
from .cones import combinational_support, level_map


def gate_histogram(circuit):
    """``{gate_type_name: count}``."""
    counter = Counter(gate.gtype.value for gate in circuit.gates.values())
    return dict(counter)


def logic_depth(circuit):
    """Maximum combinational depth over all nets."""
    levels = level_map(circuit)
    return max(levels.values(), default=0)


def fanout_histogram(circuit):
    """``{fanout_count: how many nets have it}`` (driven nets only)."""
    fanout = circuit.fanout_map()
    counter = Counter(len(readers) for readers in fanout.values())
    return dict(counter)


def circuit_report(circuit):
    """One-stop summary dict for a circuit."""
    return {
        "name": circuit.name,
        "inputs": len(circuit.inputs),
        "outputs": len(circuit.outputs),
        "registers": circuit.num_registers,
        "gates": circuit.num_gates,
        "depth": logic_depth(circuit),
        "gate_histogram": gate_histogram(circuit),
        "sequential_sccs": len(register_sccs(circuit)),
        "feedback_registers": len(feedback_register_set(circuit)),
    }


def register_digraph(circuit):
    """networkx DiGraph: edge r -> q when q's next state reads r."""
    graph = nx.DiGraph()
    graph.add_nodes_from(circuit.registers)
    for reg in circuit.registers.values():
        support = combinational_support(circuit, reg.data_in)
        for source in support:
            if source in circuit.registers:
                graph.add_edge(source, reg.name)
    return graph


def register_sccs(circuit):
    """Strongly connected components of the register dependency digraph,
    largest first.  Each SCC is a set of registers forming sequential
    feedback; singleton SCCs without self-loops are pipeline stages."""
    graph = register_digraph(circuit)
    sccs = [set(scc) for scc in nx.strongly_connected_components(graph)]
    sccs.sort(key=len, reverse=True)
    return sccs


def feedback_register_set(circuit):
    """A (greedy, not minimum) set of registers whose removal breaks every
    sequential cycle.  Empty for pipelines; large for counters and FSMs."""
    graph = register_digraph(circuit)
    feedback = set()
    working = graph.copy()
    # Remove self-loops first: each is a forced feedback register.
    for node in list(nx.nodes_with_selfloops(working)):
        feedback.add(node)
        working.remove_node(node)
    while True:
        try:
            cycle = nx.find_cycle(working)
        except nx.NetworkXNoCycle:
            break
        # Drop the highest-degree node on the cycle.
        candidates = {edge[0] for edge in cycle}
        victim = max(
            candidates,
            key=lambda n: working.in_degree(n) + working.out_degree(n),
        )
        feedback.add(victim)
        working.remove_node(victim)
    return feedback


def is_pipeline(circuit):
    """True when the circuit has no sequential feedback at all."""
    return not feedback_register_set(circuit)


def structural_similarity(spec, impl):
    """A cheap similarity indicator between two circuits: Jaccard overlap
    of their gate-type histograms and depth/size ratios.  Used in reports
    to show how much the synthesis pipeline restructured the netlist."""
    h1 = gate_histogram(spec)
    h2 = gate_histogram(impl)
    keys = set(h1) | set(h2)
    inter = sum(min(h1.get(k, 0), h2.get(k, 0)) for k in keys)
    union = sum(max(h1.get(k, 0), h2.get(k, 0)) for k in keys)
    return {
        "gate_histogram_jaccard": inter / union if union else 1.0,
        "size_ratio": (impl.num_gates / spec.num_gates
                       if spec.num_gates else float("inf")),
        "depth_ratio": (logic_depth(impl) / logic_depth(spec)
                        if logic_depth(spec) else float("inf")),
        "shared_net_names": len(
            (set(spec.gates) | set(spec.registers))
            & (set(impl.gates) | set(impl.registers))
        ),
    }
