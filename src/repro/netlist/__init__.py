"""Sequential gate-level netlists: IR, file formats, simulation, analysis."""

from .circuit import Circuit, Gate, GateType, Register, eval_gate
from .product import ProductMachine, build_product, IMPL_PREFIX, SPEC_PREFIX
from .simulate import (
    SIM_BACKENDS,
    CompiledSim,
    MatrixSim,
    SequentialSimulator,
    bit_parallel_eval,
    make_sim,
    next_state,
    single_eval,
    ternary_eval,
    tv_const,
    x_initialized_fixpoint,
)
from .strash import strash, structural_fingerprint
from .bddnet import build_bdds, gate_bdd
from .unroll import unroll
from . import aig, bench, blif, cones, stats, vcd, verilog

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "Register",
    "eval_gate",
    "ProductMachine",
    "build_product",
    "SPEC_PREFIX",
    "IMPL_PREFIX",
    "SIM_BACKENDS",
    "CompiledSim",
    "MatrixSim",
    "make_sim",
    "SequentialSimulator",
    "bit_parallel_eval",
    "next_state",
    "single_eval",
    "ternary_eval",
    "tv_const",
    "x_initialized_fixpoint",
    "strash",
    "structural_fingerprint",
    "unroll",
    "build_bdds",
    "gate_bdd",
    "aig",
    "bench",
    "blif",
    "cones",
    "stats",
    "vcd",
    "verilog",
]
