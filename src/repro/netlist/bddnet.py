"""Building BDDs for circuit nets (shared by the CEC, reachability and
signal-correspondence engines)."""

from .circuit import GateType
from ..errors import NetlistError


def build_bdds(circuit, manager, leaves, nets=None):
    """Compute BDD edges for circuit nets.

    ``leaves`` maps every primary input and register-output net to a BDD edge
    (usually a variable).  When ``nets`` is given, only the cones of those
    nets are built; otherwise every net gets an edge.  Returns ``{net: edge}``
    including the leaves.
    """
    values = dict(leaves)
    order = circuit.topo_order()
    if nets is not None:
        from .cones import transitive_fanin

        cone = transitive_fanin(circuit, list(nets))
        order = [name for name in order if name in cone]
    for name in order:
        gate = circuit.gates[name]
        try:
            operands = [values[f] for f in gate.fanins]
        except KeyError as exc:
            raise NetlistError(
                "no BDD leaf provided for net {!r}".format(exc.args[0])
            ) from None
        values[name] = gate_bdd(manager, gate.gtype, operands)
    return values


def gate_bdd(manager, gtype, operands):
    """BDD of one gate application."""
    if gtype is GateType.AND:
        return manager.and_many(operands)
    if gtype is GateType.NAND:
        return manager.apply_not(manager.and_many(operands))
    if gtype is GateType.OR:
        return manager.or_many(operands)
    if gtype is GateType.NOR:
        return manager.apply_not(manager.or_many(operands))
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = operands[0]
        for op in operands[1:]:
            acc = manager.apply_xor(acc, op)
        return acc if gtype is GateType.XOR else manager.apply_not(acc)
    if gtype is GateType.NOT:
        return manager.apply_not(operands[0])
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return manager.false
    if gtype is GateType.CONST1:
        return manager.true
    raise NetlistError("unknown gate type: {!r}".format(gtype))
