"""Value-change-dump (VCD) export of simulation traces.

Lets counterexample traces and simulation runs be inspected in any waveform
viewer (GTKWave etc.).  Only the subset of VCD needed for single-clock
synchronous traces is emitted: one timescale unit per frame.
"""

import itertools

from ..errors import NetlistError


def _identifier_codes():
    """VCD short identifiers: printable ASCII 33..126, then pairs."""
    alphabet = [chr(i) for i in range(33, 127)]
    for size in itertools.count(1):
        for combo in itertools.product(alphabet, repeat=size):
            yield "".join(combo)


def dumps_trace(circuit, frames, nets=None, module_name=None):
    """Serialize per-frame net valuations to VCD text.

    ``frames`` is a list of ``{net: bool_or_int}`` (one dict per clock
    frame, as produced by replaying a counterexample or stepping a
    simulator with width 1).  ``nets`` restricts/orders the dumped signals;
    the default dumps inputs, registers and outputs.
    """
    if nets is None:
        nets = list(circuit.inputs) + list(circuit.registers) + [
            net for net in circuit.outputs
            if net not in circuit.inputs and net not in circuit.registers
        ]
    seen = set()
    ordered = []
    for net in nets:
        if net not in seen:
            seen.add(net)
            ordered.append(net)
    codes = {}
    generator = _identifier_codes()
    for net in ordered:
        codes[net] = next(generator)
    lines = [
        "$date repro trace $end",
        "$version repro 1.0 $end",
        "$timescale 1 ns $end",
        "$scope module {} $end".format(module_name or circuit.name or "top"),
    ]
    for net in ordered:
        lines.append("$var wire 1 {} {} $end".format(codes[net], net))
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    previous = {}
    for time, frame in enumerate(frames):
        changes = []
        for net in ordered:
            if net not in frame:
                raise NetlistError(
                    "frame {} misses net {!r}".format(time, net)
                )
            value = int(bool(frame[net]))
            if previous.get(net) != value:
                changes.append("{}{}".format(value, codes[net]))
                previous[net] = value
        if changes or time == 0:
            lines.append("#{}".format(time))
            lines.extend(changes)
    lines.append("#{}".format(len(frames)))
    return "\n".join(lines) + "\n"


def dump_trace(circuit, frames, path, nets=None, module_name=None):
    """Write a VCD file."""
    with open(path, "w") as handle:
        handle.write(dumps_trace(circuit, frames, nets=nets,
                                 module_name=module_name))


def replay_frames(circuit, input_sequence):
    """Replay an input sequence from the initial state; returns the list of
    full per-frame valuations (every net, booleans)."""
    from .simulate import bit_parallel_eval

    state = {name: reg.init for name, reg in circuit.registers.items()}
    frames = []
    for frame_inputs in input_sequence:
        env = {net: int(bool(frame_inputs.get(net, False)))
               for net in circuit.inputs}
        env.update({net: int(bool(v)) for net, v in state.items()})
        values = bit_parallel_eval(circuit, env, 1)
        frames.append({net: bool(v) for net, v in values.items()})
        state = {
            name: bool(values[reg.data_in])
            for name, reg in circuit.registers.items()
        }
    return frames
