"""Structural hashing: merge structurally identical gates.

Two gates merge when they have the same type and the same (canonically
ordered, for commutative types) fanin representatives.  BUF gates collapse
into their fanin.  The pass is purely structural — semantic rewrites live in
:mod:`repro.transform.optimize`.
"""

import hashlib

from .circuit import Circuit, Gate, GateType, Register


def strash(circuit, merge_registers=False):
    """Return ``(new_circuit, net_map)`` with structural duplicates merged.

    ``net_map`` maps every original net to its representative in the new
    circuit.  With ``merge_registers=True``, registers with identical data
    inputs and initial values are merged too (a lightweight sequential
    optimization used by the benchmark synthesis pipeline).
    """
    out = Circuit(circuit.name)
    rep = {}
    for net in circuit.inputs:
        out.add_input(net)
        rep[net] = net
    # Registers keep their identity in the first pass; their (representative)
    # data inputs are wired up after the gates are processed.
    for reg in circuit.registers.values():
        out.add_register(reg.name, reg.data_in, reg.init)
        rep[reg.name] = reg.name
    gate_index = {}
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        fanins = [rep[f] for f in gate.fanins]
        if gate.gtype is GateType.BUF:
            rep[name] = fanins[0]
            continue
        key_fanins = tuple(sorted(fanins)) if gate.gtype.is_commutative else tuple(fanins)
        key = (gate.gtype, key_fanins)
        existing = gate_index.get(key)
        if existing is not None:
            rep[name] = existing
            continue
        out.add_gate(name, gate.gtype, fanins)
        gate_index[key] = name
        rep[name] = name
    for reg in out.registers.values():
        reg.data_in = rep[reg.data_in]
    out.outputs = [rep[o] for o in circuit.outputs]
    if merge_registers:
        out, reg_map = _merge_registers(out)
        rep = {net: reg_map.get(r, r) for net, r in rep.items()}
    out.validate()
    return out, rep


def structural_fingerprint(circuit):
    """Canonical SHA-256 digest of a circuit's strashed structure.

    The circuit is structurally hashed first, then serialized with
    name-independent positional ids (inputs by declaration order, registers
    by declaration order, gates by topological order; commutative fanins
    sorted), so renaming nets or duplicating gates does not change the
    digest.  Used as the cache key for verification results — two calls
    with equal fingerprints describe the same verification problem.

    Registers deliberately use *declaration* order, not sorted name:
    renaming preserves declaration order (``strash`` and every transform
    copy registers in iteration order) whereas a name sort would permute
    the positional ids and change the digest under renaming.
    """
    canonical, _ = strash(circuit)
    ids = {}
    for pos, net in enumerate(canonical.inputs):
        ids[net] = "i{}".format(pos)
    for pos, net in enumerate(canonical.registers):
        ids[net] = "r{}".format(pos)
    topo = canonical.topo_order()
    for pos, net in enumerate(topo):
        ids[net] = "g{}".format(pos)
    lines = []
    for net in canonical.registers:
        reg = canonical.registers[net]
        lines.append("{}=DFF({},{})".format(
            ids[net], ids[reg.data_in], int(reg.init)))
    for net in topo:
        gate = canonical.gates[net]
        fanins = [ids[f] for f in gate.fanins]
        if gate.gtype.is_commutative:
            fanins = sorted(fanins)
        lines.append("{}={}({})".format(
            ids[net], gate.gtype.value, ",".join(fanins)))
    lines.append("OUT:" + ",".join(ids[o] for o in canonical.outputs))
    blob = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _merge_registers(circuit):
    """Merge registers with identical (data_in, init); iterate to fixpoint."""
    mapping = {}
    current = circuit
    while True:
        index = {}
        merges = {}
        for reg in current.registers.values():
            key = (reg.data_in, reg.init)
            if key in index:
                merges[reg.name] = index[key]
            else:
                index[key] = reg.name
        if not merges:
            break
        rebuilt = Circuit(current.name)
        for net in current.inputs:
            rebuilt.add_input(net)

        def rn(net):
            return merges.get(net, net)

        for reg in current.registers.values():
            if reg.name in merges:
                continue
            rebuilt.add_register(reg.name, rn(reg.data_in), reg.init)
        for name in current.topo_order():
            gate = current.gates[name]
            rebuilt.add_gate(name, gate.gtype, [rn(f) for f in gate.fanins])
        rebuilt.outputs = [rn(o) for o in current.outputs]
        for old, new in merges.items():
            mapping[old] = new
        # Chase chains created by earlier rounds.
        for old in list(mapping):
            target = mapping[old]
            while target in merges:
                target = merges[target]
            mapping[old] = target
        current = rebuilt
    return current, mapping
