"""And-Inverter Graphs with structural hashing, AIGER I/O and SAT sweeping.

The AIG is the modern workhorse representation for equivalence checking;
``fraig`` below is exactly the *combinational* specialization of the paper's
signal correspondence (simulate to guess equivalence classes, prove with a
base engine, merge) — implemented here with the CDCL solver.

Literal encoding follows AIGER: variable ``v`` has literals ``2v`` (positive)
and ``2v + 1`` (negated); variable 0 is constant FALSE, so literal 0 is
FALSE and literal 1 is TRUE.
"""

import random

from ..errors import NetlistError, ParseError
from .circuit import Circuit, GateType

FALSE = 0
TRUE = 1


def lit_neg(lit):
    return lit ^ 1


def lit_var(lit):
    return lit >> 1


def lit_sign(lit):
    return lit & 1


class Aig:
    """A combinational-plus-latches AIG."""

    def __init__(self):
        self.num_vars = 0           # variable 0 is the constant
        self.inputs = []            # list of variables
        self.latches = []           # list of (var, next_lit, init_bool)
        self.outputs = []           # list of literals
        self.ands = {}              # var -> (rhs0, rhs1), rhs0 >= rhs1
        self._strash = {}           # (rhs0, rhs1) -> var
        self.names = {}             # var -> name (optional)
        self.output_names = {}      # output position -> name (optional)
        self.comments = []          # AIGER trailing comment lines

    # -- construction -------------------------------------------------------

    def _new_var(self):
        self.num_vars += 1
        return self.num_vars

    def add_input(self, name=None):
        var = self._new_var()
        self.inputs.append(var)
        if name:
            self.names[var] = name
        return 2 * var

    def add_latch(self, init=False, name=None):
        """Latch output literal; set its next-state with set_latch_next."""
        var = self._new_var()
        self.latches.append([var, FALSE, bool(init)])
        if name:
            self.names[var] = name
        return 2 * var

    def set_latch_next(self, latch_lit, next_lit):
        var = lit_var(latch_lit)
        for entry in self.latches:
            if entry[0] == var:
                entry[1] = next_lit
                return
        raise NetlistError("literal {} is not a latch".format(latch_lit))

    def add_output(self, lit, name=None):
        if name:
            self.output_names[len(self.outputs)] = name
        self.outputs.append(lit)
        return lit

    def and2(self, a, b):
        """Structurally hashed AND with constant/idempotence rules."""
        if a == FALSE or b == FALSE or a == lit_neg(b):
            return FALSE
        if a == TRUE or a == b:
            return b
        if b == TRUE:
            return a
        if a < b:
            a, b = b, a
        key = (a, b)
        var = self._strash.get(key)
        if var is None:
            var = self._new_var()
            self.ands[var] = key
            self._strash[key] = var
        return 2 * var

    def or2(self, a, b):
        return lit_neg(self.and2(lit_neg(a), lit_neg(b)))

    def xor2(self, a, b):
        return self.or2(self.and2(a, lit_neg(b)), self.and2(lit_neg(a), b))

    def mux(self, sel, then_lit, else_lit):
        return self.or2(self.and2(sel, then_lit),
                        self.and2(lit_neg(sel), else_lit))

    def and_many(self, literals):
        literals = list(literals)
        if not literals:
            return TRUE
        while len(literals) > 1:
            nxt = [
                self.and2(literals[i], literals[i + 1])
                for i in range(0, len(literals) - 1, 2)
            ]
            if len(literals) % 2:
                nxt.append(literals[-1])
            literals = nxt
        return literals[0]

    # -- queries --------------------------------------------------------------

    @property
    def num_ands(self):
        return len(self.ands)

    def is_input(self, var):
        return var in set(self.inputs)

    def topo_vars(self):
        """AND variables in topological order."""
        order = []
        state = {}
        for root in self.ands:
            if state.get(root):
                continue
            stack = [root]
            while stack:
                var = stack[-1]
                if state.get(var) == 2 or var not in self.ands:
                    stack.pop()
                    continue
                children = [
                    lit_var(l) for l in self.ands[var]
                    if lit_var(l) in self.ands and state.get(lit_var(l)) != 2
                ]
                if children:
                    for child in children:
                        if state.get(child) == 1:
                            raise NetlistError("cyclic AIG")
                    state[var] = 1
                    stack.extend(children)
                else:
                    state[var] = 2
                    order.append(var)
                    stack.pop()
        return order

    def simulate(self, env, width=1):
        """Bit-parallel evaluation; ``env`` maps input/latch vars to ints."""
        full = (1 << width) - 1
        values = {0: 0}
        for var in self.inputs:
            values[var] = env[var] & full
        for var, _, _ in self.latches:
            values[var] = env[var] & full

        def lit_value(lit):
            word = values[lit_var(lit)]
            return word ^ full if lit_sign(lit) else word

        for var in self.topo_vars():
            rhs0, rhs1 = self.ands[var]
            values[var] = lit_value(rhs0) & lit_value(rhs1)
        return values, lit_value

    def cleanup(self):
        """Drop AND nodes unreachable from outputs and latch next-states."""
        keep = set()
        stack = [lit_var(l) for l in self.outputs]
        stack.extend(lit_var(entry[1]) for entry in self.latches)
        while stack:
            var = stack.pop()
            if var in keep or var not in self.ands:
                continue
            keep.add(var)
            stack.extend(lit_var(l) for l in self.ands[var])
        dropped = [var for var in self.ands if var not in keep]
        for var in dropped:
            key = self.ands.pop(var)
            self._strash.pop(key, None)
        return len(dropped)

    def __repr__(self):
        return "Aig({} in, {} latches, {} out, {} ands)".format(
            len(self.inputs), len(self.latches), len(self.outputs),
            self.num_ands,
        )


# --------------------------------------------------------------------------
# Circuit conversion
# --------------------------------------------------------------------------


def from_circuit(circuit):
    """Convert a gate-level circuit into an AIG; returns (aig, lit_of).

    ``lit_of`` maps every net to its AIG literal.
    """
    circuit.validate()
    aig = Aig()
    lit_of = {}
    for net in circuit.inputs:
        lit_of[net] = aig.add_input(name=net)
    for net, reg in circuit.registers.items():
        lit_of[net] = aig.add_latch(init=reg.init, name=net)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        operands = [lit_of[f] for f in gate.fanins]
        lit_of[name] = _gate_to_aig(aig, gate.gtype, operands)
    for net, reg in circuit.registers.items():
        aig.set_latch_next(lit_of[net], lit_of[reg.data_in])
    for net in circuit.outputs:
        aig.add_output(lit_of[net], name=net)
    return aig, lit_of


def _gate_to_aig(aig, gtype, operands):
    if gtype is GateType.AND:
        return aig.and_many(operands)
    if gtype is GateType.NAND:
        return lit_neg(aig.and_many(operands))
    if gtype is GateType.OR:
        return lit_neg(aig.and_many(lit_neg(o) for o in operands))
    if gtype is GateType.NOR:
        return aig.and_many(lit_neg(o) for o in operands)
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = operands[0]
        for op in operands[1:]:
            acc = aig.xor2(acc, op)
        return acc if gtype is GateType.XOR else lit_neg(acc)
    if gtype is GateType.NOT:
        return lit_neg(operands[0])
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return FALSE
    if gtype is GateType.CONST1:
        return TRUE
    raise NetlistError("unknown gate type: {!r}".format(gtype))


def to_circuit(aig, name="aig"):
    """Convert an AIG back to a gate-level circuit (AND/NOT gates)."""
    circuit = Circuit(name)
    net_of_var = {}
    for var in aig.inputs:
        net = aig.names.get(var, "pi{}".format(var))
        circuit.add_input(net)
        net_of_var[var] = net
    for var, _, init in aig.latches:
        net = aig.names.get(var, "lat{}".format(var))
        circuit.add_register(net, "__pending", init=init)
        net_of_var[var] = net
    const_nets = {}

    def ensure_const(value):
        # Emit CONST0/CONST1 gates directly (not NOT-of-CONST0): the
        # constant-fold pass in transform/optimize produces the same
        # shape, so either path strashes to identical node counts.
        if value not in const_nets:
            gtype = GateType.CONST1 if value else GateType.CONST0
            net = circuit.fresh_name("aig_const{}".format(int(value)))
            circuit.add_gate(net, gtype, [])
            const_nets[value] = net
        return const_nets[value]

    inverters = {}

    def net_of_lit(lit):
        var = lit_var(lit)
        if var == 0:
            return ensure_const(bool(lit_sign(lit)))
        base = net_of_var[var]
        if not lit_sign(lit):
            return base
        return net_of_lit_cached_not(base)

    def net_of_lit_cached_not(base):
        inv = inverters.get(base)
        if inv is None:
            inv = circuit.fresh_name("n_{}".format(base))
            circuit.add_gate(inv, GateType.NOT, [base])
            inverters[base] = inv
        return inv

    for var in aig.topo_vars():
        rhs0, rhs1 = aig.ands[var]
        net = circuit.fresh_name("a{}".format(var))
        circuit.add_gate(net, GateType.AND,
                         [net_of_lit(rhs0), net_of_lit(rhs1)])
        net_of_var[var] = net
    for var, next_lit, _ in aig.latches:
        circuit.set_register_input(net_of_var[var], net_of_lit(next_lit))
    for lit in aig.outputs:
        circuit.add_output(net_of_lit(lit))
    circuit.validate()
    return circuit


# --------------------------------------------------------------------------
# AIGER ASCII (.aag) I/O
# --------------------------------------------------------------------------


def dumps_aag(aig):
    """Serialize to AIGER ASCII (aag) format."""
    max_var = aig.num_vars
    lines = [
        "aag {} {} {} {} {}".format(
            max_var, len(aig.inputs), len(aig.latches), len(aig.outputs),
            aig.num_ands,
        )
    ]
    for var in aig.inputs:
        lines.append(str(2 * var))
    for var, next_lit, init in aig.latches:
        # AIGER latch line: "out next [init]"; init defaults to 0.
        if init:
            lines.append("{} {} 1".format(2 * var, next_lit))
        else:
            lines.append("{} {}".format(2 * var, next_lit))
    for lit in aig.outputs:
        lines.append(str(lit))
    for var in sorted(aig.ands):
        rhs0, rhs1 = aig.ands[var]
        lines.append("{} {} {}".format(2 * var, rhs0, rhs1))
    for idx, var in enumerate(aig.inputs):
        if var in aig.names:
            lines.append("i{} {}".format(idx, aig.names[var]))
    for idx, (var, _, _) in enumerate(aig.latches):
        if var in aig.names:
            lines.append("l{} {}".format(idx, aig.names[var]))
    for idx in range(len(aig.outputs)):
        if idx in aig.output_names:
            lines.append("o{} {}".format(idx, aig.output_names[idx]))
    return "\n".join(lines) + "\n"


def loads_aag(text):
    """Parse AIGER ASCII (aag) format."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines or not lines[0].startswith("aag"):
        raise ParseError("not an aag file")
    header = lines[0].split()
    if len(header) != 6:
        raise ParseError("bad aag header")
    _, m, i, l, o, a = header
    m, i, l, o, a = int(m), int(i), int(l), int(o), int(a)
    aig = Aig()
    aig.num_vars = m
    idx = 1
    for _ in range(i):
        lit = int(lines[idx].split()[0])
        if lit_sign(lit):
            raise ParseError("negated input literal")
        aig.inputs.append(lit_var(lit))
        idx += 1
    for _ in range(l):
        parts = lines[idx].split()
        if len(parts) < 2:
            raise ParseError("bad latch line")
        out_lit, next_lit = int(parts[0]), int(parts[1])
        init = len(parts) > 2 and parts[2] == "1"
        aig.latches.append([lit_var(out_lit), next_lit, init])
        idx += 1
    for _ in range(o):
        aig.outputs.append(int(lines[idx].split()[0]))
        idx += 1
    for _ in range(a):
        parts = lines[idx].split()
        if len(parts) != 3:
            raise ParseError("bad and line")
        lhs, rhs0, rhs1 = (int(p) for p in parts)
        if lit_sign(lhs):
            raise ParseError("negated and output")
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        aig.ands[lit_var(lhs)] = (rhs0, rhs1)
        aig._strash[(rhs0, rhs1)] = lit_var(lhs)
        idx += 1
    # Symbol table.
    while idx < len(lines):
        line = lines[idx]
        idx += 1
        if line.startswith("c"):
            break
        kind, _, name = line.partition(" ")
        if not name:
            continue
        if kind.startswith("i"):
            aig.names[aig.inputs[int(kind[1:])]] = name
        elif kind.startswith("l"):
            aig.names[aig.latches[int(kind[1:])][0]] = name
        elif kind.startswith("o"):
            aig.output_names[int(kind[1:])] = name
    return aig


def dump_aag(aig, path):
    with open(path, "w") as handle:
        handle.write(dumps_aag(aig))


def load_aag(path):
    with open(path) as handle:
        return loads_aag(handle.read())


# --------------------------------------------------------------------------
# fraig: SAT sweeping (combinational signal correspondence)
# --------------------------------------------------------------------------


def fraig(aig, sim_rounds=8, sim_width=64, seed=2024, conflict_budget=None):
    """Functionally-reduce a *combinational* AIG by SAT sweeping.

    Simulation partitions nodes into candidate classes (with polarity, so
    antivalent nodes merge too); SAT proves or refutes each candidate
    against its class representative; refutations feed new distinguishing
    patterns back into the simulation signatures.  Returns ``(new_aig,
    lit_map)``, where ``lit_map`` sends old literals to new ones.

    This is the paper's fixed point collapsed to one time frame — the
    "state-of-the-art combinational verification techniques" of §1.
    """
    if aig.latches:
        raise NetlistError("fraig expects a combinational AIG")
    from ..sat.solver import Solver

    rng = random.Random(seed)
    order = aig.topo_vars()
    input_set = set(aig.inputs)
    # --- simulation signatures (with refinement patterns appended) -------
    patterns = {
        var: rng.getrandbits(sim_width * sim_rounds) for var in aig.inputs
    }
    width = sim_width * sim_rounds

    def simulate_all():
        values, _ = aig.simulate(patterns, width=width)
        return values

    signatures = simulate_all()
    full = (1 << width) - 1
    # --- SAT encoding of the AIG ------------------------------------------
    solver = Solver()
    sat_var = {0: solver.new_var()}
    solver.add_clause([-sat_var[0]])  # constant FALSE
    for var in aig.inputs:
        sat_var[var] = solver.new_var()
    for var in order:
        sat_var[var] = solver.new_var()
        rhs0, rhs1 = aig.ands[var]
        y = sat_var[var]
        a = _sat_lit(sat_var, rhs0)
        b = _sat_lit(sat_var, rhs1)
        solver.add_clause([-y, a])
        solver.add_clause([-y, b])
        solver.add_clause([y, -a, -b])

    # --- sweeping ------------------------------------------------------------
    # A class member is (complemented, var): the value var XOR complemented
    # has simulation signature with bit 0 set — polarity normalization, so
    # antivalent nodes land in one class (the constant FALSE included).
    def norm(var):
        sig = signatures[var] & full
        if sig & 1:
            return sig, (False, var)
        return sig ^ full, (True, var)

    classes = {}
    # Inputs participate as merge *targets* only (a redundant node equal to
    # an input maps onto it); they precede AND nodes so they become leaders.
    for var in [0] + list(aig.inputs) + order:
        key, member = norm(var)
        classes.setdefault(key, []).append(member)

    def member_sat_lit(member):
        complemented, var = member
        lit = sat_var[var]
        return -lit if complemented else lit

    def equal_under_sat(a, b):
        la, lb = member_sat_lit(a), member_sat_lit(b)
        for assumptions in ([la, -lb], [-la, lb]):
            verdict = solver.solve(assumptions=assumptions,
                                   conflict_budget=conflict_budget)
            if verdict is not False:
                return False  # SAT (refuted) or budget exhausted
        return True

    proven = {}  # member var -> equivalent old literal
    for members in classes.values():
        if len(members) < 2:
            continue
        leaders = [members[0]]
        for member in members[1:]:
            cm, vm = member
            merged = False
            if vm not in input_set:  # free variables are never rewritten
                for cl, vl in leaders:
                    if equal_under_sat((cl, vl), member):
                        # vm == vl XOR cl XOR cm, as an old-AIG literal.
                        proven[vm] = 2 * vl + (1 if cl != cm else 0)
                        merged = True
                        break
            if not merged:
                leaders.append(member)

    # --- rebuild ---------------------------------------------------------------
    new_aig = Aig()
    lit_map = {FALSE: FALSE, TRUE: TRUE}

    def resolve(lit):
        return lit_map[lit]

    for var in aig.inputs:
        lit_map[2 * var] = new_aig.add_input(name=aig.names.get(var))
        lit_map[2 * var + 1] = lit_neg(lit_map[2 * var])
    for var in order:
        target = proven.get(var)
        if target is not None:
            # Leaders precede members in topological order, so the target
            # literal is already mapped.
            new_lit = resolve(target)
        else:
            rhs0, rhs1 = aig.ands[var]
            new_lit = new_aig.and2(resolve(rhs0), resolve(rhs1))
        lit_map[2 * var] = new_lit
        lit_map[2 * var + 1] = lit_neg(new_lit)
    for lit in aig.outputs:
        new_aig.add_output(resolve(lit))
    new_aig.cleanup()
    return new_aig, lit_map


def _sat_lit(sat_var, lit):
    var = sat_var[lit_var(lit)]
    return -var if lit_sign(lit) else var
