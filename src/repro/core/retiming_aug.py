"""Forward retiming with lag 1 as *signal augmentation* (Fig. 3).

The verification method never moves latches (avoiding the initial-state
problems of real retiming, [13]); instead, for every gate whose fanins all
have a "shifted-by-one" counterpart, it adds the combinational gate that
forward retiming would have produced: the same gate type applied to the
shifted fanins.  The shifted counterpart of a register output is its data
input; the shifted counterpart of an augmented gate is obtained by applying
the step again — which is how repeated invocation reaches lags below -1
(§3: "because this step may be applied more than once, also retiming
transformations with a lag smaller than 1 are considered").

Augmented signals are ordinary combinational gates of the product circuit:
they simulate, normalize and refine exactly like original signals — which
is why the same augmenter serves both the BDD engine
(:class:`RetimingAugmenter`) and the SAT engine
(:class:`CircuitAugmenter` used directly).
"""

_AUG_PREFIX = "@rt"


class CircuitAugmenter:
    """Adds lag-1 retimed signals to a circuit (no BDDs involved)."""

    def __init__(self, circuit):
        self.circuit = circuit
        self.rounds = 0
        # net -> net holding its value one frame later (expressed at frame t).
        self.shifted = {
            name: reg.data_in for name, reg in circuit.registers.items()
        }
        self.augmented_nets = []

    def eligible_gates(self):
        """Gates all of whose fanins have shifted counterparts, but which
        do not have one themselves yet."""
        circuit = self.circuit
        result = []
        for name, gate in circuit.gates.items():
            if name in self.shifted:
                continue
            if not gate.fanins:
                continue
            if all(f in self.shifted for f in gate.fanins):
                result.append(name)
        return result

    def augment_round(self, on_new_gate=None):
        """Add one round of retimed signals; returns the new net names.

        ``on_new_gate(name)`` is invoked right after each gate is added
        (the BDD engine uses it to extend its function table).
        """
        circuit = self.circuit
        new_nets = []
        for name in self.eligible_gates():
            gate = circuit.gates[name]
            shifted_fanins = [self.shifted[f] for f in gate.fanins]
            new_name = circuit.fresh_name(
                "{}{}_{}".format(_AUG_PREFIX, self.rounds + 1, name)
            )
            circuit.add_gate(new_name, gate.gtype, shifted_fanins)
            if on_new_gate is not None:
                on_new_gate(new_name)
            self.shifted[name] = new_name
            new_nets.append(new_name)
        if new_nets:
            self.rounds += 1
            self.augmented_nets.extend(new_nets)
        return new_nets


class RetimingAugmenter(CircuitAugmenter):
    """The BDD-engine flavour: keeps a :class:`TimeFrame` in sync."""

    def __init__(self, frame):
        super().__init__(frame.circuit)
        self.frame = frame

    def augment_round(self):
        frame = self.frame

        def on_new_gate(name):
            gate = frame.circuit.gates[name]
            frame.attach_gate_signal(name)

        new_nets = super().augment_round(on_new_gate=on_new_gate)
        if new_nets:
            frame.resimulate()
        return new_nets


def is_augmented(net):
    """True for nets created by the augmenter."""
    return net.startswith(_AUG_PREFIX)
