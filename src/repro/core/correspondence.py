"""The greatest fixed-point iteration computing the maximum signal
correspondence relation (§3 of the paper).

Starting partition T0 (Eq. 2): functions grouped by their cofactor at the
initial state (equal for *all* inputs x) — pre-split by random sequential
simulation signatures, which is sound because any state visited by
simulation is reachable, and every valid correspondence condition holds in
every reachable state (§4).

Refinement step (Eq. 3): within each class, members whose next-state
functions differ on some state/input pair satisfying the current
correspondence condition Q are split off.  Q's functional dependencies are
exploited by *substituting* register variables away (the paper's
``v6 := v1 · v2`` example) with an acyclicity guard, instead of conjoining
the corresponding equivalences into Q.
"""

import time

from ..errors import ResourceBudgetExceeded
from .cexsplit import partition_by_value
from .partition import Partition


class CorrespondenceResult:
    """Outcome of the fixed-point computation."""

    def __init__(self, partition, q_edge, iterations, substitutions=0):
        self.partition = partition
        self.q_edge = q_edge
        self.iterations = iterations
        self.substitutions = substitutions


def initial_partition(frame, functions, use_simulation=True):
    """T0 of Eq. 2, optionally pre-split by simulation signatures."""

    def key(fn):
        t0 = frame.restrict_to_initial(fn.edge)
        if use_simulation:
            return (t0, fn.signature)
        return t0

    return Partition.from_keys(functions, key)


def compute_fixpoint(frame, functions, use_simulation=True, use_fundeps=True,
                     reach_bound=None, deadline=None, max_iterations=None,
                     reorder_threshold=None, refinement="implication",
                     on_iteration=None, cancel_check=None):
    """Run the fixed point; returns a :class:`CorrespondenceResult`.

    ``reach_bound`` is an optional BDD over the frame's state variables — an
    inductive over-approximation of the reachable states used to strengthen
    the correspondence condition with sequential don't cares (§3).
    ``reorder_threshold`` enables dynamic variable reordering (sifting) at
    iteration boundaries once the manager grows past that many live nodes —
    the paper's "dynamic variable ordering is used to control the BDD
    variable ordering".

    ``refinement`` selects how Eq. 3's equality-under-Q is decided:

    * ``"implication"`` — per candidate pair, check ``Q ∧ (ν_m ⊕ ν_n) = 0``
      (no conjunction nodes are built);
    * ``"constrain"`` — compute the generalized cofactor ``ν_m ↓ Q`` per
      member and split classes by hashing that canonical form (the paper's
      "complement of the correspondence condition is basically used as a
      don't care set", made literal).

    Both compute the same relation; their costs differ.

    ``on_iteration(iteration, partition)`` is called at the top of every
    refinement round (progress reporting); ``cancel_check()`` is polled at
    the same cadence and aborts the fixed point with
    :class:`ResourceBudgetExceeded` when it returns true (cooperative
    cancellation for the service layer).
    """
    from ..bdd.reorder import maybe_sift

    mgr = frame.manager
    if reach_bound is not None:
        mgr.register_root(reach_bound)
    partition = initial_partition(frame, functions, use_simulation)
    iterations = 0
    total_substitutions = 0
    while True:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            raise ResourceBudgetExceeded("fixpoint iteration budget exhausted")
        if deadline is not None and time.monotonic() > deadline:
            raise ResourceBudgetExceeded("fixpoint time budget exhausted")
        if cancel_check is not None and cancel_check():
            raise ResourceBudgetExceeded("cancelled")
        if on_iteration is not None:
            on_iteration(iterations, partition)
        if reorder_threshold is not None:
            maybe_sift(mgr, reorder_threshold)
        substitution = {}
        if use_fundeps:
            substitution = _choose_substitution(frame, partition)
            total_substitutions += len(substitution)
        q_edge = _correspondence_condition(frame, partition, substitution)
        if reach_bound is not None:
            bound = mgr.vector_compose(reach_bound, substitution)
            q_edge = mgr.apply_and(q_edge, bound)
        q_token = mgr.register_root(q_edge)
        try:
            partition, changed = _refine_once(
                frame, partition, q_edge, substitution, refinement
            )
        finally:
            mgr.release_root(q_token)
        if not changed:
            return CorrespondenceResult(
                partition, q_edge, iterations, total_substitutions
            )


def _choose_substitution(frame, partition):
    """Greedy acyclic selection of register-variable substitutions (§4).

    A register variable in a class can be replaced by another member's
    function when that function neither depends on the variable itself nor
    on any variable already scheduled for substitution, and the variable is
    not load-bearing for an earlier replacement.
    """
    mgr = frame.manager
    substituted = set()
    protected = set()
    substitution = {}
    for cls in partition.nontrivial_classes():
        for fn in cls:
            for var, var_complemented in fn.register_vars:
                if var in substituted or var in protected:
                    continue
                replacement = _find_replacement(
                    mgr, cls, fn, var, var_complemented, substituted
                )
                if replacement is None:
                    continue
                edge, support = replacement
                substitution[var] = edge
                substituted.add(var)
                protected.update(support)
    return substitution


def _find_replacement(mgr, cls, owner_fn, var, var_complemented, substituted):
    """A member function expressing ``var`` over other, unsubstituted vars."""
    for fn in cls:
        # The normalized class functions are equal under Q; the raw register
        # value is norm ^ complemented, so the replacement for the *variable*
        # carries the owner's polarity.
        candidate = fn.edge ^ (1 if var_complemented else 0)
        support = mgr.support(candidate)
        if var in support:
            continue
        if support & substituted:
            continue
        return candidate, support
    return None


def _correspondence_condition(frame, partition, substitution):
    """Q of Definition 1, with substituted register variables (§4)."""
    mgr = frame.manager
    conjuncts = []
    for cls in partition.nontrivial_classes():
        rep = mgr.vector_compose(cls[0].edge, substitution)
        for fn in cls[1:]:
            member = mgr.vector_compose(fn.edge, substitution)
            if member != rep:
                conjuncts.append(mgr.apply_xnor(member, rep))
    return mgr.and_many(conjuncts)


def _refine_once(frame, partition, q_edge, substitution,
                 refinement="implication"):
    """One application of Eq. 3: split classes by next-state behaviour."""
    mgr = frame.manager
    # Substituted frame shift: ν'_v = f_v[s := δ(σ(s), x), x := x'].  The
    # substitution σ only mentions state variables, so composing it into the
    # input targets (the x' literals) is the identity.
    if substitution:
        shift = {
            var: mgr.vector_compose(target, substitution)
            for var, target in frame.shift_map.items()
        }
    else:
        shift = frame.shift_map
    nu_cache = {}

    def nu(edge):
        cached = nu_cache.get(edge)
        if cached is None:
            cached = mgr.vector_compose(edge, shift)
            nu_cache[edge] = cached
        return cached

    def implication_splitter(cls):
        # Counterexample-guided: when a member is distinguishable from the
        # class leader, the witness Q-state is evaluated against *every*
        # member and the whole class splits by value at once (the same
        # mass-refinement rule the SAT backend applies to its models); the
        # value groups are then refined recursively.
        def split(members):
            if len(members) <= 1:
                return [members]
            leader_nu = nu(members[0].edge)
            for fn in members[1:]:
                fn_nu = nu(fn.edge)
                if fn_nu == leader_nu:
                    continue
                witness = mgr.pick_one_and(
                    q_edge, mgr.apply_xor(fn_nu, leader_nu))
                if witness is None:
                    continue
                assignment = {
                    var: witness.get(var, False)
                    for var in range(mgr.num_vars)
                }
                groups = partition_by_value(
                    members,
                    lambda member: mgr.evaluate(nu(member.edge), assignment),
                )
                return [sub for group in groups for sub in split(group)]
            return [members]

        return split(list(cls))

    def constrain_splitter(cls):
        # Two ν functions agree on every Q-state iff their generalized
        # cofactors by Q coincide: split by hashing that canonical form.
        buckets = {}
        for fn in cls:
            key = mgr.constrain(nu(fn.edge), q_edge)
            buckets.setdefault(key, []).append(fn)
        return list(buckets.values())

    if refinement == "constrain":
        return partition.refine(constrain_splitter)
    if refinement == "implication":
        return partition.refine(implication_splitter)
    raise ValueError(
        "refinement must be 'implication' or 'constrain', got {!r}".format(
            refinement
        )
    )
