"""The paper's contribution: sequential equivalence checking by signal
correspondence, without state space traversal."""

from .cexsplit import partition_by_value, replay_packed, replay_pattern
from .partition import Partition, SignalFunction
from .timeframe import TimeFrame
from .correspondence import (
    CorrespondenceResult,
    compute_fixpoint,
    initial_partition,
)
from .retiming_aug import RetimingAugmenter, is_augmented
from .engine import (
    VanEijkVerifier,
    check_equivalence_van_eijk,
    equivalence_percentage,
)
from .satbackend import SatCorrespondence, check_equivalence_sat_sweep
from .parallel import ParallelSatCorrespondence
from .diagnose import DiagnosisReport, diagnose
from .bmc import bmc_refute, check_inequivalence_bmc

__all__ = [
    "bmc_refute",
    "check_inequivalence_bmc",
    "DiagnosisReport",
    "diagnose",
    "SatCorrespondence",
    "ParallelSatCorrespondence",
    "check_equivalence_sat_sweep",
    "CorrespondenceResult",
    "Partition",
    "RetimingAugmenter",
    "SignalFunction",
    "TimeFrame",
    "VanEijkVerifier",
    "check_equivalence_van_eijk",
    "compute_fixpoint",
    "equivalence_percentage",
    "initial_partition",
    "is_augmented",
    "partition_by_value",
    "replay_packed",
    "replay_pattern",
]
