"""Bounded model checking for inequivalence.

The signal-correspondence method refutes only what random simulation
happens to hit; BMC is the *complete* refuter up to a depth bound: unroll
the product machine ``k`` frames from the initial state, assert "some
output pair differs in the last frame", and ask the CDCL solver.  Searching
depths incrementally yields a **shortest** counterexample — a sharper
diagnostic than either simulation or traversal rings.
"""

import time

from ..errors import ResourceBudgetExceeded
from ..netlist.product import build_product
from ..reach.result import CexTrace, SecResult
from ..sat.solver import Solver
from ..sat.tseitin import TseitinEncoder


def bmc_refute(product, max_depth=32, time_limit=None,
               conflict_budget=None, fraig_frames=False, fraig_seed=2024,
               progress=None, cancel_check=None):
    """Search for a counterexample of length 1..max_depth.

    Returns a :class:`SecResult`: refuted (with a shortest-length trace),
    or inconclusive — BMC can never *prove* equivalence.

    ``fraig_frames=True`` switches to the functionally reduced unrolling
    (FRAIG-BMC, :mod:`repro.sweep.frames`): frames are built in one
    structurally hashed AIG and swept as they are added, so shared and
    equivalent cones are encoded once instead of once per frame.  Verdicts
    and shortest counterexamples are identical to the naive unrolling.

    ``progress(kind, **data)`` fires once per unrolled depth;
    ``cancel_check()`` is polled at the same cadence and aborts the search
    with an inconclusive ("cancelled") result.
    """
    if fraig_frames:
        from ..sweep.frames import fraig_bmc_refute

        return fraig_bmc_refute(
            product, max_depth=max_depth, time_limit=time_limit,
            conflict_budget=conflict_budget, seed=fraig_seed,
            progress=progress, cancel_check=cancel_check)
    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    circuit = product.circuit
    circuit.validate()
    enc = TseitinEncoder()
    frame_vars = []
    solver = Solver()
    leaves = None
    for depth in range(1, max_depth + 1):
        if deadline is not None and time.monotonic() > deadline:
            return SecResult(
                equivalent=None, method="bmc",
                iterations=depth - 1,
                seconds=time.monotonic() - start,
                details={"aborted": "time budget exhausted"},
            )
        if cancel_check is not None and cancel_check():
            return SecResult(
                equivalent=None, method="bmc",
                iterations=depth - 1,
                seconds=time.monotonic() - start,
                details={"aborted": "cancelled"},
            )
        if progress is not None:
            progress("depth", depth=depth, clauses=len(enc.cnf.clauses))
        clause_mark = len(enc.cnf.clauses)
        current = enc.encode_frame(circuit, leaves=leaves)
        frame_vars.append(current)
        if depth == 1:
            for net, reg in circuit.registers.items():
                enc.add_clause(
                    [current[net] if reg.init else -current[net]]
                )
        leaves = {
            net: current[reg.data_in]
            for net, reg in circuit.registers.items()
        }
        # Difference selector for this frame, activated by assumption.
        diff_lits = []
        for s_out, i_out in product.output_pairs:
            diff_lits.append(-enc.equal_var(current[s_out], current[i_out]))
        any_diff = enc.new_var()
        for lit in diff_lits:
            enc.add_clause([-lit, any_diff])
        enc.add_clause([-any_diff] + diff_lits)
        for clause in enc.cnf.clauses[clause_mark:]:
            if not solver.add_clause(clause):
                return SecResult(
                    equivalent=None, method="bmc",
                    iterations=depth,
                    seconds=time.monotonic() - start,
                    details={"note": "unrolling became unsatisfiable"},
                )
        verdict = solver.solve(assumptions=[any_diff],
                               conflict_budget=conflict_budget)
        if verdict is None:
            return SecResult(
                equivalent=None, method="bmc",
                iterations=depth,
                seconds=time.monotonic() - start,
                details={"aborted": "conflict budget exhausted"},
            )
        if verdict:
            model = solver.model()
            inputs = [
                {
                    net: model.get(frame[net], False)
                    for net in circuit.inputs
                }
                for frame in frame_vars
            ]
            trace = CexTrace(
                inputs=inputs[:-1],
                final_input=inputs[-1],
            )
            return SecResult(
                equivalent=False, method="bmc",
                iterations=depth,
                seconds=time.monotonic() - start,
                counterexample=trace,
                details={"cex_depth": depth},
            )
    return SecResult(
        equivalent=None, method="bmc",
        iterations=max_depth,
        seconds=time.monotonic() - start,
        details={"bound_reached": max_depth},
    )


def check_inequivalence_bmc(spec, impl, match_inputs="name",
                            match_outputs="order", **options):
    """Convenience wrapper over :func:`bmc_refute`."""
    product = build_product(spec, impl, match_inputs=match_inputs,
                            match_outputs=match_outputs)
    return bmc_refute(product, **options)
