"""The verification engine: Fig. 4's outer loop around the fixed point.

``VanEijkVerifier`` proves sequential equivalence by signal correspondence:

1. compute the maximum signal correspondence relation (fixed point);
2. if all corresponding output pairs are related — circuits are equivalent;
3. otherwise extend the signal set by forward retiming with lag 1 and
   repeat; when retiming adds nothing new, the method gives up
   (sound but incomplete — §6).

Engineering additions beyond the paper's flow, all clearly flagged:

* random simulation can outright *refute* equivalence (a simulation run that
  distinguishes an output pair yields a real counterexample trace);
* optional strengthening of Q with an (approximate or exact) reachable-state
  bound (§3's sequential don't cares);
* time and node budgets mirroring the paper's experimental limits.
"""

import time

from ..errors import NodeLimitExceeded, ResourceBudgetExceeded
from ..netlist.product import build_product
from ..reach.result import CexTrace, SecResult
from .correspondence import compute_fixpoint
from .retiming_aug import RetimingAugmenter, is_augmented
from .timeframe import TimeFrame


class VanEijkVerifier:
    """Configurable signal-correspondence SEC engine.

    Parameters mirror the paper's implementation notes: ``use_simulation``
    (§4 sequential simulation seeding), ``use_fundeps`` (§4 functional
    dependencies of the correspondence condition), ``use_retiming`` /
    ``max_retiming_rounds`` (§3 retiming with lag 1, Fig. 4),
    ``reach_bound`` (§3 sequential don't cares: ``None``, ``"approx"`` or
    ``"exact"``).
    """

    def __init__(self, use_simulation=True, use_fundeps=True,
                 use_retiming=True, max_retiming_rounds=3,
                 reach_bound=None, node_limit=None, time_limit=None,
                 sim_frames=24, sim_width=32, seed=2024,
                 max_iterations=None, reorder_threshold=200000,
                 refinement="implication", progress=None, cancel_check=None):
        self.use_simulation = use_simulation
        self.use_fundeps = use_fundeps
        self.use_retiming = use_retiming
        self.max_retiming_rounds = max_retiming_rounds
        self.reach_bound = reach_bound
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.sim_frames = sim_frames
        self.sim_width = sim_width
        self.seed = seed
        self.max_iterations = max_iterations
        self.reorder_threshold = reorder_threshold
        self.refinement = refinement
        # Service-layer hooks: ``progress(kind, **data)`` is called at
        # iteration and retiming-round boundaries; ``cancel_check()`` is
        # polled at the same points — returning true aborts the run with an
        # inconclusive ("cancelled") result instead of raising to the caller.
        self.progress = progress
        self.cancel_check = cancel_check

    def _emit(self, kind, **data):
        if self.progress is not None:
            self.progress(kind, **data)

    # -- public API ---------------------------------------------------------

    def verify(self, spec, impl, match_inputs="name", match_outputs="order"):
        """Check two sequential circuits; returns a :class:`SecResult`."""
        product = build_product(spec, impl, match_inputs=match_inputs,
                                match_outputs=match_outputs)
        return self.verify_product(product)

    def verify_product(self, product):
        start = time.monotonic()
        deadline = None if self.time_limit is None else start + self.time_limit
        try:
            return self._run(product, start, deadline)
        except (NodeLimitExceeded, ResourceBudgetExceeded) as exc:
            return SecResult(
                equivalent=None,
                method="van_eijk",
                seconds=time.monotonic() - start,
                details={"aborted": str(exc)},
            )

    # -- implementation -------------------------------------------------------

    def _run(self, product, start, deadline):
        circuit = product.circuit.copy()
        frame = TimeFrame(
            circuit,
            node_limit=self.node_limit,
            seed=self.seed,
            sim_frames=self.sim_frames,
            sim_width=self.sim_width,
        )
        # A simulation run that splits an output pair is a hard refutation.
        refutation = self._simulation_refutation(frame, product)
        if refutation is not None:
            return SecResult(
                equivalent=False,
                method="van_eijk",
                iterations=0,
                peak_nodes=frame.manager.peak_live_nodes,
                seconds=time.monotonic() - start,
                counterexample=refutation,
                details={"refuted_by": "simulation"},
            )
        reach_edge = self._reach_bound_edge(frame)
        augmenter = RetimingAugmenter(frame)
        total_iterations = 0
        retime_rounds = 0
        result = None
        base_iterations = 0

        def on_iteration(iteration, partition):
            self._emit(
                "iteration",
                iteration=base_iterations + iteration,
                classes=partition.num_classes,
                nodes=frame.manager.peak_live_nodes,
                retime_round=retime_rounds,
            )

        while True:
            functions = frame.build_signal_functions()
            fix = compute_fixpoint(
                frame,
                functions,
                use_simulation=self.use_simulation,
                use_fundeps=self.use_fundeps,
                reach_bound=reach_edge,
                deadline=deadline,
                max_iterations=self.max_iterations,
                reorder_threshold=self.reorder_threshold,
                refinement=self.refinement,
                on_iteration=on_iteration if self.progress else None,
                cancel_check=self.cancel_check,
            )
            total_iterations += fix.iterations
            base_iterations = total_iterations
            result = fix
            if self._outputs_proved(frame, product, fix.partition):
                return SecResult(
                    equivalent=True,
                    method="van_eijk",
                    iterations=total_iterations,
                    peak_nodes=frame.manager.peak_live_nodes,
                    seconds=time.monotonic() - start,
                    details=self._details(frame, product, fix, retime_rounds),
                )
            if not self.use_retiming or retime_rounds >= self.max_retiming_rounds:
                break
            if self.cancel_check is not None and self.cancel_check():
                raise ResourceBudgetExceeded("cancelled")
            new_nets = augmenter.augment_round()
            if not new_nets:
                break
            retime_rounds += 1
            self._emit("retiming_round", round=retime_rounds,
                       new_signals=len(new_nets))
        return SecResult(
            equivalent=None,
            method="van_eijk",
            iterations=total_iterations,
            peak_nodes=frame.manager.peak_live_nodes,
            seconds=time.monotonic() - start,
            details=dict(
                self._details(frame, product, result, retime_rounds),
                inconclusive=True,
            ),
        )

    def _simulation_refutation(self, frame, product):
        """Rebuild a counterexample trace from the stored simulation frames."""
        frames = frame._sim_frames_data
        for frame_idx, values in enumerate(frames):
            for s_out, i_out in product.output_pairs:
                mismatch = values[s_out] ^ values[i_out]
                if mismatch:
                    pattern = (mismatch & -mismatch).bit_length() - 1
                    inputs = []
                    for step in range(frame_idx + 1):
                        step_values = frames[step]
                        inputs.append(
                            {
                                net: bool((step_values[net] >> pattern) & 1)
                                for net in frame.circuit.inputs
                            }
                        )
                    return CexTrace(
                        inputs=inputs[:-1],
                        final_input=inputs[-1],
                    )
        return None

    def _reach_bound_edge(self, frame):
        if self.reach_bound is None:
            return None
        from ..bdd.transfer import transfer
        from ..reach.approx import approximate_reachable
        from ..reach.transition import TransitionSystem
        from ..reach.traversal import symbolic_reachability

        ts = TransitionSystem(frame.circuit, node_limit=self.node_limit)
        if self.reach_bound == "approx":
            bound = approximate_reachable(ts)
        elif self.reach_bound == "exact":
            bound, _, _ = symbolic_reachability(ts)
        else:
            raise ValueError(
                "reach_bound must be None, 'approx' or 'exact', got {!r}".format(
                    self.reach_bound
                )
            )
        var_map = {
            ts.cur_id[net]: frame.state_id[net] for net in ts.cur_id
        }
        edge = transfer(ts.manager, bound, frame.manager, var_map)
        frame.manager.register_root(edge)
        return edge

    def _outputs_proved(self, frame, product, partition):
        for s_out, i_out in product.output_pairs:
            if not self._pair_proved(frame, partition, s_out, i_out):
                return False
        return True

    def _pair_proved(self, frame, partition, s_out, i_out):
        f_s = frame.f(s_out)
        f_i = frame.f(i_out)
        if f_s == f_i:
            return True
        pol_s = not frame.ref_value(s_out)
        pol_i = not frame.ref_value(i_out)
        if pol_s != pol_i:
            # Different value at the reference point (s0, x0): outputs differ
            # in the initial state — never provable (and in fact refutable).
            return False
        norm_s = f_s ^ 1 if pol_s else f_s
        norm_i = f_i ^ 1 if pol_i else f_i
        return partition.same_class(norm_s, norm_i)

    def _details(self, frame, product, fix, retime_rounds):
        return {
            "retime_rounds": retime_rounds,
            "classes": fix.partition.num_classes,
            "functions": fix.partition.num_functions,
            "substitutions": fix.substitutions,
            "eqs_percent": equivalence_percentage(frame, product, fix.partition),
            "augmented_signals": sum(
                1 for net in frame.circuit.gates if is_augmented(net)
            ),
        }


def equivalence_percentage(frame, product, partition):
    """Percentage of specification signals with a corresponding
    implementation signal (the paper's ``eqs`` column)."""
    index = {}
    for cls_idx, cls in enumerate(partition.classes):
        for fn in cls:
            for net, _ in fn.members:
                index[net] = cls_idx
    shared_inputs = set(product.circuit.inputs)
    spec_nets = [
        net for net in product.spec_nets
        if not is_augmented(net) and net in index and net not in shared_inputs
    ]
    impl_classes = {
        index[net]
        for net in product.impl_nets
        if not is_augmented(net) and net in index and net not in shared_inputs
    }
    if not spec_nets:
        return 100.0
    matched = sum(1 for net in spec_nets if index[net] in impl_classes)
    return 100.0 * matched / len(spec_nets)


def check_equivalence_van_eijk(spec, impl, match_inputs="name",
                               match_outputs="order", **options):
    """Convenience wrapper: verify two circuits with default options."""
    verifier = VanEijkVerifier(**options)
    return verifier.verify(spec, impl, match_inputs=match_inputs,
                           match_outputs=match_outputs)
