"""Counterexample-guided class splitting, shared by both refinement backends.

Whenever a refinement query produces a *witness* — a SAT model in the CNF
backend, a satisfying BDD assignment in the symbolic backend — that witness
is a concrete state/input pattern on which two candidate signals differ.
Instead of consuming it only to separate the queried pair, both backends
replay it against *every* current equivalence class: any class whose members
disagree on the replayed values is split immediately, turning one expensive
query into a mass refinement step (the FRAIG-style "simulate the
counterexample" rule).

Splitting by concrete values is sound for the same reason the simulation
pre-partition is (§4 of the paper): the witness satisfies the current
correspondence condition Q, and every valid correspondence holds in every
Q-state, so signals separated by the witness can never be in the maximum
relation.
"""

from ..netlist.simulate import bit_parallel_eval, next_state


def partition_by_value(members, value_of):
    """Group ``members`` by ``value_of(member)``, preserving first-seen order.

    Returns a list of non-empty groups; a single group means the witness had
    no splitting power over these members.  Values only need to be hashable —
    the SAT backend packs per-frame bits into integers, the BDD backend uses
    evaluated function values.
    """
    buckets = {}
    order = []
    for member in members:
        value = value_of(member)
        group = buckets.get(value)
        if group is None:
            group = buckets[value] = []
            order.append(value)
        group.append(member)
    return [buckets[value] for value in order]


def replay_pattern(circuit, initial_state, input_frames, sim=None):
    """Replay one concrete pattern through ``len(input_frames)`` frames.

    ``initial_state`` maps every register to its frame-0 value and
    ``input_frames[j]`` maps every primary input to its frame-``j`` value.
    Returns one full net valuation (``{net: 0/1}``) per frame, computed with
    the same bit-parallel evaluator the random-simulation seeding uses, so a
    replayed witness is guaranteed to agree with the circuit semantics the
    solver encoded.  Pass a prebuilt :class:`CompiledSim` as ``sim`` to reuse
    the compiled kernel across replays (the engines do).
    """
    if sim is None:
        state = {net: int(bool(value)) for net, value in initial_state.items()}
        frames = []
        for inputs in input_frames:
            env = {net: int(bool(value)) for net, value in inputs.items()}
            env.update(state)
            values = bit_parallel_eval(circuit, env, 1)
            frames.append(values)
            state = next_state(circuit, values)
        return frames
    return sim.replay(initial_state, input_frames)


def replay_packed(sim, patterns):
    """Replay many packed patterns bit-parallel in one pass.

    Each pattern is ``(state_bits, frame_bits)``: ``state_bits`` packs the
    frame-0 register values (bit *r* = register ``sim.registers[r]``) and
    ``frame_bits[t]`` packs the frame-``t`` input values (bit *j* = input
    ``sim.inputs[j]``).  Pattern *i* occupies bit *i* of every returned word;
    the result is one word list per frame, indexed by ``sim.index(net)``.

    This is how the parallel refinement engine merges a whole round's worth
    of counterexamples into a single global multi-class split: one compiled
    simulation at width ``len(patterns)`` instead of one replay per witness.

    Sims that provide their own ``replay_packed`` (the numpy
    :class:`~repro.netlist.simulate.MatrixSim`) take over once the pattern
    count exceeds a word: the Python bit-transpose below is ``O(patterns ×
    nets)`` and dominates the merge cost for wide rounds.
    """
    width = len(patterns)
    if width == 0:
        return []
    native = getattr(sim, "replay_packed", None)
    if native is not None and width > 64:
        return native(patterns)
    n_frames = len(patterns[0][1])
    state_words = [0] * len(sim.registers)
    for i, (state_bits, frame_bits) in enumerate(patterns):
        if len(frame_bits) != n_frames:
            raise ValueError("patterns disagree on frame count")
        bit = 1 << i
        for r in range(len(state_words)):
            if (state_bits >> r) & 1:
                state_words[r] |= bit
    input_frame_words = []
    for t in range(n_frames):
        words = [0] * len(sim.inputs)
        for i, (_, frame_bits) in enumerate(patterns):
            bits = frame_bits[t]
            if bits:
                bit = 1 << i
                for j in range(len(words)):
                    if (bits >> j) & 1:
                        words[j] |= bit
        input_frame_words.append(words)
    return sim.replay_words(state_words, input_frame_words, width)
