"""Counterexample diagnosis: turn a refuted SecResult into an explanation.

Given a product machine and a counterexample trace, the report pinpoints the
first frame where an output pair diverges, which register values differ at
that frame, and the structural cone of suspicion (nets feeding the failing
outputs whose values differ between specification and implementation
halves — candidates for the synthesis bug).
"""

from ..errors import VerificationError
from ..netlist.cones import transitive_fanin
from ..netlist.vcd import dumps_trace, replay_frames


class DiagnosisReport:
    """Structured explanation of one counterexample."""

    def __init__(self, trace, failing_pairs, first_divergence_frame,
                 diverging_state, suspect_nets, frames):
        self.trace = trace
        self.failing_pairs = failing_pairs
        self.first_divergence_frame = first_divergence_frame
        self.diverging_state = diverging_state
        self.suspect_nets = suspect_nets
        self.frames = frames

    def summary(self):
        lines = [
            "counterexample of length {} frame(s)".format(self.trace.length),
            "failing output pair(s): {}".format(
                ", ".join("{} != {}".format(s, i)
                          for s, i in self.failing_pairs)
            ),
            "first divergence at frame {}".format(
                self.first_divergence_frame
            ),
        ]
        if self.diverging_state:
            lines.append("registers differing at divergence: {}".format(
                ", ".join(sorted(self.diverging_state))
            ))
        if self.suspect_nets:
            lines.append("suspect nets (divergent, in failing cone): {}".format(
                ", ".join(sorted(self.suspect_nets)[:12])
            ))
        return "\n".join(lines)

    def to_vcd(self, circuit, nets=None):
        """The replayed trace as VCD text (for a waveform viewer)."""
        return dumps_trace(circuit, self.frames, nets=nets)


def diagnose(product, result):
    """Explain a refuted verification result; returns a DiagnosisReport."""
    if not result.refuted:
        raise VerificationError("diagnose() needs a refuted result")
    if result.counterexample is None:
        raise VerificationError("result carries no counterexample")
    trace = result.counterexample
    circuit = product.circuit
    frames = replay_frames(circuit, trace.full_sequence())
    final = frames[-1]
    failing_pairs = [
        (s, i) for s, i in product.output_pairs if final[s] != final[i]
    ]
    if not failing_pairs:
        raise VerificationError(
            "counterexample does not reproduce an output mismatch"
        )
    # Pair up corresponding nets by their names (s.X vs i.X survives light
    # synthesis; otherwise only registers/outputs are compared).
    mirrored = _mirrored_nets(product)
    first_divergence = len(frames) - 1
    for t, frame in enumerate(frames):
        if any(frame[s] != frame[i] for s, i in product.output_pairs):
            first_divergence = t
            break
        if any(frame[a] != frame[b] for a, b in mirrored):
            first_divergence = t
            break
    divergence_frame = frames[first_divergence]
    diverging_state = {
        a for a, b in mirrored
        if a in circuit.registers and divergence_frame[a] != divergence_frame[b]
    }
    # Cone of suspicion: nets in the combinational fanin of a failing output
    # whose mirror partner disagrees at the final frame.
    cone = set()
    for s, i in failing_pairs:
        cone |= transitive_fanin(circuit, [s, i], stop_at_registers=False)
    suspects = {
        a for a, b in mirrored
        if a in cone and final[a] != final[b]
    }
    return DiagnosisReport(
        trace=trace,
        failing_pairs=failing_pairs,
        first_divergence_frame=first_divergence,
        diverging_state=diverging_state,
        suspect_nets=suspects,
        frames=frames,
    )


def _mirrored_nets(product):
    """Pairs (s.X, i.X) present on both sides (name-preserved signals)."""
    from ..netlist.product import IMPL_PREFIX, SPEC_PREFIX

    pairs = []
    for net in product.spec_nets:
        if not net.startswith(SPEC_PREFIX):
            continue
        partner = IMPL_PREFIX + net[len(SPEC_PREFIX):]
        if partner in product.impl_nets:
            pairs.append((net, partner))
    return pairs
