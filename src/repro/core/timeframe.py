"""The two-time-frame model of the product machine (Fig. 1 of the paper).

For every signal v the model provides

* ``f_v : S × X → B`` — the current-state function, a BDD over the state
  variables and the current-frame input variables, and
* ``ν_v : S × X × X → B`` — the next-state function over state, current
  inputs and *next-frame* input variables, obtained by the simultaneous
  substitution ``ν_v = f_v[s := δ(s, x), x := x']`` (Fig. 1's identity
  ``ν_v(s, x_t, x_{t+1}) = f_v(δ(s, x_t), x_{t+1})``).

The model also owns the reference point (s0, x0) used for polarity
normalization and the sequential random simulation that seeds the partition.
"""

import random

from ..bdd import BddManager
from ..netlist.bddnet import build_bdds, gate_bdd
from ..netlist.cones import static_variable_order
from ..netlist.simulate import bit_parallel_eval
from .partition import SignalFunction


class TimeFrame:
    """BDD-level time-frame model of a (product) circuit.

    The circuit may grow (retiming augmentation adds gates); call
    :meth:`refresh` after adding gates to extend the function tables and
    simulation signatures.
    """

    def __init__(self, circuit, manager=None, node_limit=None, seed=2024,
                 sim_frames=24, sim_width=32):
        circuit.validate()
        self.circuit = circuit
        self.manager = manager if manager is not None else BddManager(node_limit)
        self.seed = seed
        self.sim_frames = sim_frames
        self.sim_width = sim_width
        mgr = self.manager
        self.state_id = {}
        self.in_id = {}
        self.next_in_id = {}
        leaves = {}
        # Primary inputs go to the top of the order: the ν functions of
        # wide observers (XORs over many registers) all depend on the shared
        # inputs, and keeping those common variables on top bounds the
        # cross-product of the per-module cofactors.
        order = static_variable_order(circuit)
        order = [n for n in order if n not in circuit.registers] + [
            n for n in order if n in circuit.registers
        ]
        for net in order:
            if net in circuit.registers:
                edge = mgr.add_var("s.{}".format(net))
                self.state_id[net] = mgr.var_of(edge)
                leaves[net] = edge
            else:
                edge = mgr.add_var("x.{}".format(net))
                self.in_id[net] = mgr.var_of(edge)
                next_edge = mgr.add_var("y.{}".format(net))
                self.next_in_id[net] = mgr.var_of(next_edge)
                leaves[net] = edge
        self.leaves = leaves
        self.values = build_bdds(circuit, mgr, leaves)
        for net in circuit.signals():
            mgr.register_root(self.values[net])
        self.delta = {
            name: self.values[reg.data_in]
            for name, reg in circuit.registers.items()
        }
        # The frame-shift substitution of Fig. 1.  The next-frame input
        # literals are not net functions, so they must be protected as roots
        # explicitly or reordering-time garbage collection would free them.
        self.shift_map = {}
        for net, var in self.state_id.items():
            self.shift_map[var] = self.delta[net]
        for net, var in self.in_id.items():
            y_edge = mgr.var_edge(self.next_in_id[net])
            mgr.register_root(y_edge)
            self.shift_map[var] = y_edge
        # Reference point (s0, x0): initial state plus a random input vector.
        rng = random.Random(seed)
        self.ref_env = {}
        for net, var in self.state_id.items():
            self.ref_env[var] = circuit.registers[net].init
        for net, var in self.in_id.items():
            self.ref_env[var] = rng.random() < 0.5
        for net, var in self.next_in_id.items():
            self.ref_env[var] = False  # irrelevant: f_v never depends on y
        self._s0_assignment = {
            self.state_id[net]: circuit.registers[net].init
            for net in circuit.registers
        }
        self._nu_cache = {}
        self._sim_frames_data = None
        self.resimulate()

    # -- simulation --------------------------------------------------------

    def resimulate(self):
        """(Re)run the sequential random simulation; fills ``signatures``.

        The first frame's first-pattern inputs replicate the reference input
        x0, so signatures and polarity normalization agree at the reference
        point.
        """
        circuit = self.circuit
        rng = random.Random(self.seed)
        width = self.sim_width
        full = (1 << width) - 1
        state = {
            net: (full if reg.init else 0)
            for net, reg in circuit.registers.items()
        }
        ref_inputs = {
            net: self.ref_env[self.in_id[net]] for net in circuit.inputs
        }
        signatures = {net: 0 for net in circuit.signals()}
        frames = []
        for frame in range(self.sim_frames):
            env = {}
            for net in circuit.inputs:
                word = rng.getrandbits(width)
                if frame == 0:
                    # Pin pattern bit 0 of frame 0 to the reference input x0.
                    word = (word & ~1) | int(ref_inputs[net])
                env[net] = word
            env.update(state)
            values = bit_parallel_eval(circuit, env, width)
            frames.append(values)
            for net, word in values.items():
                signatures[net] = (signatures[net] << width) | word
            state = {
                net: values[reg.data_in]
                for net, reg in circuit.registers.items()
            }
        self.signatures = signatures
        self._sim_frames_data = frames

    # -- function access ----------------------------------------------------

    def f(self, net):
        """Current-state function of a net."""
        return self.values[net]

    def nu(self, edge):
        """Next-state function of a (possibly normalized) function edge."""
        cached = self._nu_cache.get(edge)
        if cached is None:
            cached = self.manager.vector_compose(edge, self.shift_map)
            self.manager.register_root(cached)
            self._nu_cache[edge] = cached
        return cached

    def ref_value(self, net):
        """Value of the net at the reference point (s0, x0)."""
        return self.manager.evaluate(self.values[net], self.ref_env)

    def restrict_to_initial(self, edge):
        """Cofactor a function by s := s0 (for the T0 comparison, Eq. 2)."""
        return self.manager.restrict(edge, self._s0_assignment)

    def state_var_ids(self):
        return set(self.state_id.values())

    def input_var_ids(self):
        return set(self.in_id.values())

    # -- signal records -------------------------------------------------------

    def build_signal_functions(self, nets=None, include_constant=True):
        """Polarity-normalized :class:`SignalFunction` records.

        Nets with identical normalized functions share a record.  A constant
        record is always included (signals stuck at 0/1 in all reachable
        states then prove equal to it).
        """
        mgr = self.manager
        if nets is None:
            nets = self.circuit.signals()
        records = {}
        if include_constant:
            const = SignalFunction(mgr.true, signature=self._norm_signature(0, True))
            const.add_net("@const", False)
            records[mgr.true] = const
        for net in nets:
            raw = self.values[net]
            value = self.ref_value(net)
            complemented = not value
            norm = raw ^ 1 if complemented else raw
            record = records.get(norm)
            if record is None:
                record = SignalFunction(
                    norm,
                    signature=self._norm_signature(
                        self.signatures[net], complemented
                    ),
                )
                records[norm] = record
            register_var = self.state_id.get(net)
            record.add_net(net, complemented, register_var=register_var)
        return list(records.values())

    def _norm_signature(self, signature, complemented):
        total_bits = self.sim_frames * self.sim_width
        full = (1 << total_bits) - 1
        return (signature ^ full) if complemented else (signature & full)

    # -- growth (retiming augmentation) --------------------------------------

    def add_gate_signal(self, name, gtype, fanins):
        """Add a combinational gate to the circuit and compute its BDD."""
        self.circuit.add_gate(name, gtype, fanins)
        return self.attach_gate_signal(name)

    def attach_gate_signal(self, name):
        """Compute and register the BDD of an already-added gate."""
        gate = self.circuit.gates[name]
        edge = gate_bdd(
            self.manager, gate.gtype, [self.values[f] for f in gate.fanins]
        )
        self.values[name] = edge
        self.manager.register_root(edge)
        return edge
