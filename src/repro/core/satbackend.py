"""SAT-based signal correspondence (the §6 "intermediate variables" route).

The paper predicts that "techniques based on the introduction of extra
variables representing intermediate signals" would scale the method to
larger circuits; Tseitin-encoded CDCL queries are precisely that.  The fixed
point is identical (T0 seeded by simulation, Eq. 3 refinement); only the
combinational check changes:

* two time frames of the product machine are Tseitin-encoded, the second
  frame reading the first frame's register data inputs;
* the correspondence condition Q becomes equivalence clauses over frame-0
  literals (rebuilt each iteration, since classes only ever split);
* a candidate pair splits when SAT finds a Q-state/input pair under which
  the frame-1 literals differ.

The result is bit-for-bit the same partition the BDD backend computes, a
property the test suite checks.
"""

import time

from ..errors import ResourceBudgetExceeded
from ..netlist.simulate import SequentialSimulator
from ..reach.result import SecResult
from ..sat.solver import Solver
from ..sat.tseitin import TseitinEncoder


CONST_NET = "@const"


class _SatSignal:
    __slots__ = ("net", "complemented", "signature", "is_register")

    def __init__(self, net, complemented, signature, is_register):
        self.net = net
        self.complemented = complemented
        self.signature = signature
        self.is_register = is_register


class SatCorrespondence:
    """Signal correspondence over Tseitin-encoded time frames.

    ``k`` generalizes the paper's one-frame induction to k-induction: the
    base case requires class members to agree on the first k frames from
    the initial state, and the inductive step assumes Q on k consecutive
    frames before checking frame k.  ``k=1`` is exactly the paper's
    iteration; larger k strictly increases proving power.
    """

    def __init__(self, product, seed=2024, sim_frames=24, sim_width=32,
                 time_limit=None, k=1):
        if k < 1:
            raise ValueError("induction depth k must be >= 1")
        self.product = product
        self.circuit = product.circuit.copy()
        self.circuit.validate()
        self.seed = seed
        self.sim_frames = sim_frames
        self.sim_width = sim_width
        self.time_limit = time_limit
        self.k = k
        self._simulate()
        self._signals = self._build_signals()

    # -- setup ---------------------------------------------------------------

    def _simulate(self):
        sim = SequentialSimulator(self.circuit, width=self.sim_width,
                                  seed=self.seed)
        sim.run(self.sim_frames)
        self.signatures = sim.signatures
        # Reference = (s0, first random input vector): bit 0 of frame 0 is
        # the last chunk appended... signatures concatenate frames by
        # left-shifting, so frame 0 occupies the *top* chunk.
        self.total_bits = self.sim_frames * self.sim_width
        self.ref_bit = self.total_bits - self.sim_width  # frame 0, pattern 0

    def _ref_value(self, net):
        return bool((self.signatures[net] >> self.ref_bit) & 1)

    def _build_signals(self):
        full = (1 << self.total_bits) - 1
        # The constant-1 sentinel: signals stuck at a constant in every
        # reachable state join its class, and the resulting Q clauses pin
        # them to true — without it Q is weaker than the BDD backend's.
        signals = [_SatSignal(CONST_NET, False, full, False)]
        for net in self.circuit.signals():
            complemented = not self._ref_value(net)
            signature = self.signatures[net]
            if complemented:
                signature ^= full
            signals.append(
                _SatSignal(net, complemented, signature,
                           net in self.circuit.registers)
            )
        return signals

    # -- the fixed point -------------------------------------------------------

    def compute(self, max_iterations=None):
        """Returns ``(classes, iterations)``.

        ``classes`` is a list of lists of ``(net, complemented)`` pairs, the
        same shape the BDD backend exposes through its partition.
        """
        deadline = (None if self.time_limit is None
                    else time.monotonic() + self.time_limit)
        # T0: group by normalized simulation signature, then confirm with
        # exact frame-0-at-s0 checks (condition 1 of Definition 2).
        buckets = {}
        for sig in self._signals:
            buckets.setdefault(sig.signature, []).append(sig)
        classes = list(buckets.values())
        classes = self._split_classes_at_initial(classes, deadline)
        iterations = 0
        while True:
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise ResourceBudgetExceeded("SAT fixpoint budget exhausted")
            classes, changed = self._refine_round(classes, deadline)
            if not changed:
                return classes, iterations

    def _check_deadline(self, deadline):
        if deadline is not None and time.monotonic() > deadline:
            raise ResourceBudgetExceeded("SAT fixpoint time budget exhausted")

    def _encode_unrolled(self, enc, n_frames, fix_initial):
        """Encode ``n_frames`` consecutive frames; returns their var maps.

        Frame j > 0 reads frame j-1's register data inputs; frame 0 is the
        initial state when ``fix_initial`` (unit clauses added by caller) or
        a free symbolic state otherwise.
        """
        frames = []
        leaves = None
        for _ in range(n_frames):
            frame_vars = enc.encode_frame(self.circuit, leaves=leaves)
            frames.append(frame_vars)
            leaves = {
                net: frame_vars[reg.data_in]
                for net, reg in self.circuit.registers.items()
            }
        return frames

    def _split_classes_at_initial(self, classes, deadline):
        """Base case: members agree on the first k frames from s0 (Eq. 2
        for k = 1, its k-induction generalization otherwise)."""
        enc = TseitinEncoder()
        frames = self._encode_unrolled(enc, self.k, fix_initial=True)
        true_var = enc.new_var()
        solver = Solver()
        solver.add_cnf(enc.cnf)
        solver.add_clause([true_var])
        for net, reg in self.circuit.registers.items():
            var = frames[0][net]
            solver.add_clause([var if reg.init else -var])

        def lit(sig, frame_vars):
            var = true_var if sig.net == CONST_NET else frame_vars[sig.net]
            return -var if sig.complemented else var

        def differ(a, b):
            self._check_deadline(deadline)
            for frame_vars in frames:
                la, lb = lit(a, frame_vars), lit(b, frame_vars)
                for assumptions in ([la, -lb], [-la, lb]):
                    if solver.solve(assumptions=assumptions):
                        return True
            return False

        return _split_all(classes, differ)

    def _refine_round(self, classes, deadline):
        enc = TseitinEncoder()
        frames = self._encode_unrolled(enc, self.k + 1, fix_initial=False)
        true_var = enc.new_var()
        solver = Solver()
        solver.add_cnf(enc.cnf)
        solver.add_clause([true_var])

        def lit(sig, frame_vars):
            var = true_var if sig.net == CONST_NET else frame_vars[sig.net]
            return -var if sig.complemented else var

        # Q: equivalence clauses at frames 0..k-1 for every current class.
        for frame_vars in frames[:-1]:
            for cls in classes:
                if len(cls) < 2:
                    continue
                rep = lit(cls[0], frame_vars)
                for member in cls[1:]:
                    m = lit(member, frame_vars)
                    solver.add_clause([-rep, m])
                    solver.add_clause([rep, -m])

        changed_any = [False]
        check_frame = frames[-1]

        def differ(a, b):
            self._check_deadline(deadline)
            la, lb = lit(a, check_frame), lit(b, check_frame)
            for assumptions in ([la, -lb], [-la, lb]):
                if solver.solve(assumptions=assumptions):
                    changed_any[0] = True
                    return True
            return False

        new_classes = _split_all(classes, differ)
        return new_classes, changed_any[0]


def _split_all(classes, differ):
    result = []
    for cls in classes:
        if len(cls) == 1:
            result.append(cls)
            continue
        subgroups = []
        for sig in cls:
            for group in subgroups:
                if not differ(sig, group[0]):
                    group.append(sig)
                    break
            else:
                subgroups.append([sig])
        result.extend(subgroups)
    return result


class _AugmentedProduct:
    """Product view over an augmented working copy of the circuit."""

    def __init__(self, product, circuit):
        self.circuit = circuit
        self.output_pairs = product.output_pairs


def check_equivalence_sat_sweep(spec, impl, match_inputs="name",
                                match_outputs="order", seed=2024,
                                sim_frames=24, sim_width=32,
                                time_limit=None, max_iterations=None, k=1,
                                use_retiming=False, max_retiming_rounds=3):
    """SEC by SAT-based signal correspondence; returns a :class:`SecResult`.

    Sound and incomplete exactly like the BDD engine.  ``k > 1`` runs
    k-induction; ``use_retiming`` runs the Fig. 4 loop (lag-1 signal
    augmentation between fixed points), both strictly increasing proving
    power.
    """
    from ..netlist.product import build_product
    from .retiming_aug import CircuitAugmenter

    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    product = build_product(spec, impl, match_inputs=match_inputs,
                            match_outputs=match_outputs)
    working = product.circuit.copy()
    augmenter = CircuitAugmenter(working)
    total_iterations = 0
    retime_rounds = 0
    classes = []
    while True:
        remaining = None if deadline is None else deadline - time.monotonic()
        engine = SatCorrespondence(
            _AugmentedProduct(product, working), seed=seed,
            sim_frames=sim_frames, sim_width=sim_width,
            time_limit=remaining, k=k,
        )
        try:
            classes, iterations = engine.compute(
                max_iterations=max_iterations
            )
        except ResourceBudgetExceeded as exc:
            return SecResult(equivalent=None, method="van_eijk_sat",
                             seconds=time.monotonic() - start,
                             details={"aborted": str(exc)})
        total_iterations += iterations
        if _outputs_proved_sat(product, classes):
            return SecResult(
                equivalent=True,
                method="van_eijk_sat",
                iterations=total_iterations,
                seconds=time.monotonic() - start,
                details=_sat_details(classes, engine.k, retime_rounds),
            )
        if not use_retiming or retime_rounds >= max_retiming_rounds:
            break
        if not augmenter.augment_round():
            break
        retime_rounds += 1
    return SecResult(
        equivalent=None,
        method="van_eijk_sat",
        iterations=total_iterations,
        seconds=time.monotonic() - start,
        details=_sat_details(classes, k, retime_rounds),
    )


def _outputs_proved_sat(product, classes):
    index = {}
    polarity = {}
    for idx, cls in enumerate(classes):
        for sig in cls:
            index[sig.net] = idx
            polarity[sig.net] = sig.complemented
    for s_out, i_out in product.output_pairs:
        if index[s_out] != index[i_out]:
            return False
        if polarity[s_out] != polarity[i_out]:
            return False
    return True


def _sat_details(classes, k, retime_rounds):
    return {
        "classes": len(classes),
        "functions": sum(len(c) for c in classes),
        "k": k,
        "retime_rounds": retime_rounds,
    }
