"""SAT-based signal correspondence (the §6 "intermediate variables" route).

The paper predicts that "techniques based on the introduction of extra
variables representing intermediate signals" would scale the method to
larger circuits; Tseitin-encoded CDCL queries are precisely that.  The fixed
point is identical (T0 seeded by simulation, Eq. 3 refinement); only the
combinational check changes:

* two time frames of the product machine are Tseitin-encoded, the second
  frame reading the first frame's register data inputs;
* the correspondence condition Q becomes equivalence clauses over frame-0
  literals;
* a candidate pair splits when SAT finds a Q-state/input pair under which
  the frame-1 literals differ.

The result is bit-for-bit the same partition the BDD backend computes, a
property the test suite checks.

Incremental refinement (the default engine)
-------------------------------------------

The naive ("monolithic") formulation rebuilds a fresh solver and re-encodes
both unrolled frames on every refinement round, discarding all learned
clauses.  The incremental engine instead keeps **one solver and one
encoding per** :meth:`SatCorrespondence.compute` call:

* the ``k + 1`` unrolled frames are Tseitin-encoded exactly once, into an
  incremental :class:`~repro.sat.solver.Solver` whose learned clauses,
  VSIDS activities and watch lists persist across every round (see the
  incremental invariant documented in ``sat/solver.py``);
* the initial-state constraint of the base case is guarded by an
  *activation literal* and only assumed by base-case queries, so base and
  inductive queries share the single encoding;
* each round's correspondence condition Q is added as equivalence clauses
  guarded by a fresh per-round activation literal; queries assume the
  literal, and retiring the round adds the unit ``-act`` so the refuted
  constraints retract without rebuilding anything;
* **counterexample-guided splitting**: every satisfying model is a concrete
  unrolled-trace witness; it is replayed through bit-parallel simulation
  (:mod:`repro.core.cexsplit`) and used to split *all* current classes at
  once, so one SAT query can refine many classes before the next query.

``SatCorrespondence.stats`` counts solver constructions, frame encodings,
queries and counterexample splits; ``solver_stats()`` folds in the live
solver's conflict/propagation counters.  Both are threaded through the
``progress`` callback as ``refinement_round`` events for the service layer.
"""

import time

from ..errors import ResourceBudgetExceeded
from ..netlist.simulate import SequentialSimulator, make_sim
from ..reach.result import SecResult
from ..sat.solver import Solver
from ..sat.tseitin import TseitinEncoder
from .cexsplit import partition_by_value, replay_pattern


CONST_NET = "@const"

#: Solver-effort counters copied from :meth:`Solver.stats` snapshots.
_SOLVER_COUNTERS = ("conflicts", "decisions", "propagations", "restarts")


class _SatSignal:
    __slots__ = ("net", "complemented", "signature", "is_register")

    def __init__(self, net, complemented, signature, is_register):
        self.net = net
        self.complemented = complemented
        self.signature = signature
        self.is_register = is_register


class SatCorrespondence:
    """Signal correspondence over Tseitin-encoded time frames.

    ``k`` generalizes the paper's one-frame induction to k-induction: the
    base case requires class members to agree on the first k frames from
    the initial state, and the inductive step assumes Q on k consecutive
    frames before checking frame k.  ``k=1`` is exactly the paper's
    iteration; larger k strictly increases proving power.

    ``incremental`` selects the engine: ``True`` (default) keeps one solver
    and one encoding for the whole fixed point, ``False`` preserves the
    original round-per-solver formulation (kept as a differential baseline;
    both compute the identical partition).  ``progress(kind, **data)`` is
    called with ``refinement_round`` events carrying class counts and
    solver statistics; ``cancel_check()`` is polled before every query.
    """

    def __init__(self, product, seed=2024, sim_frames=24, sim_width=32,
                 time_limit=None, k=1, incremental=True, sim_backend="auto",
                 progress=None, cancel_check=None):
        if k < 1:
            raise ValueError("induction depth k must be >= 1")
        self.product = product
        self.circuit = product.circuit.copy()
        self.circuit.validate()
        self.seed = seed
        self.sim_frames = sim_frames
        self.sim_width = sim_width
        self.time_limit = time_limit
        self.k = k
        self.incremental = incremental
        self.sim_backend = sim_backend
        self.progress = progress
        self.cancel_check = cancel_check
        self.stats = {
            "solver_constructions": 0,
            "frame_encodings": 0,
            "rounds": 0,
            "sat_queries": 0,
            "cex_patterns": 0,
            "cex_class_splits": 0,
        }
        for key in _SOLVER_COUNTERS:
            self.stats[key] = 0
        self._solver = None
        self._frames = None
        self._true_var = None
        self._init_act = None
        # One sim kernel per compute(): partition seeding and every
        # counterexample replay share it (and its single topo sort).
        # ``sim_backend`` selects it (auto = matrix when numpy imports).
        self._csim = make_sim(self.circuit, sim_backend)
        self._simulate()
        self._signals = self._build_signals()

    # -- setup ---------------------------------------------------------------

    def _simulate(self):
        sim = SequentialSimulator(self.circuit, width=self.sim_width,
                                  seed=self.seed, compiled=self._csim)
        sim.run(self.sim_frames)
        self.signatures = sim.signatures
        # Reference = (s0, first random input vector): bit 0 of frame 0 is
        # the last chunk appended... signatures concatenate frames by
        # left-shifting, so frame 0 occupies the *top* chunk.
        self.total_bits = self.sim_frames * self.sim_width
        self.ref_bit = self.total_bits - self.sim_width  # frame 0, pattern 0

    def _ref_value(self, net):
        return bool((self.signatures[net] >> self.ref_bit) & 1)

    def _build_signals(self):
        full = (1 << self.total_bits) - 1
        # The constant-1 sentinel: signals stuck at a constant in every
        # reachable state join its class, and the resulting Q clauses pin
        # them to true — without it Q is weaker than the BDD backend's.
        signals = [_SatSignal(CONST_NET, False, full, False)]
        for net in self.circuit.signals():
            complemented = not self._ref_value(net)
            signature = self.signatures[net]
            if complemented:
                signature ^= full
            signals.append(
                _SatSignal(net, complemented, signature,
                           net in self.circuit.registers)
            )
        return signals

    # -- the fixed point -------------------------------------------------------

    def compute(self, max_iterations=None):
        """Returns ``(classes, iterations)``.

        ``classes`` is a list of lists of ``(net, complemented)`` pairs, the
        same shape the BDD backend exposes through its partition.
        """
        deadline = (None if self.time_limit is None
                    else time.monotonic() + self.time_limit)
        # T0: group by normalized simulation signature, then confirm with
        # exact frame-0-at-s0 checks (condition 1 of Definition 2).
        buckets = {}
        for sig in self._signals:
            buckets.setdefault(sig.signature, []).append(sig)
        classes = list(buckets.values())
        if self.incremental:
            self._setup_incremental()
            classes = self._split_at_initial_incremental(classes, deadline)
        else:
            classes = self._split_classes_at_initial(classes, deadline)
        self._emit("initial_split", classes=len(classes),
                   **self.solver_stats())
        iterations = 0
        while True:
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise ResourceBudgetExceeded("SAT fixpoint budget exhausted")
            if self.incremental:
                classes, changed = self._refine_round_incremental(
                    classes, deadline)
            else:
                classes, changed = self._refine_round(classes, deadline)
            self.stats["rounds"] = iterations
            self._emit("refinement_round", round=iterations,
                       classes=len(classes), changed=changed,
                       **self._round_extra(), **self.solver_stats())
            if not changed:
                return classes, iterations

    def _round_extra(self):
        """Extra per-round event payload; the parallel engine overrides this
        with worker timing/speedup data."""
        return {}

    def solver_stats(self):
        """Engine counters with the live solver's effort folded in."""
        stats = dict(self.stats)
        if self._solver is not None:
            live = self._solver.stats()
            for key in _SOLVER_COUNTERS:
                stats[key] += live[key]
            stats["learned"] = live["learned"]
            stats["clauses"] = live["clauses"]
        return stats

    def _emit(self, kind, **data):
        if self.progress is not None:
            self.progress(kind, **data)

    def _absorb_solver(self, solver):
        """Fold a discarded (monolithic-round) solver's effort into stats."""
        live = solver.stats()
        for key in _SOLVER_COUNTERS:
            self.stats[key] += live[key]

    def _check_budget(self, deadline):
        if deadline is not None and time.monotonic() > deadline:
            raise ResourceBudgetExceeded("SAT fixpoint time budget exhausted")
        if self.cancel_check is not None and self.cancel_check():
            raise ResourceBudgetExceeded("cancelled")

    def _encode_unrolled(self, enc, n_frames):
        """Encode ``n_frames`` consecutive frames; returns their var maps.

        Frame j > 0 reads frame j-1's register data inputs; frame 0 is a
        free symbolic state (base-case callers pin it with unit or guarded
        clauses).
        """
        self.stats["frame_encodings"] += 1
        frames = []
        leaves = None
        for _ in range(n_frames):
            frame_vars = enc.encode_frame(self.circuit, leaves=leaves)
            frames.append(frame_vars)
            leaves = {
                net: frame_vars[reg.data_in]
                for net, reg in self.circuit.registers.items()
            }
        return frames

    def _new_solver(self):
        self.stats["solver_constructions"] += 1
        return Solver()

    # -- incremental engine ----------------------------------------------------

    def _setup_incremental(self):
        """One encoding, one solver, both shared by base case and rounds."""
        enc = TseitinEncoder()
        self._frames = self._encode_unrolled(enc, self.k + 1)
        self._true_var = enc.new_var()
        solver = self._new_solver()
        solver.add_cnf(enc.cnf)
        solver.add_clause([self._true_var])
        # Initial-state constraint, guarded: only base-case queries assume
        # the activation literal, so the same frames serve the free-state
        # inductive queries.
        self._init_act = solver.new_var()
        for net, reg in self.circuit.registers.items():
            var = self._frames[0][net]
            solver.add_clause([var if reg.init else -var, -self._init_act])
        self._solver = solver

    def _lit(self, sig, frame_vars):
        var = self._true_var if sig.net == CONST_NET else frame_vars[sig.net]
        return -var if sig.complemented else var

    def _query(self, assumptions, deadline):
        self._check_budget(deadline)
        self.stats["sat_queries"] += 1
        return self._solver.solve(assumptions=assumptions)

    def _replay_model(self, n_frames):
        """Replay the current model's trace; per-frame net valuations."""
        solver = self._solver
        state = {
            net: solver.value(self._frames[0][net])
            for net in self.circuit.registers
        }
        input_frames = [
            {net: solver.value(self._frames[j][net])
             for net in self.circuit.inputs}
            for j in range(n_frames)
        ]
        self.stats["cex_patterns"] += 1
        return replay_pattern(self.circuit, state, input_frames,
                              sim=self._csim)

    def _value_key(self, frame_values):
        """Pack the replayed per-frame bits of a signal into one word."""
        n = len(frame_values)
        full = (1 << n) - 1

        def value_of(sig):
            if sig.net == CONST_NET:
                word = full
            else:
                word = 0
                for values in frame_values:
                    word = (word << 1) | (values[sig.net] & 1)
            return word ^ (full if sig.complemented else 0)

        return value_of

    def _split_items(self, items, value_of):
        """Split every pending ``(verified, rest)`` item by replayed values.

        Verified members are equal to their leader in *every* state the
        current queries range over — the witness included — so only the
        unprocessed ``rest`` can leave; leftover groups become new items.
        """
        out = []
        for verified, rest in items:
            groups = partition_by_value([verified[0]] + rest, value_of)
            if len(groups) > 1:
                self.stats["cex_class_splits"] += 1
            out.append((verified, groups[0][1:]))
            for group in groups[1:]:
                out.append(([group[0]], group[1:]))
        return out

    def _split_at_initial_incremental(self, classes, deadline):
        """Base case on the shared encoding: members agree on the first k
        frames from s0 (Eq. 2 for k = 1, its k-induction generalization
        otherwise), with counterexample inputs replayed against all
        classes."""
        base_frames = self._frames[:self.k]
        done = [cls for cls in classes if len(cls) == 1]
        items = [([cls[0]], cls[1:]) for cls in classes if len(cls) > 1]
        while items:
            verified, rest = items.pop()
            if not rest:
                done.append(verified)
                continue
            member = rest.pop(0)
            leader = verified[0]
            model_frames = None
            for frame_vars in base_frames:
                la = self._lit(leader, frame_vars)
                lb = self._lit(member, frame_vars)
                for assumptions in ([self._init_act, la, -lb],
                                    [self._init_act, -la, lb]):
                    if self._query(assumptions, deadline):
                        model_frames = self._replay_model(self.k)
                        break
                if model_frames is not None:
                    break
            if model_frames is None:
                verified.append(member)
                items.append((verified, rest))
                continue
            # The witness inputs distinguish leader and member somewhere in
            # the base window; split everything still pending by the full
            # k-frame value words.
            items.append((verified, [member] + rest))
            items = self._split_items(items, self._value_key(model_frames))
        # The base case is settled for good; retire its guard so the
        # initial-state clauses don't tax the inductive rounds.
        self._solver.add_clause([-self._init_act])
        self._solver.simplify()
        return done

    def _refine_round_incremental(self, classes, deadline):
        """One Eq. 3 round: Q guarded by a fresh activation literal, models
        replayed into mass splits, refuted constraints retired by unit."""
        solver = self._solver
        act = solver.new_var()
        for frame_vars in self._frames[:-1]:
            for cls in classes:
                if len(cls) < 2:
                    continue
                rep = self._lit(cls[0], frame_vars)
                for member in cls[1:]:
                    m = self._lit(member, frame_vars)
                    # Guard literal last: the solver watches the first two
                    # literals, so assuming ``act`` does not walk the whole
                    # round's clause group on every single query.
                    solver.add_clause([-rep, m, -act])
                    solver.add_clause([rep, -m, -act])
        check_frame = self._frames[-1]
        done = [cls for cls in classes if len(cls) == 1]
        items = [([cls[0]], list(cls[1:])) for cls in classes if len(cls) > 1]
        while items:
            verified, rest = items.pop()
            if not rest:
                done.append(verified)
                continue
            member = rest.pop(0)
            la = self._lit(verified[0], check_frame)
            lb = self._lit(member, check_frame)
            distinguished = False
            for assumptions in ([act, la, -lb], [act, -la, lb]):
                if self._query(assumptions, deadline):
                    distinguished = True
                    break
            if not distinguished:
                verified.append(member)
                items.append((verified, rest))
                continue
            # The model satisfies Q on the first k frames, so the replayed
            # check-frame valuation is a legitimate Eq. 3 splitter for
            # every class, not just this pair.
            check_values = self._replay_model(self.k + 1)[-1]
            items.append((verified, [member] + rest))
            items = self._split_items(items, self._value_key([check_values]))
        # Retire this round's Q: the unit permanently satisfies the guarded
        # clauses, and simplify() physically drops them (plus any learned
        # clauses mentioning the guard) so propagation cost tracks the live
        # formula instead of growing with every retired round.
        solver.add_clause([-act])
        solver.simplify()
        return done, len(done) > len(classes)

    # -- monolithic engine (differential baseline) -----------------------------

    def _split_classes_at_initial(self, classes, deadline):
        """Base case with a throwaway per-call solver (original engine)."""
        enc = TseitinEncoder()
        frames = self._encode_unrolled(enc, self.k)
        true_var = enc.new_var()
        solver = self._new_solver()
        solver.add_cnf(enc.cnf)
        solver.add_clause([true_var])
        for net, reg in self.circuit.registers.items():
            var = frames[0][net]
            solver.add_clause([var if reg.init else -var])

        def lit(sig, frame_vars):
            var = true_var if sig.net == CONST_NET else frame_vars[sig.net]
            return -var if sig.complemented else var

        def differ(a, b):
            self._check_budget(deadline)
            for frame_vars in frames:
                la, lb = lit(a, frame_vars), lit(b, frame_vars)
                for assumptions in ([la, -lb], [-la, lb]):
                    self.stats["sat_queries"] += 1
                    if solver.solve(assumptions=assumptions):
                        return True
            return False

        try:
            return _split_all(classes, differ)
        finally:
            self._absorb_solver(solver)

    def _refine_round(self, classes, deadline):
        """One Eq. 3 round, rebuilt from scratch (original engine)."""
        enc = TseitinEncoder()
        frames = self._encode_unrolled(enc, self.k + 1)
        true_var = enc.new_var()
        solver = self._new_solver()
        solver.add_cnf(enc.cnf)
        solver.add_clause([true_var])

        def lit(sig, frame_vars):
            var = true_var if sig.net == CONST_NET else frame_vars[sig.net]
            return -var if sig.complemented else var

        # Q: equivalence clauses at frames 0..k-1 for every current class.
        for frame_vars in frames[:-1]:
            for cls in classes:
                if len(cls) < 2:
                    continue
                rep = lit(cls[0], frame_vars)
                for member in cls[1:]:
                    m = lit(member, frame_vars)
                    solver.add_clause([-rep, m])
                    solver.add_clause([rep, -m])

        changed_any = [False]
        check_frame = frames[-1]

        def differ(a, b):
            self._check_budget(deadline)
            la, lb = lit(a, check_frame), lit(b, check_frame)
            for assumptions in ([la, -lb], [-la, lb]):
                self.stats["sat_queries"] += 1
                if solver.solve(assumptions=assumptions):
                    changed_any[0] = True
                    return True
            return False

        try:
            new_classes = _split_all(classes, differ)
        finally:
            self._absorb_solver(solver)
        return new_classes, changed_any[0]


def _split_all(classes, differ):
    result = []
    for cls in classes:
        if len(cls) == 1:
            result.append(cls)
            continue
        subgroups = []
        for sig in cls:
            for group in subgroups:
                if not differ(sig, group[0]):
                    group.append(sig)
                    break
            else:
                subgroups.append([sig])
        result.extend(subgroups)
    return result


class _AugmentedProduct:
    """Product view over an augmented working copy of the circuit."""

    def __init__(self, product, circuit):
        self.circuit = circuit
        self.output_pairs = product.output_pairs


def check_equivalence_sat_sweep(spec, impl, match_inputs="name",
                                match_outputs="order", seed=2024,
                                sim_frames=24, sim_width=32,
                                time_limit=None, max_iterations=None, k=1,
                                use_retiming=False, max_retiming_rounds=3,
                                incremental=True, refine_workers=0,
                                refine_batch=0, sim_backend="auto",
                                progress=None, cancel_check=None):
    """SEC by SAT-based signal correspondence; returns a :class:`SecResult`.

    Sound and incomplete exactly like the BDD engine.  ``k > 1`` runs
    k-induction; ``use_retiming`` runs the Fig. 4 loop (lag-1 signal
    augmentation between fixed points), both strictly increasing proving
    power.  ``incremental=False`` falls back to the solver-per-round
    baseline engine (identical verdicts, kept for differential testing and
    benchmarking).  ``refine_workers=N`` (N >= 1) runs each refinement
    round's per-class checks through a work-stealing pool of N persistent
    worker processes (:mod:`repro.core.parallel`) — same fixed point,
    shared wall clock; ``refine_batch`` caps the pair-check load per
    stolen batch (0 = auto).  ``sim_backend`` selects the simulation
    kernel (:data:`~repro.netlist.simulate.SIM_BACKENDS`).
    ``progress``/``cancel_check`` are the service-layer hooks shared with
    the BDD engine.
    """
    from ..netlist.product import build_product
    from .retiming_aug import CircuitAugmenter

    refine_workers = int(refine_workers or 0)
    refine_batch = int(refine_batch or 0)
    if refine_workers < 0:
        raise ValueError("refine_workers must be >= 0")
    if refine_batch < 0:
        raise ValueError("refine_batch must be >= 0")
    if refine_workers and not incremental:
        raise ValueError(
            "refine_workers requires the incremental engine "
            "(incremental=True); the monolithic baseline stays serial")
    if refine_workers:
        from .parallel import ParallelSatCorrespondence as engine_cls
    else:
        engine_cls = SatCorrespondence

    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    product = build_product(spec, impl, match_inputs=match_inputs,
                            match_outputs=match_outputs)
    working = product.circuit.copy()
    augmenter = CircuitAugmenter(working)
    total_iterations = 0
    retime_rounds = 0
    classes = []
    totals = None
    while True:
        remaining = None if deadline is None else deadline - time.monotonic()
        extra = {}
        if refine_workers:
            extra["refine_workers"] = refine_workers
            extra["refine_batch"] = refine_batch
        engine = engine_cls(
            _AugmentedProduct(product, working), seed=seed,
            sim_frames=sim_frames, sim_width=sim_width,
            time_limit=remaining, k=k, incremental=incremental,
            sim_backend=sim_backend,
            progress=progress, cancel_check=cancel_check, **extra,
        )
        try:
            classes, iterations = engine.compute(
                max_iterations=max_iterations
            )
        except ResourceBudgetExceeded as exc:
            details = {"aborted": str(exc)}
            details["solver_stats"] = _merge_stats(
                totals, engine.solver_stats())
            return SecResult(equivalent=None, method="van_eijk_sat",
                             seconds=time.monotonic() - start,
                             details=details)
        total_iterations += iterations
        totals = _merge_stats(totals, engine.solver_stats())
        if _outputs_proved_sat(product, classes):
            return SecResult(
                equivalent=True,
                method="van_eijk_sat",
                iterations=total_iterations,
                seconds=time.monotonic() - start,
                details=_sat_details(classes, engine.k, retime_rounds,
                                     totals, refine_workers, refine_batch),
            )
        if not use_retiming or retime_rounds >= max_retiming_rounds:
            break
        if not augmenter.augment_round():
            break
        retime_rounds += 1
        if progress is not None:
            progress("retiming_round", round=retime_rounds)
    return SecResult(
        equivalent=None,
        method="van_eijk_sat",
        iterations=total_iterations,
        seconds=time.monotonic() - start,
        details=_sat_details(classes, k, retime_rounds, totals,
                             refine_workers, refine_batch),
    )


def _merge_stats(totals, stats):
    """Sum engine stats across Fig. 4 retiming rounds (snapshots override)."""
    if totals is None:
        return dict(stats)
    merged = dict(totals)
    for key, value in stats.items():
        if key in ("learned", "clauses"):
            merged[key] = value  # database-size snapshots, not counters
        else:
            merged[key] = merged.get(key, 0) + value
    return merged


def _outputs_proved_sat(product, classes):
    index = {}
    polarity = {}
    for idx, cls in enumerate(classes):
        for sig in cls:
            index[sig.net] = idx
            polarity[sig.net] = sig.complemented
    for s_out, i_out in product.output_pairs:
        if index[s_out] != index[i_out]:
            return False
        if polarity[s_out] != polarity[i_out]:
            return False
    return True


def _sat_details(classes, k, retime_rounds, solver_stats=None,
                 refine_workers=0, refine_batch=0):
    details = {
        "classes": len(classes),
        "functions": sum(len(c) for c in classes),
        "k": k,
        "retime_rounds": retime_rounds,
    }
    if refine_workers:
        details["refine_workers"] = refine_workers
        details["refine_batch"] = refine_batch
    if solver_stats is not None:
        details["solver_stats"] = dict(solver_stats)
    return details
