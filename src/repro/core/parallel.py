"""Parallel fixed-point refinement for the SAT correspondence engine.

Within one refinement round the Q-constrained checks for different
equivalence classes are independent given the previous round's partition:
every query ranges over the same Q (built from the round-*start* classes),
so class A's verdicts never depend on how class B is being split this
round.  :class:`ParallelSatCorrespondence` exploits that with a
**work-stealing pool with batched dispatch**
(:class:`~repro.service.procs.StealPool`): the round's nontrivial classes
are packed into batches of bounded pair-check load, workers pull the next
batch the moment they go idle, and each batch amortizes one pipe
round-trip over many activation-literal queries on the worker's persistent
incremental encoding (encoded once per worker, at pool spawn — the PR 3
invariant, per worker).

Why the same fixed point falls out
----------------------------------

Van Eijk's iteration computes the *greatest* fixed point of the Eq. 3
refinement operator, and that fixed point is unique: any sequence of sound
splits — splits justified by a witness satisfying the round-start Q —
converges to the identical final partition regardless of order.  Workers
only split on SAT models of ``Q ∧ (leader ≠ member)``, the master's global
merge only splits on replays of those same models (replay semantics equals
encoding semantics, pinned by the cexsplit tests), and verified pairs are
UNSAT-proven equal in *every* Q-state — so no round-mate's witness can
contradict them.  Hence the parallel engine is verdict- **and**
partition-identical to the serial one *for any batch size and any stealing
order*; ``tests/core/test_parallel.py`` asserts exactly that on random
pairs, the Table-1 suite and the regression corpus.

Mechanics
---------

* Workers are **raw-fork** children (``service.procs.fork_worker`` under
  the pool), not ``multiprocessing`` processes: service workers are
  daemonic and daemonic processes may not start multiprocessing children,
  but they may fork.  Messages are length-prefixed pickles over plain
  pipes.
* Each round the master **broadcasts** the full round-start partition (as
  signal indices — the ``_signals`` list is shared by fork) once; every
  worker retires the previous round's activation literal, allocates a
  fresh one, and adds Q clauses for *all* classes under it.  Batches then
  carry only class ids: the worker queries its batch's classes,
  mass-splits within the batch on its own counterexamples, and streams the
  result back, keeping the literal live for the next stolen batch.
* Counterexample models stream back as compact bit-patterns
  (``(state_bits, per-frame input_bits)``) *per batch*, and the master
  replays each batch's patterns **while other batches are still running**
  (the ``on_result`` drain hook — SAT/replay overlap, not a barrier),
  accumulating the check-frame words into one wide splitter.  The
  end-of-round global multi-class split is then a pure partition step over
  the accumulated words — identical to replaying all patterns at once,
  because value words are equal iff every batch sub-word is equal.
* Batching is deterministic: nontrivial classes sorted by size descending,
  greedily packed until the batch's load (members − 1, the pair-check
  lower bound) reaches ``refine_batch`` (0 = auto: total load over
  ``4 × workers``, so the pool has slack to steal).  Rounds with fewer
  than two nontrivial classes run serially on the master's own solver —
  the pool only pays off when there is real fan-out.
* A **worker crash** loses only its in-flight batch: the pool re-queues
  the batch, re-forks the worker from current master state, re-sends the
  round setup, and the engine emits a ``worker_respawn`` event (plus one
  solver construction/frame encoding, counted honestly).  Only respawn
  exhaustion or a handler error degrades the engine to serial rounds;
  budget/cancel aborts tear the pool down via SIGTERM.  Either way
  ``compute()`` leaves no orphans behind.
"""

import os
import time

from ..errors import ResourceBudgetExceeded
from ..sat.solver import Solver
from ..sat.tseitin import TseitinEncoder
from ..service.procs import StealPool, StealPoolError
from .cexsplit import partition_by_value, replay_packed
from .satbackend import CONST_NET, _SOLVER_COUNTERS, SatCorrespondence


def _make_batches(classes, nontrivial, n_workers, batch_cap):
    """Deterministic packing of class ids into bounded-load batches.

    Load is ``len(cls) - 1``, the minimum number of pair checks the class
    costs.  Classes are taken largest-first (ties by id) and packed
    greedily until the running load would exceed ``batch_cap``
    (``<= 0`` = auto: total load spread over ``4 × n_workers`` batches, so
    stealing has slack without making round-trips dominate).  A class
    never splits across batches — its mass-split locality is the point.
    """
    order = sorted(nontrivial, key=lambda cid: (-len(classes[cid]), cid))
    if batch_cap <= 0:
        total = sum(len(classes[cid]) - 1 for cid in nontrivial)
        batch_cap = max(1, -(-total // (4 * n_workers)))
    batches = []
    current, load = [], 0
    for cid in order:
        weight = len(classes[cid]) - 1
        if current and load + weight > batch_cap:
            batches.append(sorted(current))
            current, load = [], 0
        current.append(cid)
        load += weight
    if current:
        batches.append(sorted(current))
    return batches


class ParallelSatCorrespondence(SatCorrespondence):
    """Signal correspondence with work-stealing parallel refinement rounds.

    Drop-in for :class:`SatCorrespondence` (incremental mode only); the
    base case and any low-fan-out round still run on the master's own
    solver, so ``refine_workers=N`` costs ``1 + N`` solver constructions
    and frame encodings per ``compute()`` (plus one per respawned
    worker).  ``refine_batch`` caps the pair-check load per stolen batch
    (0 = auto).
    """

    #: Rounds with fewer nontrivial classes than this run serially.
    min_parallel_classes = 2

    #: Total worker respawns tolerated per pool before degrading to
    #: serial rounds.
    max_respawns = 4

    def __init__(self, product, refine_workers=2, refine_batch=0, **kwargs):
        refine_workers = int(refine_workers)
        if refine_workers < 1:
            raise ValueError("refine_workers must be >= 1")
        refine_batch = int(refine_batch or 0)
        if refine_batch < 0:
            raise ValueError("refine_batch must be >= 0")
        if not kwargs.pop("incremental", True):
            raise ValueError(
                "parallel refinement requires the incremental engine")
        super().__init__(product, incremental=True, **kwargs)
        self.refine_workers = refine_workers
        self.refine_batch = refine_batch
        self.stats["worker_respawns"] = 0
        self._pool = None
        self._pool_broken = not hasattr(os, "fork")
        self._net_index = {sig.net: i for i, sig in enumerate(self._signals)}
        self._round_stats = {"workers": 0}
        self._round_no = 0

    # -- lifecycle ---------------------------------------------------------

    def compute(self, max_iterations=None):
        try:
            return super().compute(max_iterations=max_iterations)
        finally:
            self.close()

    def close(self):
        """Tear the worker pool down; idempotent, leaves no orphans."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _ensure_pool(self):
        if self._pool is not None or self._pool_broken:
            return
        try:
            self._pool = StealPool(
                self.refine_workers, _RefinementWorker, (self,),
                max_respawns=self.max_respawns,
                on_respawn=self._note_respawn,
            )
        except StealPoolError:
            self._pool_broken = True
            return
        # Each worker builds one solver + one unrolled encoding at spawn.
        self.stats["solver_constructions"] += len(self._pool)
        self.stats["frame_encodings"] += len(self._pool)

    def _teardown_pool(self, broken=False):
        self.close()
        if broken:
            self._pool_broken = True

    def _note_respawn(self, worker_index):
        """A pool worker died and was re-forked: count the rebuild."""
        self.stats["worker_respawns"] += 1
        self.stats["solver_constructions"] += 1
        self.stats["frame_encodings"] += 1
        self._emit("worker_respawn", worker=worker_index,
                   round=self._round_no)

    # -- the parallel round ------------------------------------------------

    def _round_extra(self):
        return dict(self._round_stats)

    def _refine_round_incremental(self, classes, deadline):
        nontrivial = [cid for cid, cls in enumerate(classes) if len(cls) > 1]
        if len(nontrivial) < self.min_parallel_classes or self._pool_broken:
            self._round_stats = {"workers": 0}
            return super()._refine_round_incremental(classes, deadline)
        self._ensure_pool()
        if self._pool is None:
            self._round_stats = {"workers": 0}
            return super()._refine_round_incremental(classes, deadline)
        round_start = time.monotonic()
        self._round_no += 1
        class_ids = [[self._net_index[sig.net] for sig in cls]
                     for cls in classes]
        batches = _make_batches(classes, nontrivial, len(self._pool),
                                self.refine_batch)
        csim = self._csim
        out_by_cid = {}
        worker_seconds = [0.0] * len(self._pool)
        # The round's accumulated splitter: pattern words from every
        # drained batch, concatenated by left-shift.  Equality of the
        # accumulated words is equality on every batch sub-word, so the
        # final split is identical to one global replay — but the replays
        # happen *here*, overlapped with still-running SAT batches.
        combined = [0] * len(csim.net_order)
        offsets = {"bits": 0}

        def merge(bid, value, worker_index):
            out_map, patterns, delta, elapsed = value
            out_by_cid.update(out_map)
            worker_seconds[worker_index] += elapsed
            for key, amount in delta.items():
                self.stats[key] += amount
            if patterns:
                words = replay_packed(csim, patterns)[-1]
                shift = offsets["bits"]
                for slot, word in enumerate(words):
                    if word:
                        combined[slot] |= word << shift
                offsets["bits"] += len(patterns)
            return False

        try:
            self._pool.broadcast((self._round_no, class_ids, deadline))
            self._pool.run_batches(
                batches, on_result=merge,
                poll=lambda: self._check_budget(deadline))
        except ResourceBudgetExceeded:
            raise
        except Exception:
            # Respawn exhaustion or a handler error: degrade to the serial
            # engine — identical fixed point, just no fan-out.  Partial
            # worker results are dropped (the serial redo recomputes the
            # whole round); their solver effort stays counted, it really
            # was spent.
            self._teardown_pool(broken=True)
            self._emit("refinement_pool_fallback", round=self._round_no)
            self._round_stats = {"workers": 0}
            return super()._refine_round_incremental(classes, deadline)

        # Deterministic merge: verified subclasses in class-id order, then
        # one global split by the accumulated pattern words.
        signals = self._signals
        new_classes = []
        for cid, cls in enumerate(classes):
            subclasses = out_by_cid.get(cid)
            if subclasses is None:
                new_classes.append(cls)
            else:
                for id_list in subclasses:
                    new_classes.append([signals[i] for i in id_list])
        if offsets["bits"]:
            new_classes = self._global_split(new_classes, combined,
                                             offsets["bits"])
        round_seconds = time.monotonic() - round_start
        busy = sum(worker_seconds)
        self._round_stats = {
            "workers": len(self._pool),
            "batches": len(batches),
            "worker_seconds": [round(s, 6) for s in worker_seconds],
            "round_seconds": round(round_seconds, 6),
            "speedup": (round(busy / round_seconds, 3)
                        if round_seconds > 0 else 0.0),
        }
        return new_classes, len(new_classes) > len(classes)

    def _global_split(self, classes, words, width):
        """Split every class by the accumulated check-frame pattern words.

        Each pattern satisfied its round's Q, so its replayed check-frame
        valuation is a sound Eq. 3 splitter for every class; ``words`` is
        the bit-concatenation of every drained batch's replay at
        ``width`` = total #patterns.
        """
        full = (1 << width) - 1
        csim = self._csim

        def value_of(sig):
            if sig.net == CONST_NET:
                word = full
            else:
                word = words[csim.index(sig.net)]
            return word ^ full if sig.complemented else word

        out = []
        for cls in classes:
            if len(cls) == 1:
                out.append(cls)
                continue
            groups = partition_by_value(cls, value_of)
            if len(groups) > 1:
                self.stats["cex_class_splits"] += 1
            out.extend(groups)
        return out


# -- worker side -----------------------------------------------------------


class _RefinementWorker:
    """Per-process incremental refinement state (lives only in children).

    Holds its own solver and one Tseitin encoding of the k+1 unrolled
    frames; ``engine`` is the forked copy of the master engine, supplying
    the shared ``_signals`` list, the compiled simulation kernel and the
    circuit.  The :class:`~repro.service.procs.StealPool` protocol drives
    it: ``setup`` opens a round (retire old activation literal, encode the
    new Q), ``batch`` answers one stolen batch of class ids against the
    open round.
    """

    def __init__(self, engine):
        self.engine = engine
        self.circuit = engine.circuit
        enc = TseitinEncoder()
        self.frames = engine._encode_unrolled(enc, engine.k + 1)
        self.true_var = enc.new_var()
        self.solver = Solver()
        self.solver.add_cnf(enc.cnf)
        self.solver.add_clause([self.true_var])
        self.signals = engine._signals
        self.csim = engine._csim
        self.net_index = engine._net_index
        self.act = None
        self.classes = None
        self.deadline = None

    def _lit(self, sig, frame_vars):
        var = self.true_var if sig.net == CONST_NET else frame_vars[sig.net]
        return -var if sig.complemented else var

    def setup(self, payload):
        """Open a refinement round: retire the previous Q, encode the new.

        Q covers the *full* round-start partition — a witness must satisfy
        the same correspondence condition the serial round assumes, or its
        splits would not be sound for other batches' classes.  The
        activation literal stays live across every batch of the round, so
        N stolen batches cost one Q encoding, not N.
        """
        _round_no, class_ids, deadline = payload
        solver = self.solver
        if self.act is not None:
            # Retiring by unit + simplify physically drops the old round's
            # guarded clauses, same as the serial engine.
            solver.add_clause([-self.act])
            solver.simplify()
        signals = self.signals
        self.classes = [[signals[i] for i in ids] for ids in class_ids]
        self.deadline = deadline
        act = self.act = solver.new_var()
        for frame_vars in self.frames[:-1]:
            for cls in self.classes:
                if len(cls) < 2:
                    continue
                rep = self._lit(cls[0], frame_vars)
                for member in cls[1:]:
                    m = self._lit(member, frame_vars)
                    # Guard literal last: the solver watches the first two
                    # literals, so assuming ``act`` does not walk the whole
                    # round's clause group on every single query.
                    solver.add_clause([-rep, m, -act])
                    solver.add_clause([rep, -m, -act])

    def _extract_pattern(self):
        """The current model as ``(state_bits, per-frame input_bits)``."""
        solver = self.solver
        state_bits = 0
        for r, net in enumerate(self.csim.registers):
            if solver.value(self.frames[0][net]):
                state_bits |= 1 << r
        frame_bits = []
        for frame_vars in self.frames:
            word = 0
            for j, net in enumerate(self.csim.inputs):
                if solver.value(frame_vars[net]):
                    word |= 1 << j
            frame_bits.append(word)
        return (state_bits, frame_bits)

    def batch(self, batch_cids):
        """Answer one stolen batch of class ids against the open round.

        Queries only the batch's classes; mass-splits within the batch on
        its own counterexamples (cross-batch splitting is the master's
        global merge).  Returns ``(out_map, patterns, delta, elapsed)``.
        """
        started = time.monotonic()
        before = self.solver.stats()
        solver = self.solver
        act = self.act
        check_frame = self.frames[-1]
        deadline = self.deadline
        classes = self.classes
        queries = 0
        cex_splits = 0
        patterns = []
        done = []
        items = [(cid, [classes[cid][0]], list(classes[cid][1:]))
                 for cid in batch_cids]
        while items:
            cid, verified, rest = items.pop()
            if not rest:
                done.append((cid, verified))
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise ResourceBudgetExceeded(
                    "SAT fixpoint time budget exhausted")
            member = rest.pop(0)
            la = self._lit(verified[0], check_frame)
            lb = self._lit(member, check_frame)
            distinguished = False
            for assumptions in ([act, la, -lb], [act, -la, lb]):
                queries += 1
                if solver.solve(assumptions=assumptions):
                    distinguished = True
                    break
            if not distinguished:
                verified.append(member)
                items.append((cid, verified, rest))
                continue
            pattern = self._extract_pattern()
            patterns.append(pattern)
            check_words = replay_packed(self.csim, [pattern])[-1]
            csim = self.csim

            def value_of(sig, _words=check_words):
                if sig.net == CONST_NET:
                    word = 1
                else:
                    word = _words[csim.index(sig.net)]
                return word ^ 1 if sig.complemented else word

            items.append((cid, verified, [member] + rest))
            split_items = []
            for icid, iverified, irest in items:
                groups = partition_by_value([iverified[0]] + irest, value_of)
                if len(groups) > 1:
                    cex_splits += 1
                split_items.append((icid, iverified, groups[0][1:]))
                for group in groups[1:]:
                    split_items.append((icid, [group[0]], group[1:]))
            items = split_items
        out = {}
        net_index = self.net_index
        for cid, verified in done:
            out.setdefault(cid, []).append(
                [net_index[sig.net] for sig in verified])
        after = self.solver.stats()
        delta = {key: after[key] - before[key] for key in _SOLVER_COUNTERS}
        delta["sat_queries"] = queries
        delta["cex_patterns"] = len(patterns)
        delta["cex_class_splits"] = cex_splits
        elapsed = time.monotonic() - started
        return (out, patterns, delta, elapsed)
