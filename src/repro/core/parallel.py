"""Parallel fixed-point refinement for the SAT correspondence engine.

Within one refinement round the Q-constrained checks for different
equivalence classes are independent given the previous round's partition:
every query ranges over the same Q (built from the round-*start* classes),
so class A's verdicts never depend on how class B is being split this
round.  :class:`ParallelSatCorrespondence` exploits that by partitioning
the round's nontrivial classes into chunks and dispatching them to a
persistent pool of worker processes, each holding its **own** incremental
SAT encoding of the k+1 unrolled frames (encoded once per worker, at pool
spawn — the PR 3 invariant, per worker).

Why the same fixed point falls out
----------------------------------

Van Eijk's iteration computes the *greatest* fixed point of the Eq. 3
refinement operator, and that fixed point is unique: any sequence of sound
splits — splits justified by a witness satisfying the round-start Q —
converges to the identical final partition regardless of order.  Workers
only split on SAT models of ``Q ∧ (leader ≠ member)``, the master's global
merge only splits on replays of those same models (replay semantics equals
encoding semantics, pinned by the cexsplit tests), and verified pairs are
UNSAT-proven equal in *every* Q-state — so no round-mate's witness can
contradict them.  Hence the parallel engine is verdict- **and**
partition-identical to the serial one; ``tests/core/test_parallel.py``
asserts exactly that on random pairs, the Table-1 suite and the regression
corpus.

Mechanics
---------

* Workers are **raw-fork** children (``service.procs.fork_worker``), not
  ``multiprocessing`` processes: service workers are daemonic and daemonic
  processes may not start multiprocessing children, but they may fork.
  Messages are length-prefixed pickles over plain pipes; teardown reuses
  ``service.procs.terminate_gracefully`` via :class:`ForkProcess`.
* Each round the master sends every worker the full round-start partition
  (as signal indices — the ``_signals`` list is shared by fork) plus its
  chunk of class ids; the worker adds Q clauses for *all* classes under a
  fresh activation literal, queries only its chunk, mass-splits within the
  chunk on its own counterexamples, then retires the literal and
  ``simplify()``-s, exactly like the serial round.
* Counterexample models stream back as compact bit-patterns
  (``(state_bits, per-frame input_bits)``); the master replays **all** of a
  round's patterns in one bit-parallel pass (``cexsplit.replay_packed`` at
  width = #patterns) and applies one global multi-class split, so worker A's
  witnesses also refine worker B's classes before the next round.
* Chunking is deterministic: nontrivial classes sorted by size descending,
  greedily assigned to the least-loaded worker (load = members - 1, the
  pair-check lower bound).  Rounds with fewer than two nontrivial classes
  run serially on the master's own solver — the pool only pays off when
  there is real fan-out.
* Any worker failure (crash, EOF, unpicklable reply) permanently degrades
  the engine to serial rounds on the master solver; budget/cancel aborts
  tear the pool down via SIGTERM.  Either way ``compute()`` leaves no
  orphans behind.
"""

import os
import pickle
import select
import time
import traceback

from ..errors import ResourceBudgetExceeded
from ..sat.solver import Solver
from ..sat.tseitin import TseitinEncoder
from ..service.procs import (fork_worker, read_framed, terminate_gracefully,
                             write_framed)
from .cexsplit import partition_by_value, replay_packed
from .satbackend import CONST_NET, _SOLVER_COUNTERS, SatCorrespondence


class _WorkerHandle:
    __slots__ = ("index", "proc", "req_w", "resp_r")

    def __init__(self, index, proc, req_w, resp_r):
        self.index = index
        self.proc = proc
        self.req_w = req_w
        self.resp_r = resp_r


def _assign_chunks(classes, nontrivial, n_workers):
    """Deterministic greedy LPT assignment of class ids to workers.

    Returns the non-empty chunks (each a sorted list of class ids); load is
    ``len(cls) - 1``, the minimum number of pair checks the class costs.
    """
    order = sorted(nontrivial, key=lambda cid: (-len(classes[cid]), cid))
    loads = [0] * n_workers
    chunks = [[] for _ in range(n_workers)]
    for cid in order:
        wi = min(range(n_workers), key=lambda w: (loads[w], w))
        chunks[wi].append(cid)
        loads[wi] += len(classes[cid]) - 1
    return [sorted(chunk) for chunk in chunks if chunk]


class ParallelSatCorrespondence(SatCorrespondence):
    """Signal correspondence with parallel refinement rounds.

    Drop-in for :class:`SatCorrespondence` (incremental mode only); the
    base case and any low-fan-out round still run on the master's own
    solver, so ``refine_workers=N`` costs ``1 + N`` solver constructions
    and frame encodings per ``compute()``.
    """

    #: Rounds with fewer nontrivial classes than this run serially.
    min_parallel_classes = 2

    def __init__(self, product, refine_workers=2, **kwargs):
        refine_workers = int(refine_workers)
        if refine_workers < 1:
            raise ValueError("refine_workers must be >= 1")
        if not kwargs.pop("incremental", True):
            raise ValueError(
                "parallel refinement requires the incremental engine")
        super().__init__(product, incremental=True, **kwargs)
        self.refine_workers = refine_workers
        self._workers = []
        self._pool_broken = not hasattr(os, "fork")
        self._net_index = {sig.net: i for i, sig in enumerate(self._signals)}
        self._round_stats = {"workers": 0}
        self._round_no = 0

    # -- lifecycle ---------------------------------------------------------

    def compute(self, max_iterations=None):
        try:
            return super().compute(max_iterations=max_iterations)
        finally:
            self.close()

    def close(self):
        """Tear the worker pool down; idempotent, leaves no orphans."""
        workers, self._workers = self._workers, []
        for handle in workers:
            try:
                write_framed(handle.req_w,
                             pickle.dumps(("stop",),
                                          pickle.HIGHEST_PROTOCOL))
            except OSError:
                pass
        for handle in workers:
            for fd in (handle.req_w, handle.resp_r):
                try:
                    os.close(fd)
                except OSError:
                    pass
        if workers:
            terminate_gracefully([h.proc for h in workers], grace=1.0)

    def _ensure_pool(self):
        if self._workers or self._pool_broken:
            return
        parent_fds = []
        workers = []
        try:
            for wi in range(self.refine_workers):
                req_r, req_w = os.pipe()
                resp_r, resp_w = os.pipe()
                # The child must drop every parent-side fd it inherited:
                # its own pair's, and those of previously-forked siblings —
                # otherwise a dead master's pipes never read EOF.
                child_closes = list(parent_fds) + [req_w, resp_r]
                proc = fork_worker(_worker_main, self, wi, req_r, resp_w,
                                   child_closes)
                os.close(req_r)
                os.close(resp_w)
                parent_fds.extend([req_w, resp_r])
                workers.append(_WorkerHandle(wi, proc, req_w, resp_r))
        except OSError:
            for handle in workers:
                os.close(handle.req_w)
                os.close(handle.resp_r)
            terminate_gracefully([h.proc for h in workers], grace=0.5)
            self._pool_broken = True
            return
        self._workers = workers
        # Each worker builds one solver + one unrolled encoding at spawn.
        self.stats["solver_constructions"] += len(workers)
        self.stats["frame_encodings"] += len(workers)

    def _teardown_pool(self, broken=False):
        self.close()
        if broken:
            self._pool_broken = True

    # -- the parallel round ------------------------------------------------

    def _round_extra(self):
        return dict(self._round_stats)

    def _refine_round_incremental(self, classes, deadline):
        nontrivial = [cid for cid, cls in enumerate(classes) if len(cls) > 1]
        if len(nontrivial) < self.min_parallel_classes or self._pool_broken:
            self._round_stats = {"workers": 0}
            return super()._refine_round_incremental(classes, deadline)
        self._ensure_pool()
        if not self._workers:
            self._round_stats = {"workers": 0}
            return super()._refine_round_incremental(classes, deadline)
        round_start = time.monotonic()
        self._round_no += 1
        chunks = _assign_chunks(classes, nontrivial, len(self._workers))
        used = list(zip(self._workers, chunks))
        class_ids = [[self._net_index[sig.net] for sig in cls]
                     for cls in classes]
        failed = False
        for handle, chunk in used:
            request = ("round", self._round_no, class_ids, chunk, deadline)
            try:
                write_framed(handle.req_w,
                             pickle.dumps(request, pickle.HIGHEST_PROTOCOL))
            except OSError:
                failed = True
        responses = {}
        if not failed:
            responses, failed = self._collect([h for h, _ in used], deadline)
        if not failed:
            for handle, _ in used:
                msg = responses.get(handle.index)
                if msg is None or msg[0] == "error":
                    if msg is not None:
                        self._emit("refinement_worker_error",
                                   worker=handle.index,
                                   error=str(msg[1])[:2000])
                    failed = True
                elif msg[0] == "budget":
                    raise ResourceBudgetExceeded(msg[1])
        if failed:
            # A broken pool degrades to the serial engine — identical fixed
            # point, just no fan-out.  Partial worker results are dropped.
            self._teardown_pool(broken=True)
            self._emit("refinement_pool_fallback", round=self._round_no)
            self._round_stats = {"workers": 0}
            return super()._refine_round_incremental(classes, deadline)

        # Deterministic merge: worker results in worker order, then one
        # global split by every pattern at once.
        out_by_cid = {}
        patterns = []
        worker_seconds = []
        for handle, _ in used:
            _, out_map, w_patterns, delta, elapsed = responses[handle.index]
            out_by_cid.update(out_map)
            patterns.extend(w_patterns)
            worker_seconds.append(elapsed)
            for key, value in delta.items():
                self.stats[key] += value
        signals = self._signals
        new_classes = []
        for cid, cls in enumerate(classes):
            subclasses = out_by_cid.get(cid)
            if subclasses is None:
                new_classes.append(cls)
            else:
                for id_list in subclasses:
                    new_classes.append([signals[i] for i in id_list])
        if patterns:
            new_classes = self._global_split(new_classes, patterns)
        round_seconds = time.monotonic() - round_start
        busy = sum(worker_seconds)
        self._round_stats = {
            "workers": len(used),
            "worker_seconds": [round(s, 6) for s in worker_seconds],
            "round_seconds": round(round_seconds, 6),
            "speedup": (round(busy / round_seconds, 3)
                        if round_seconds > 0 else 0.0),
        }
        return new_classes, len(new_classes) > len(classes)

    def _global_split(self, classes, patterns):
        """Split every class by the check-frame values of all patterns.

        Each pattern satisfied the round's Q, so its replayed check-frame
        valuation is a sound Eq. 3 splitter for every class; replaying all
        of them at once (width = #patterns) makes this one compiled
        simulation pass.
        """
        check_words = replay_packed(self._csim, patterns)[-1]
        width = len(patterns)
        full = (1 << width) - 1
        csim = self._csim

        def value_of(sig):
            if sig.net == CONST_NET:
                word = full
            else:
                word = check_words[csim.index(sig.net)]
            return word ^ full if sig.complemented else word

        out = []
        for cls in classes:
            if len(cls) == 1:
                out.append(cls)
                continue
            groups = partition_by_value(cls, value_of)
            if len(groups) > 1:
                self.stats["cex_class_splits"] += 1
            out.extend(groups)
        return out

    def _collect(self, handles, deadline):
        """Gather one reply per handle; polls budget/cancel while waiting."""
        responses = {}
        failed = False
        pending = {handle.resp_r: handle for handle in handles}
        while pending:
            self._check_budget(deadline)
            ready, _, _ = select.select(list(pending), [], [], 0.1)
            for fd in ready:
                handle = pending.pop(fd)
                try:
                    payload = read_framed(fd)
                    if payload is None:
                        raise EOFError("refinement worker exited")
                    responses[handle.index] = pickle.loads(payload)
                except Exception:
                    failed = True
        return responses, failed


# -- worker side -----------------------------------------------------------


def _worker_main(engine, worker_index, req_r, resp_w, close_fds):
    """Child entry: serve refinement rounds until EOF or a stop message."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    worker = _RefinementWorker(engine)
    while True:
        payload = read_framed(req_r)
        if payload is None:
            break
        message = pickle.loads(payload)
        if message[0] == "stop":
            break
        try:
            reply = worker.run_round(message)
        except ResourceBudgetExceeded as exc:
            reply = ("budget", str(exc))
        except Exception:
            reply = ("error", traceback.format_exc())
        write_framed(resp_w, pickle.dumps(reply, pickle.HIGHEST_PROTOCOL))


class _RefinementWorker:
    """Per-process incremental refinement state (lives only in children).

    Holds its own solver and one Tseitin encoding of the k+1 unrolled
    frames; ``engine`` is the forked copy of the master engine, supplying
    the shared ``_signals`` list, the compiled simulation kernel and the
    circuit.
    """

    def __init__(self, engine):
        self.engine = engine
        self.circuit = engine.circuit
        enc = TseitinEncoder()
        self.frames = engine._encode_unrolled(enc, engine.k + 1)
        self.true_var = enc.new_var()
        self.solver = Solver()
        self.solver.add_cnf(enc.cnf)
        self.solver.add_clause([self.true_var])
        self.signals = engine._signals
        self.csim = engine._csim
        self.net_index = engine._net_index

    def _lit(self, sig, frame_vars):
        var = self.true_var if sig.net == CONST_NET else frame_vars[sig.net]
        return -var if sig.complemented else var

    def _extract_pattern(self):
        """The current model as ``(state_bits, per-frame input_bits)``."""
        solver = self.solver
        state_bits = 0
        for r, net in enumerate(self.csim.registers):
            if solver.value(self.frames[0][net]):
                state_bits |= 1 << r
        frame_bits = []
        for frame_vars in self.frames:
            word = 0
            for j, net in enumerate(self.csim.inputs):
                if solver.value(frame_vars[net]):
                    word |= 1 << j
            frame_bits.append(word)
        return (state_bits, frame_bits)

    def run_round(self, message):
        _, _round_no, class_ids, chunk_cids, deadline = message
        started = time.monotonic()
        before = self.solver.stats()
        signals = self.signals
        classes = [[signals[i] for i in ids] for ids in class_ids]
        solver = self.solver
        act = solver.new_var()
        # Q over the *full* round-start partition — a witness must satisfy
        # the same correspondence condition the serial round assumes, or
        # its splits would not be sound for other workers' classes.
        for frame_vars in self.frames[:-1]:
            for cls in classes:
                if len(cls) < 2:
                    continue
                rep = self._lit(cls[0], frame_vars)
                for member in cls[1:]:
                    m = self._lit(member, frame_vars)
                    solver.add_clause([-rep, m, -act])
                    solver.add_clause([rep, -m, -act])
        check_frame = self.frames[-1]
        queries = 0
        cex_splits = 0
        patterns = []
        done = []
        items = [(cid, [classes[cid][0]], list(classes[cid][1:]))
                 for cid in chunk_cids]
        while items:
            cid, verified, rest = items.pop()
            if not rest:
                done.append((cid, verified))
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise ResourceBudgetExceeded(
                    "SAT fixpoint time budget exhausted")
            member = rest.pop(0)
            la = self._lit(verified[0], check_frame)
            lb = self._lit(member, check_frame)
            distinguished = False
            for assumptions in ([act, la, -lb], [act, -la, lb]):
                queries += 1
                if solver.solve(assumptions=assumptions):
                    distinguished = True
                    break
            if not distinguished:
                verified.append(member)
                items.append((cid, verified, rest))
                continue
            pattern = self._extract_pattern()
            patterns.append(pattern)
            check_words = replay_packed(self.csim, [pattern])[-1]
            csim = self.csim

            def value_of(sig, _words=check_words):
                if sig.net == CONST_NET:
                    word = 1
                else:
                    word = _words[csim.index(sig.net)]
                return word ^ 1 if sig.complemented else word

            items.append((cid, verified, [member] + rest))
            split_items = []
            for icid, iverified, irest in items:
                groups = partition_by_value([iverified[0]] + irest, value_of)
                if len(groups) > 1:
                    cex_splits += 1
                split_items.append((icid, iverified, groups[0][1:]))
                for group in groups[1:]:
                    split_items.append((icid, [group[0]], group[1:]))
            items = split_items
        solver.add_clause([-act])
        solver.simplify()
        out = {}
        net_index = self.net_index
        for cid, verified in done:
            out.setdefault(cid, []).append(
                [net_index[sig.net] for sig in verified])
        after = self.solver.stats()
        delta = {key: after[key] - before[key] for key in _SOLVER_COUNTERS}
        delta["sat_queries"] = queries
        delta["cex_patterns"] = len(patterns)
        delta["cex_class_splits"] = cex_splits
        elapsed = time.monotonic() - started
        return ("ok", out, patterns, delta, elapsed)
