"""Equivalence-class partition over signal functions.

The fixed-point iteration works on *functions*, not nets: nets whose
polarity-normalized BDDs coincide are structurally identical and share one
:class:`SignalFunction` record (with all their net names attached).  The
partition stores classes of such records and only ever splits them, which is
what guarantees termination in at most |F| + 1 iterations (Theorem 2).
"""


class SignalFunction:
    """One distinct polarity-normalized current-state function.

    ``edge`` is the normalized BDD (value 1 at the reference point).
    ``members`` lists ``(net, complemented)``: net's raw function equals the
    normalized function complemented when the flag is set — this is how a
    single class expresses both equivalences and antivalences.
    ``register_vars`` lists ``(state_var_id, complemented)`` for members that
    are register outputs (fodder for the functional-dependency substitution).
    """

    __slots__ = ("edge", "members", "register_vars", "signature")

    def __init__(self, edge, signature=None):
        self.edge = edge
        self.members = []
        self.register_vars = []
        self.signature = signature

    def add_net(self, net, complemented, register_var=None):
        self.members.append((net, complemented))
        if register_var is not None:
            self.register_vars.append((register_var, complemented))

    def nets(self):
        return [net for net, _ in self.members]

    def __repr__(self):
        return "SignalFunction(edge={}, nets={})".format(self.edge, self.nets())


class Partition:
    """A partition of SignalFunction records into equivalence classes."""

    def __init__(self, classes):
        self.classes = [list(cls) for cls in classes if cls]
        self._index = {}
        for idx, cls in enumerate(self.classes):
            for fn in cls:
                self._index[fn.edge] = idx

    @classmethod
    def discrete(cls, functions):
        """Every function alone in its own class."""
        return cls([[fn] for fn in functions])

    @classmethod
    def from_keys(cls, functions, key):
        """Group functions by ``key(fn)``."""
        buckets = {}
        for fn in functions:
            buckets.setdefault(key(fn), []).append(fn)
        return cls(list(buckets.values()))

    def class_of(self, edge):
        """The class (list of SignalFunction) containing the given edge."""
        idx = self._index.get(edge)
        return None if idx is None else self.classes[idx]

    def same_class(self, edge_a, edge_b):
        ia = self._index.get(edge_a)
        ib = self._index.get(edge_b)
        return ia is not None and ia == ib

    def functions(self):
        for cls in self.classes:
            yield from cls

    @property
    def num_classes(self):
        return len(self.classes)

    @property
    def num_functions(self):
        return sum(len(cls) for cls in self.classes)

    def nontrivial_classes(self):
        """Classes relating at least two distinct functions."""
        return [cls for cls in self.classes if len(cls) > 1]

    def refine(self, splitter):
        """Split every class by ``splitter(cls) -> list of subclasses``.

        Returns ``(new_partition, changed)``.
        """
        new_classes = []
        changed = False
        for cls in self.classes:
            if len(cls) == 1:
                new_classes.append(cls)
                continue
            parts = splitter(cls)
            if len(parts) > 1:
                changed = True
            new_classes.extend(parts)
        return Partition(new_classes), changed

    def stats(self):
        sizes = sorted((len(c) for c in self.classes), reverse=True)
        return {
            "classes": len(sizes),
            "functions": sum(sizes),
            "largest_class": sizes[0] if sizes else 0,
            "nontrivial_classes": sum(1 for s in sizes if s > 1),
        }
