"""Sequential-safe FRAIG sweeping: preprocessor, FRAIG-BMC and engine.

* :func:`fraig_reduce` — shrink one circuit on the shared AIG substrate
  (registers as pseudo-inputs; merges certified by one incremental
  solver; names/interface preserved).
* :func:`preprocess_pair` / :func:`preprocess_jobspec` — the opt-in
  ``--preprocess fraig`` pass in front of every engine, applied before
  the daemon's cache key.
* :func:`fraig_bmc_refute` / :class:`FrameSweeper` — functionally reduced
  BMC unrolling (``--fraig-frames``).
* :func:`check_equivalence_fraig_sweep` — the standalone ``fraig_sweep``
  portfolio lane.
"""

from .engine import check_equivalence_fraig_sweep
from .frames import FrameSweeper, fraig_bmc_refute, naive_unroll_ands
from .preprocess import (
    PREPROCESS_PASSES,
    attach_preprocess_details,
    preprocess_circuit,
    preprocess_jobspec,
    preprocess_pair,
    split_preprocess_options,
)
from .race import DEFAULT_RACE_STRATEGIES, race_fraig
from .reduce import FraigReduction, fraig_reduce

__all__ = [
    "DEFAULT_RACE_STRATEGIES",
    "race_fraig",
    "FraigReduction",
    "FrameSweeper",
    "PREPROCESS_PASSES",
    "attach_preprocess_details",
    "check_equivalence_fraig_sweep",
    "fraig_bmc_refute",
    "fraig_reduce",
    "naive_unroll_ands",
    "preprocess_circuit",
    "preprocess_jobspec",
    "preprocess_pair",
    "split_preprocess_options",
]
