"""Wiring of the FRAIG reducer as an engine-agnostic preprocessor.

Every front end funnels through here:

* :func:`repro.verify` and the worker (:mod:`repro.service.worker`) call
  :func:`preprocess_pair` when a ``preprocess`` option is present — any
  engine then runs on the reduced pair, and the reduction telemetry is
  attached to the result's ``details["preprocess"]``.
* The daemon and the batch CLI call :func:`preprocess_jobspec` *before*
  the job's cache key is first computed, so a preprocessed submission and
  a direct submission of the already-reduced pair share one cache entry
  (and the cached worker never re-reduces).

Soundness: the reduction preserves the per-frame transition and output
functions (registers are free pseudo-inputs during sweeping, so merges
hold in every state), and the interface — input names, register
names/initial values, output names and order — is untouched.  Any
engine's verdict on the reduced pair is therefore a verdict on the
original pair, and a counterexample input trace is valid verbatim
(:meth:`~repro.sweep.reduce.FraigReduction.translate_trace` is the
checked identity).
"""

from ..errors import VerificationError
from .reduce import fraig_reduce

#: Recognized values of the ``preprocess`` option / ``--preprocess`` flag.
PREPROCESS_PASSES = ("fraig",)

#: Option keys consumed by the preprocessor (not forwarded to engines).
_PREPROCESS_OPTION_KEYS = ("preprocess", "preprocess_seed")


def check_preprocess(passes):
    if passes not in PREPROCESS_PASSES:
        raise VerificationError(
            "unknown preprocess pass {!r}; choose one of {}".format(
                passes, list(PREPROCESS_PASSES)))
    return passes


def preprocess_circuit(circuit, passes="fraig", seed=2024, **options):
    """Run one preprocessing pass; returns a
    :class:`~repro.sweep.reduce.FraigReduction`."""
    check_preprocess(passes)
    return fraig_reduce(circuit, seed=seed, **options)


def preprocess_pair(spec, impl, passes="fraig", seed=2024, **options):
    """Reduce both sides; returns ``(spec', impl', info)``.

    ``info`` is the JSON-serializable telemetry destined for
    ``details["preprocess"]``.
    """
    check_preprocess(passes)
    spec_red = fraig_reduce(spec, seed=seed, **options)
    impl_red = fraig_reduce(impl, seed=seed, **options)
    info = {
        "passes": passes,
        "spec": dict(spec_red.stats),
        "impl": dict(impl_red.stats),
    }
    return spec_red.reduced, impl_red.reduced, info


def split_preprocess_options(options):
    """Pop the preprocessor's keys out of an engine option dict.

    Returns ``(passes or None, preprocess_kwargs, engine_options)``;
    ``options`` is not mutated.
    """
    engine_options = dict(options)
    passes = engine_options.pop("preprocess", None)
    seed = engine_options.pop("preprocess_seed", 2024)
    return passes, {"seed": seed}, engine_options


def preprocess_jobspec(job):
    """Rewrite a :class:`~repro.service.job.JobSpec` onto reduced circuits.

    Returns ``(new_job, info)``; ``(job, None)`` when no ``preprocess``
    option is present.  The option is *removed* from the new job, so its
    cache key is computed from the reduced fingerprints alone — a
    preprocessed submission and a direct submission of the identical
    reduced pair deduplicate to one cache entry, and the worker does not
    reduce a second time.
    """
    passes, kwargs, engine_options = split_preprocess_options(job.options)
    if not passes:
        return job, None
    from .reduce import FraigReduction  # noqa: F401  (documented contract)
    from ..service.job import JobSpec

    spec_red, impl_red, info = preprocess_pair(
        job.spec, job.impl, passes=passes, **kwargs)
    tags = dict(job.tags)
    tags["preprocess"] = passes
    new_job = JobSpec(
        job.name, spec_red, impl_red, method=job.method,
        options=engine_options, match_inputs=job.match_inputs,
        match_outputs=job.match_outputs, tags=tags,
    )
    return new_job, info


def attach_preprocess_details(result, info):
    """Record the reduction telemetry on an engine result (in place)."""
    if info is not None and result is not None:
        if result.details is None:
            result.details = {}
        result.details["preprocess"] = info
    return result
