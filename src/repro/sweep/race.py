"""Racing FRAIG candidate-check strategies on the work-stealing pool.

:func:`fraig_reduce` has knobs with no universally right setting: wide
simulation (few rounds, many patterns) kills spurious candidates cheaply
on shallow netlists, deep simulation (many rounds) catches
sequentially-correlated candidates, and a conflict budget bounds SAT
latency at the cost of missed merges.  Rather than picking one,
:func:`race_fraig` runs a small portfolio of strategies concurrently on
the same :class:`~repro.service.procs.StealPool` the refinement engine
uses (one strategy per batch, raw-fork workers, framed pickles) and takes
the **first reduction to finish** — the losers are abandoned and the pool
torn down.

Any strategy's output is sound (every merge is certified by the same
incremental solver, see :mod:`repro.sweep.reduce`), so racing changes
which reduced circuit downstream engines see — possibly fewer or more
merges — but never the verdict.  That is the same contract
``fraig_sweep`` already has across seeds and conflict budgets.  Racing is
therefore opt-in (``--fraig-race``): the winner depends on host timing,
which trades run-to-run reduction determinism for latency.
"""

import os
import time
import traceback

from .reduce import fraig_reduce

#: The raced configurations: (label, fraig_reduce keyword overrides).
#: "wide" spends its simulation budget on patterns per round, "deep" on
#: rounds (sequential correlation), "budgeted" caps per-query SAT effort
#: so one hard candidate cannot stall the whole reduction.
DEFAULT_RACE_STRATEGIES = (
    ("wide", {"sim_rounds": 2, "sim_width": 128}),
    ("deep", {"sim_rounds": 8, "sim_width": 32}),
    ("budgeted", {"sim_rounds": 4, "sim_width": 64,
                  "conflict_budget": 2000}),
)


class _RaceHandler:
    """Child-side handler: one strategy per batch, failures returned as
    values (a losing strategy must not poison the race)."""

    def __init__(self, circuit, seed, base_options):
        self.circuit = circuit
        self.seed = seed
        self.base_options = base_options

    def setup(self, payload):
        pass

    def batch(self, payload):
        label, overrides = payload
        options = dict(self.base_options)
        options.update(overrides)
        started = time.monotonic()
        try:
            reduction = fraig_reduce(self.circuit, seed=self.seed, **options)
        except Exception:
            return (label, None, traceback.format_exc(),
                    time.monotonic() - started)
        return (label, reduction, None, time.monotonic() - started)


def race_fraig(circuit, seed=2024, strategies=DEFAULT_RACE_STRATEGIES,
               workers=2, **base_options):
    """Race ``strategies`` over ``workers`` processes; first one wins.

    Returns ``(reduction, info)`` where ``info`` records the winning
    strategy label, the raced labels and the pool size (0 = the serial
    fallback ran: no ``os.fork``, pool spawn failure, or every strategy
    errored).  ``base_options`` are :func:`fraig_reduce` keywords every
    strategy inherits (each strategy's own overrides win).
    """
    from ..service.procs import StealPool, StealPoolError

    strategies = list(strategies)
    if not strategies:
        raise ValueError("race_fraig needs at least one strategy")
    workers = max(1, min(int(workers), len(strategies)))
    labels = [label for label, _ in strategies]
    winner = {}

    def first_finisher(bid, value, worker_index):
        label, reduction, error, elapsed = value
        if reduction is not None and "reduction" not in winner:
            winner["reduction"] = reduction
            winner["label"] = label
            winner["elapsed"] = elapsed
            return True  # stop the race; losers are abandoned
        return False

    pool = None
    if hasattr(os, "fork"):
        try:
            pool = StealPool(workers, _RaceHandler,
                             (circuit, seed, dict(base_options)))
        except StealPoolError:
            pool = None
    if pool is not None:
        try:
            pool.run_batches(
                [(label, dict(overrides)) for label, overrides in strategies],
                on_result=first_finisher)
        except StealPoolError:
            winner.clear()
        finally:
            pool.close()
    if "reduction" not in winner:
        # Serial fallback: the first strategy, inline.  Sound either way.
        label, overrides = strategies[0]
        options = dict(base_options)
        options.update(overrides)
        started = time.monotonic()
        reduction = fraig_reduce(circuit, seed=seed, **options)
        return reduction, {"strategy": label, "raced": labels, "workers": 0,
                           "seconds": round(time.monotonic() - started, 6)}
    return winner["reduction"], {
        "strategy": winner["label"],
        "raced": labels,
        "workers": workers,
        "seconds": round(winner["elapsed"], 6),
    }
