"""FRAIG-BMC: functionally reduced unrolling of the product machine.

Plain BMC (:mod:`repro.core.bmc`) Tseitin-encodes one fresh copy of the
product circuit per frame; for an equivalent pair every spec cone has an
impl cone computing the same function of the *same* unrolled inputs, so
the encoding is dominated by logic the solver must re-discover as equal
at every depth.  :class:`FrameSweeper` unrolls into one structurally
hashed AIG instead — initial state substituted as constants, each frame
built in *swept space* — and after each frame runs the same
simulate-then-prove sweep as :mod:`repro.sweep.reduce` over the nodes the
frame added, with one incremental solver shared by every depth (sweep
queries and difference checks alike, the activation-literal idiom).

Merged cones vanish from all later frames, constants from the initial
state propagate through the unrolling, and for an equivalent pair the
output cones usually merge *structurally* — the per-depth difference
check then fails without a single solver call.  Verdicts are identical
to plain BMC by construction: every merge is certified by an UNSAT
answer over the same unrolled window the difference check ranges over,
so at each depth "some output pair differs" is satisfiable in the swept
encoding iff it is in the naive one, and a shortest counterexample
transfers verbatim (frame inputs keep their names).
"""

import random
import time

from ..netlist.aig import FALSE, TRUE, Aig, _gate_to_aig, lit_neg, lit_var
from ..reach.result import CexTrace, SecResult
from .reduce import _sat_lit


class FrameSweeper:
    """Incrementally unrolls ``circuit`` into a swept combinational AIG."""

    def __init__(self, circuit, seed=2024, sim_width=64,
                 conflict_budget=None):
        circuit.validate()
        from ..sat.solver import Solver

        self.circuit = circuit
        self.aig = Aig()
        self.rng = random.Random(seed)
        self.width = sim_width
        self.conflict_budget = conflict_budget
        self.full = (1 << sim_width) - 1
        # Current symbolic state: register net -> literal (init constants).
        self.state = {net: (TRUE if reg.init else FALSE)
                      for net, reg in circuit.registers.items()}
        self.repr_map = {}  # merged lit -> representative lit
        self.frame_inputs = []  # per frame: {input net -> AIG var}
        self.solver = Solver()
        self.sat_var = {0: self.solver.new_var()}
        self.solver.add_clause([-self.sat_var[0]])
        self._encoded = 0  # vars encoded into the solver so far
        # Incremental signatures: random words and counterexample bits per
        # var, extended as vars appear — never a full re-simulation.
        self.signatures = {0: 0}
        self.cex_sig = {0: 0}
        self.n_cex = 0
        self.stats = {
            "frames": 0,
            "ands_built": 0,
            "merges": 0,
            "sat_queries": 0,
            "sat_refuted": 0,
            "sat_budget": 0,
            "diff_queries": 0,
            "structural_diff_skips": 0,
            "solver_constructions": 1,
        }

    # -- representatives ---------------------------------------------------

    def _rep(self, lit):
        while lit in self.repr_map:
            lit = self.repr_map[lit]
        return lit

    # -- unrolling ---------------------------------------------------------

    def add_frame(self):
        """Unroll one frame; returns ``{net -> literal}`` for the frame."""
        aig = self.aig
        t = self.stats["frames"]
        first_new = aig.num_vars + 1
        lit_of = dict(self.state)
        frame_vars = {}
        for net in self.circuit.inputs:
            lit = aig.add_input(name="{}@{}".format(net, t))
            lit_of[net] = lit
            var = lit_var(lit)
            frame_vars[net] = var
            self.signatures[var] = self.rng.getrandbits(self.width)
            self.cex_sig[var] = 0  # zero under every saved refutation
        self.frame_inputs.append(frame_vars)
        for name in self.circuit.topo_order():
            gate = self.circuit.gates[name]
            operands = [self._rep(lit_of[f]) for f in gate.fanins]
            lit_of[name] = self._rep(_gate_to_aig(aig, gate.gtype, operands))
        self.state = {net: self._rep(lit_of[reg.data_in])
                      for net, reg in self.circuit.registers.items()}
        self.stats["frames"] += 1
        new_ands = [v for v in range(first_new, aig.num_vars + 1)
                    if v in aig.ands]
        self.stats["ands_built"] += len(new_ands)
        self._extend_signatures(new_ands)
        self._encode(new_ands)
        self._sweep_new(new_ands)
        return lit_of

    def _extend_signatures(self, new_ands):
        """Signatures for new nodes from their (already known) fanins."""
        full, cex_full = self.full, (1 << self.n_cex) - 1
        for var in new_ands:
            rhs0, rhs1 = self.aig.ands[var]
            self.signatures[var] = (self._lit_word(rhs0, self.signatures,
                                                   full)
                                    & self._lit_word(rhs1, self.signatures,
                                                     full))
            self.cex_sig[var] = (self._lit_word(rhs0, self.cex_sig, cex_full)
                                 & self._lit_word(rhs1, self.cex_sig,
                                                  cex_full))

    @staticmethod
    def _lit_word(lit, table, full):
        word = table[lit_var(lit)]
        return word ^ full if lit & 1 else word

    def _encode(self, new_ands):
        for var in new_ands:
            y = self.sat_var[var] = self.solver.new_var()
            rhs0, rhs1 = self.aig.ands[var]
            a = self._sat(rhs0)
            b = self._sat(rhs1)
            self.solver.add_clause([-y, a])
            self.solver.add_clause([-y, b])
            self.solver.add_clause([y, -a, -b])

    def _sat(self, lit):
        var = lit_var(lit)
        if var not in self.sat_var:
            self.sat_var[var] = self.solver.new_var()
        return _sat_lit(self.sat_var, lit)

    # -- sweeping ----------------------------------------------------------

    def _sweep_new(self, new_ands):
        """Merge this frame's nodes onto older equivalents."""
        if not new_ands:
            return
        full = self.full
        new_set = set(new_ands)

        def norm(var):
            sig = self.signatures[var] & full
            if sig & 1:
                return sig ^ full, (True, var)
            return sig, (False, var)

        classes = {}
        for var in range(self.aig.num_vars + 1):
            if (2 * var) in self.repr_map:
                continue  # already merged away
            key, member = norm(var)
            classes.setdefault(key, []).append(member)
        for members in classes.values():
            if len(members) < 2:
                continue
            leaders = [members[0]]
            for member in members[1:]:
                cm, vm = member
                merged = False
                if vm in new_set:
                    mb = self._member_bits(member)
                    for leader in leaders:
                        if self._member_bits(leader) != mb:
                            continue
                        if self._prove_equal(leader, member):
                            cl, vl = leader
                            target = 2 * vl + (1 if cl != cm else 0)
                            self.repr_map[2 * vm] = target
                            self.repr_map[2 * vm + 1] = lit_neg(target)
                            self.stats["merges"] += 1
                            merged = True
                            break
                if not merged:
                    leaders.append(member)

    def _member_bits(self, member):
        complemented, var = member
        bits = self.cex_sig[var]
        if complemented:
            bits ^= (1 << self.n_cex) - 1
        return bits

    def _prove_equal(self, leader, member):
        la = self._member_sat(leader)
        lb = self._member_sat(member)
        act = self.solver.new_var()
        self.solver.add_clause([-act, la, lb])
        self.solver.add_clause([-act, -la, -lb])
        self.stats["sat_queries"] += 1
        verdict = self.solver.solve(assumptions=[act],
                                    conflict_budget=self.conflict_budget)
        if verdict:
            # Harvest the model before the retirement unit wipes it.
            self._record_cex_pattern()
        self.solver.add_clause([-act])
        if verdict is False:
            self.solver.add_clause([-la, lb])
            self.solver.add_clause([la, -lb])
            return True
        if verdict is None:
            self.stats["sat_budget"] += 1
            return False
        self.stats["sat_refuted"] += 1
        return False

    def _member_sat(self, member):
        complemented, var = member
        lit = self.sat_var[var]
        return -lit if complemented else lit

    def _record_cex_pattern(self):
        """Append the refuting model as one signature bit on every var."""
        bit = 1 << self.n_cex
        values = {0: 0}
        aig = self.aig
        for var in range(1, aig.num_vars + 1):
            rhs = aig.ands.get(var)
            if rhs is None:
                # Inputs the solver never saw are unconstrained; pick 0.
                sat = self.sat_var.get(var)
                values[var] = 1 if sat is not None \
                    and self.solver.value(sat) else 0
            else:
                values[var] = (self._lit_word(rhs[0], values, 1)
                               & self._lit_word(rhs[1], values, 1))
            if values[var]:
                self.cex_sig[var] |= bit
        self.n_cex += 1

    # -- queries -----------------------------------------------------------

    def live_ands(self, roots):
        """AND nodes reachable from ``roots`` + the current state."""
        seen = set()
        stack = [lit_var(self._rep(l)) for l in roots]
        stack.extend(lit_var(self._rep(l)) for l in self.state.values())
        while stack:
            var = stack.pop()
            if var in seen or var not in self.aig.ands:
                continue
            seen.add(var)
            stack.extend(lit_var(l) for l in self.aig.ands[var])
        return len(seen)

    def outputs_differ(self, pairs, lit_of):
        """SAT-check "some pair differs this frame"; None or a model env.

        ``pairs`` are (spec net, impl net) names resolved through
        ``lit_of``; pairs whose literals merged are skipped outright —
        when all of them merged the check is free.
        """
        live = []
        for s_net, i_net in pairs:
            a = self._rep(lit_of[s_net])
            b = self._rep(lit_of[i_net])
            if a == b:
                continue
            live.append((a, b))
        if not live:
            self.stats["structural_diff_skips"] += 1
            return None
        act = self.solver.new_var()
        diff_lits = []
        for a, b in live:
            d = self.solver.new_var()
            sa, sb = self._sat(a), self._sat(b)
            self.solver.add_clause([-d, sa, sb])
            self.solver.add_clause([-d, -sa, -sb])
            diff_lits.append(d)
        self.solver.add_clause([-act] + diff_lits)
        self.stats["diff_queries"] += 1
        verdict = self.solver.solve(assumptions=[act],
                                    conflict_budget=self.conflict_budget)
        env = None
        if verdict:
            # Read the model *before* retiring the activation literal: the
            # retirement unit propagates at the root and wipes assignments.
            env = {}
            for frame_vars in self.frame_inputs:
                for var in frame_vars.values():
                    sat = self.sat_var.get(var)
                    env[var] = bool(sat is not None
                                    and self.solver.value(sat))
        self.solver.add_clause([-act])
        if verdict is None:
            raise _DiffBudgetExhausted()
        return env

    def extract_trace(self, env):
        """Turn a difference model into a :class:`CexTrace`."""
        frames = [
            {net: env.get(var, False) for net, var in frame_vars.items()}
            for frame_vars in self.frame_inputs
        ]
        return CexTrace(inputs=frames[:-1], final_input=frames[-1])


class _DiffBudgetExhausted(Exception):
    pass


def fraig_bmc_refute(product, max_depth=32, time_limit=None,
                     conflict_budget=None, seed=2024, sim_width=64,
                     progress=None, cancel_check=None):
    """Drop-in :func:`repro.core.bmc.bmc_refute` with swept unrolling.

    Same contract: refuted with a shortest trace, or inconclusive (BMC
    never proves).  ``details["fraig_frames"]`` records the sweeping
    telemetry next to the naive unrolled size for comparison.
    """
    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    circuit = product.circuit
    sweeper = FrameSweeper(circuit, seed=seed, sim_width=sim_width,
                           conflict_budget=conflict_budget)

    def finish(equivalent, depth, counterexample=None, **details):
        details["fraig_frames"] = dict(sweeper.stats)
        return SecResult(
            equivalent=equivalent, method="bmc", iterations=depth,
            seconds=time.monotonic() - start,
            counterexample=counterexample, details=details,
        )

    for depth in range(1, max_depth + 1):
        if deadline is not None and time.monotonic() > deadline:
            return finish(None, depth - 1,
                          aborted="time budget exhausted")
        if cancel_check is not None and cancel_check():
            return finish(None, depth - 1, aborted="cancelled")
        lit_of = sweeper.add_frame()
        if progress is not None:
            progress("depth", depth=depth, ands=sweeper.stats["ands_built"],
                     merges=sweeper.stats["merges"])
        try:
            env = sweeper.outputs_differ(product.output_pairs, lit_of)
        except _DiffBudgetExhausted:
            return finish(None, depth, aborted="conflict budget exhausted")
        if env is not None:
            trace = sweeper.extract_trace(env)
            return finish(False, depth, counterexample=trace,
                          cex_depth=depth)
    return finish(None, max_depth, bound_reached=max_depth)


def naive_unroll_ands(circuit, depth):
    """AND count of the plain (strash-only) unrolling — the bench baseline."""
    aig = Aig()
    state = {net: (TRUE if reg.init else FALSE)
             for net, reg in circuit.registers.items()}
    roots = []
    for t in range(depth):
        lit_of = dict(state)
        for net in circuit.inputs:
            lit_of[net] = aig.add_input(name="{}@{}".format(net, t))
        for name in circuit.topo_order():
            gate = circuit.gates[name]
            lit_of[name] = _gate_to_aig(
                aig, gate.gtype, [lit_of[f] for f in gate.fanins])
        roots.extend(lit_of[net] for net in circuit.outputs)
        state = {net: lit_of[reg.data_in]
                 for net, reg in circuit.registers.items()}
    for lit in roots:
        aig.add_output(lit)
    return aig.num_ands
