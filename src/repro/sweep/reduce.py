"""Sequential-safe FRAIG reduction of gate-level circuits.

:func:`fraig_reduce` shrinks a :class:`~repro.netlist.circuit.Circuit` by
SAT sweeping its *combinational cone*: registers become free pseudo-inputs
of the AIG, so every merge the solver certifies holds in **all** states,
not just the reachable ones.  The reduced circuit therefore has the same
per-frame transition and output functions as the original — it is
bit-identical under simulation from the same initial state, every engine
verdict transfers, and counterexample input traces are valid verbatim on
the original (inputs, registers and outputs keep their names, order and
initial values).

The sweep itself is the paper's signal correspondence collapsed to one
time frame, run with the incremental-solver idiom of
:mod:`repro.core.satbackend`: one solver per circuit, one CNF encoding of
the whole AIG, and one activation-literal query per candidate pair —
``act -> (a XOR b)`` solved under the single assumption ``[act]``, retired
with the unit clause ``[-act]`` — so a reduction costs one solver
construction no matter how many candidates it examines.  Refuting models
feed distinguishing patterns back into per-node counterexample signatures,
a cheap filter that prunes later queries in the same class.

Determinism: two genuinely equivalent nodes agree on *every* simulation
pattern, so they land in the same candidate class under any seed, and each
merges onto its topologically first equivalent node.  With an unbounded
conflict budget (the default) the merge set — and hence the reduced
structure and its :func:`~repro.netlist.strash.structural_fingerprint` —
is independent of the simulation seed.  A finite ``conflict_budget`` may
leave seed-dependent merges unproven; use it only where determinism is not
required.
"""

import time

from ..errors import NetlistError
from ..netlist.aig import (
    FALSE,
    TRUE,
    Aig,
    _gate_to_aig,
    lit_neg,
    lit_sign,
    lit_var,
)
from ..netlist.circuit import Circuit, GateType

#: Periodically compact the solver: every this many retired activation
#: literals the learnt/retired clauses are simplified away.
_SIMPLIFY_EVERY = 64


class FraigReduction:
    """Outcome of one :func:`fraig_reduce` call.

    ``reduced`` is the shrunken circuit; ``net_map`` is the witness map
    sending every original net to its reduced counterpart::

        {"net": <reduced net or None>, "negated": bool, "const": 0|1|None}

    ``const`` is set when the original net proved constant; ``net`` is
    ``None`` for nets whose cone became unreachable from any output or
    register input (dead logic — no reduced counterpart exists).

    Because inputs, registers (names, order, initial values) and output
    names are preserved, counterexample traces need **no** rewriting:
    :meth:`translate_trace` is the identity, kept explicit so call sites
    document the direction of the translation and get the input-name
    sanity check for free.
    """

    def __init__(self, original, reduced, net_map, stats):
        self.original = original
        self.reduced = reduced
        self.net_map = net_map
        self.stats = stats

    def translate_net(self, net):
        """Witness record for one original net; raises on unknown nets."""
        try:
            return self.net_map[net]
        except KeyError:
            raise NetlistError(
                "net {!r} does not exist in circuit {!r}".format(
                    net, self.original.name))

    def translate_trace(self, trace):
        """Map a counterexample on the reduced circuit back to the original.

        The reduction preserves input names, register names/initial values
        and output names, so the translation is the identity — but the
        frames are checked against the original input set, turning a
        contract violation into a loud error instead of a bogus replay.
        """
        if trace is None:
            return None
        known = set(self.original.inputs)
        for frame in list(trace.inputs) + [trace.final_input]:
            unknown = set(frame) - known
            if unknown:
                raise NetlistError(
                    "trace drives nets {} that are not inputs of {!r}".format(
                        sorted(unknown), self.original.name))
        return trace

    def __repr__(self):
        return "FraigReduction({!r}: {} -> {} ands, {} merges)".format(
            self.original.name, self.stats["ands_before"],
            self.stats["ands_after"], self.stats["merges"])


def fraig_reduce(circuit, sim_rounds=4, sim_width=64, seed=2024,
                 conflict_budget=None):
    """Sequential-safe FRAIG sweep; returns a :class:`FraigReduction`.

    ``sim_rounds * sim_width`` random patterns seed the candidate classes;
    ``conflict_budget`` (per SAT query) trades completeness — and, with
    it, seed-independence of the result — for bounded latency.
    """
    started = time.perf_counter()
    circuit.validate()
    import random

    rng = random.Random(seed)
    aig, lit_of, roots = _embed(circuit)
    stats = {
        "ands_before": aig.num_ands,
        "gates_before": circuit.num_gates,
        "merges": 0,
        "sat_queries": 0,
        "sat_refuted": 0,
        "sat_budget": 0,
        "cex_patterns": 0,
        "solver_constructions": 0,
    }
    proven = _sweep(aig, rng, sim_rounds * sim_width, conflict_budget, stats)
    new_aig, lit_map = _rebuild(aig, proven)
    reduced, net_of_var = _to_named_circuit(circuit, new_aig, lit_of, lit_map)
    net_map = _witness_map(circuit, lit_of, lit_map, net_of_var)
    stats["ands_after"] = new_aig.num_ands
    stats["gates_after"] = reduced.num_gates
    stats["seconds"] = time.perf_counter() - started
    return FraigReduction(circuit, reduced, net_map, stats)


# --------------------------------------------------------------------------
# embedding: the combinational cone, registers as pseudo-inputs
# --------------------------------------------------------------------------


def _embed(circuit):
    """Build the combinational-cone AIG; returns (aig, lit_of, roots).

    Registers become AIG *inputs* (their names preserved); the roots —
    what must survive :meth:`Aig.cleanup` — are the output nets followed
    by every register's data input.
    """
    aig = Aig()
    lit_of = {}
    for net in circuit.inputs:
        lit_of[net] = aig.add_input(name=net)
    for net in circuit.registers:
        lit_of[net] = aig.add_input(name=net)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        operands = [lit_of[f] for f in gate.fanins]
        lit_of[name] = _gate_to_aig(aig, gate.gtype, operands)
    roots = [lit_of[net] for net in circuit.outputs]
    roots.extend(lit_of[reg.data_in] for reg in circuit.registers.values())
    for lit in roots:
        aig.add_output(lit)
    return aig, lit_of, roots


# --------------------------------------------------------------------------
# the sweep: simulate, then prove with one incremental solver
# --------------------------------------------------------------------------


def _sweep(aig, rng, width, conflict_budget, stats):
    """Return ``{old var -> equivalent old literal}`` of certified merges."""
    if not aig.ands:
        return {}
    from ..sat.solver import Solver

    order = aig.topo_vars()
    input_set = set(aig.inputs)
    full = (1 << width) - 1
    patterns = {var: rng.getrandbits(width) for var in aig.inputs}
    signatures, _ = aig.simulate(patterns, width=width)

    # Candidate classes keyed on the polarity-normalized signature (bit 0
    # cleared by complementing), so antivalent nodes — and the constant —
    # share a class.  Iteration order [const] + inputs + topo keeps leaders
    # topologically first, which both guarantees the rebuild can resolve a
    # merge target and makes the merge set canonical (see module docstring).
    def norm(var):
        sig = signatures[var] & full
        if sig & 1:
            return sig ^ full, (True, var)
        return sig, (False, var)

    classes = {}
    for var in [0] + list(aig.inputs) + order:
        key, member = norm(var)
        classes.setdefault(key, []).append(member)
    candidates = [m for m in classes.values() if len(m) > 1]
    stats["classes"] = len(candidates)
    stats["candidates"] = sum(len(m) - 1 for m in candidates)
    if not candidates:
        return {}

    # One solver, one encoding of the whole AIG — the satbackend idiom.
    solver = Solver()
    stats["solver_constructions"] += 1
    sat_var = {0: solver.new_var()}
    solver.add_clause([-sat_var[0]])
    for var in aig.inputs:
        sat_var[var] = solver.new_var()
    for var in order:
        y = sat_var[var] = solver.new_var()
        rhs0, rhs1 = aig.ands[var]
        a = _sat_lit(sat_var, rhs0)
        b = _sat_lit(sat_var, rhs1)
        solver.add_clause([-y, a])
        solver.add_clause([-y, b])
        solver.add_clause([y, -a, -b])

    # Counterexample signatures: one bit per refuting model, appended to
    # every node.  Equal functions agree on every pattern, so filtering on
    # them never loses a true merge — it only skips doomed queries.
    cex_sig = {var: 0 for var in signatures}
    n_cex = 0

    def member_bits(member):
        complemented, var = member
        bits = cex_sig[var]
        if complemented:
            bits ^= (1 << n_cex) - 1
        return bits

    def member_sat_lit(member):
        complemented, var = member
        return -sat_var[var] if complemented else sat_var[var]

    retired = 0

    def prove_equal(leader, member):
        """One activation-literal query: UNSAT under [act] == equivalent."""
        nonlocal n_cex, retired
        la = member_sat_lit(leader)
        lb = member_sat_lit(member)
        act = solver.new_var()
        # act -> (la XOR lb): satisfiable only where the two cones differ.
        solver.add_clause([-act, la, lb])
        solver.add_clause([-act, -la, -lb])
        stats["sat_queries"] += 1
        verdict = solver.solve(assumptions=[act],
                               conflict_budget=conflict_budget)
        env = None
        if verdict:
            # Read the model *before* retiring the activation literal: the
            # retirement unit propagates at the root and wipes assignments.
            env = {var: (1 if solver.value(sat_var[var]) else 0)
                   for var in aig.inputs}
        solver.add_clause([-act])
        retired += 1
        if retired % _SIMPLIFY_EVERY == 0:
            solver.simplify()
        if verdict is False:
            # Certified equal: pin the equivalence so later queries in the
            # same cone propagate instead of re-deriving it.
            solver.add_clause([-la, lb])
            solver.add_clause([la, -lb])
            return True
        if verdict is None:
            stats["sat_budget"] += 1
            return False
        stats["sat_refuted"] += 1
        values, _ = aig.simulate(env, width=1)
        for var, value in values.items():
            if value:
                cex_sig[var] |= 1 << n_cex
        n_cex += 1
        return False

    proven = {}
    for members in candidates:
        leaders = [members[0]]
        for member in members[1:]:
            cm, vm = member
            merged = False
            if vm not in input_set:  # free variables are never rewritten
                mb = member_bits(member)
                for leader in leaders:
                    if member_bits(leader) != mb:
                        continue
                    if prove_equal(leader, member):
                        cl, vl = leader
                        proven[vm] = 2 * vl + (1 if cl != cm else 0)
                        stats["merges"] += 1
                        merged = True
                        break
            if not merged:
                leaders.append(member)
    stats["cex_patterns"] = n_cex
    return proven


def _sat_lit(sat_var, lit):
    var = sat_var[lit_var(lit)]
    return -var if lit_sign(lit) else var


# --------------------------------------------------------------------------
# rebuild: new AIG under the merge map, then a name-preserving circuit
# --------------------------------------------------------------------------


def _rebuild(aig, proven):
    """Re-express the AIG with merges applied; returns (new_aig, lit_map)."""
    new_aig = Aig()
    lit_map = {FALSE: FALSE, TRUE: TRUE}
    for var in aig.inputs:
        lit_map[2 * var] = new_aig.add_input(name=aig.names.get(var))
        lit_map[2 * var + 1] = lit_neg(lit_map[2 * var])
    for var in aig.topo_vars():
        target = proven.get(var)
        if target is not None:
            # Leaders precede members topologically, so already mapped.
            new_lit = lit_map[target]
        else:
            rhs0, rhs1 = aig.ands[var]
            new_lit = new_aig.and2(lit_map[rhs0], lit_map[rhs1])
        lit_map[2 * var] = new_lit
        lit_map[2 * var + 1] = lit_neg(new_lit)
    for lit in aig.outputs:
        new_aig.add_output(lit_map[lit])
    new_aig.cleanup()
    return new_aig, lit_map


def _to_named_circuit(circuit, new_aig, lit_of, lit_map):
    """Reduced :class:`Circuit` with the original interface names.

    Inputs and registers keep their names/order/initial values; each
    original *output net* keeps its name — via a BUF/NOT/CONST alias gate
    when the reduced function lives on an internal node — so product
    construction, BMC output pairs and replay all keep working untouched.
    """
    reduced = Circuit(circuit.name)
    taken = (set(circuit.inputs) | set(circuit.registers)
             | set(circuit.outputs))
    counters = {}

    def fresh(stem):
        while True:
            counters[stem] = counters.get(stem, 0) + 1
            name = "{}_{}".format(stem, counters[stem])
            if name not in taken:
                taken.add(name)
                return name

    net_of_var = {}
    aig_inputs = iter(new_aig.inputs)
    for net in circuit.inputs:
        reduced.add_input(net)
        net_of_var[next(aig_inputs)] = net
    for net, reg in circuit.registers.items():
        reduced.add_register(net, "__pending", init=reg.init)
        net_of_var[next(aig_inputs)] = net

    const_nets = {}

    def const_net(value):
        if value not in const_nets:
            gtype = GateType.CONST1 if value else GateType.CONST0
            name = fresh("fr_c{}".format(int(value)))
            reduced.add_gate(name, gtype, [])
            const_nets[value] = name
        return const_nets[value]

    inverters = {}

    def net_of_lit(lit):
        var = lit_var(lit)
        if var == 0:
            return const_net(bool(lit_sign(lit)))
        base = net_of_var[var]
        if not lit_sign(lit):
            return base
        inv = inverters.get(base)
        if inv is None:
            inv = inverters[base] = fresh("fr_n")
            reduced.add_gate(inv, GateType.NOT, [base])
        return inv

    for var in new_aig.topo_vars():
        rhs0, rhs1 = new_aig.ands[var]
        net = fresh("fr_a")
        reduced.add_gate(net, GateType.AND,
                         [net_of_lit(rhs0), net_of_lit(rhs1)])
        net_of_var[var] = net

    for net, reg in circuit.registers.items():
        data_lit = lit_map[lit_of[reg.data_in]]
        reduced.set_register_input(net, net_of_lit(data_lit))

    aliased = set()
    for net in circuit.outputs:
        target = net_of_lit(lit_map[lit_of[net]])
        if target != net and net not in aliased:
            # The output net was a gate in the original; alias the reduced
            # function under the original name (strash collapses the BUF).
            reduced.add_gate(net, GateType.BUF, [target])
            aliased.add(net)
        reduced.add_output(net)
    reduced.validate()
    return reduced, net_of_var


def _witness_map(circuit, lit_of, lit_map, net_of_var):
    """Original net -> {"net", "negated", "const"} witness records."""
    net_map = {}
    all_nets = (list(circuit.inputs) + list(circuit.registers)
                + list(circuit.gates))
    for net in all_nets:
        new_lit = lit_map[lit_of[net]]
        var = lit_var(new_lit)
        record = {"net": None, "negated": bool(lit_sign(new_lit)),
                  "const": None}
        if var == 0:
            record["const"] = int(lit_sign(new_lit))
            record["negated"] = False
        elif var in net_of_var:
            record["net"] = net_of_var[var]
        # else: the cone died in cleanup — dead logic, no counterpart.
        net_map[net] = record
    return net_map
