"""The standalone ``fraig_sweep`` engine (a portfolio lane).

FRAIG-reduce both circuits, then run the SAT-backed signal correspondence
of :mod:`repro.core.satbackend` on the reduced pair.  The combinational
sweep removes exactly the redundancy the correspondence fixed point would
otherwise spend refinement rounds re-proving frame by frame, so the lane
behaves like ``sat_sweep`` with a head start on netlists with functional
(not just structural) duplication.  Verdicts transfer unchanged — see
:mod:`repro.sweep.preprocess` for the soundness argument — and a
refutation's input trace is already valid on the originals.
"""

import time

from .reduce import fraig_reduce


def check_equivalence_fraig_sweep(spec, impl, match_inputs="name",
                                  match_outputs="order", seed=2024,
                                  conflict_budget=None, progress=None,
                                  cancel_check=None, **sat_options):
    """SEC by FRAIG preprocessing + SAT signal correspondence.

    ``sat_options`` are forwarded to
    :func:`~repro.core.satbackend.check_equivalence_sat_sweep`
    (``sim_frames``, ``time_limit``, ``k``, ...).  Returns a
    :class:`~repro.reach.SecResult` with ``method="fraig_sweep"`` whose
    ``details["fraig"]`` records both reductions.
    """
    from ..core.satbackend import check_equivalence_sat_sweep

    started = time.perf_counter()
    spec_red = fraig_reduce(spec, seed=seed, conflict_budget=conflict_budget)
    if cancel_check is not None and cancel_check():
        from ..service.job import aborted_result

        return aborted_result("fraig_sweep", "cancelled",
                              seconds=time.perf_counter() - started)
    impl_red = fraig_reduce(impl, seed=seed, conflict_budget=conflict_budget)
    if progress is not None:
        progress("fraig_reduced",
                 spec_ands=spec_red.stats["ands_after"],
                 impl_ands=impl_red.stats["ands_after"],
                 merges=spec_red.stats["merges"] + impl_red.stats["merges"])
    result = check_equivalence_sat_sweep(
        spec_red.reduced, impl_red.reduced, match_inputs=match_inputs,
        match_outputs=match_outputs, seed=seed, progress=progress,
        cancel_check=cancel_check, **sat_options)
    result.method = "fraig_sweep"
    if result.details is None:
        result.details = {}
    result.details["fraig"] = {
        "spec": dict(spec_red.stats),
        "impl": dict(impl_red.stats),
    }
    # The reduction preserves the input interface; the checked-identity
    # translation turns any contract drift into a loud error here rather
    # than a bogus replay downstream.
    if result.counterexample is not None:
        result.counterexample = spec_red.translate_trace(
            result.counterexample)
    return result
