"""The standalone ``fraig_sweep`` engine (a portfolio lane).

FRAIG-reduce both circuits, then run the SAT-backed signal correspondence
of :mod:`repro.core.satbackend` on the reduced pair.  The combinational
sweep removes exactly the redundancy the correspondence fixed point would
otherwise spend refinement rounds re-proving frame by frame, so the lane
behaves like ``sat_sweep`` with a head start on netlists with functional
(not just structural) duplication.  Verdicts transfer unchanged — see
:mod:`repro.sweep.preprocess` for the soundness argument — and a
refutation's input trace is already valid on the originals.
"""

import time

from .reduce import fraig_reduce


def check_equivalence_fraig_sweep(spec, impl, match_inputs="name",
                                  match_outputs="order", seed=2024,
                                  conflict_budget=None, race_workers=0,
                                  progress=None, cancel_check=None,
                                  **sat_options):
    """SEC by FRAIG preprocessing + SAT signal correspondence.

    ``sat_options`` are forwarded to
    :func:`~repro.core.satbackend.check_equivalence_sat_sweep`
    (``sim_frames``, ``time_limit``, ``k``, ...).  ``race_workers=N``
    (N >= 1) races the :data:`~repro.sweep.race.DEFAULT_RACE_STRATEGIES`
    candidate-check strategies for each reduction on an N-process
    work-stealing pool, taking the first finisher (sound for any winner;
    see :mod:`repro.sweep.race`).  Returns a
    :class:`~repro.reach.SecResult` with ``method="fraig_sweep"`` whose
    ``details["fraig"]`` records both reductions.
    """
    from ..core.satbackend import check_equivalence_sat_sweep

    race_workers = int(race_workers or 0)
    if race_workers < 0:
        raise ValueError("race_workers must be >= 0")
    started = time.perf_counter()
    race_info = {}

    def reduce_one(circuit, tag):
        if race_workers:
            from .race import race_fraig

            reduction, info = race_fraig(circuit, seed=seed,
                                         workers=race_workers,
                                         conflict_budget=conflict_budget)
            race_info[tag] = info
            return reduction
        return fraig_reduce(circuit, seed=seed,
                            conflict_budget=conflict_budget)

    spec_red = reduce_one(spec, "spec")
    if cancel_check is not None and cancel_check():
        from ..service.job import aborted_result

        return aborted_result("fraig_sweep", "cancelled",
                              seconds=time.perf_counter() - started)
    impl_red = reduce_one(impl, "impl")
    if progress is not None:
        progress("fraig_reduced",
                 spec_ands=spec_red.stats["ands_after"],
                 impl_ands=impl_red.stats["ands_after"],
                 merges=spec_red.stats["merges"] + impl_red.stats["merges"],
                 **({"race": race_info} if race_info else {}))
    result = check_equivalence_sat_sweep(
        spec_red.reduced, impl_red.reduced, match_inputs=match_inputs,
        match_outputs=match_outputs, seed=seed, progress=progress,
        cancel_check=cancel_check, **sat_options)
    result.method = "fraig_sweep"
    if result.details is None:
        result.details = {}
    result.details["fraig"] = {
        "spec": dict(spec_red.stats),
        "impl": dict(impl_red.stats),
    }
    if race_info:
        result.details["fraig"]["race"] = race_info
    # The reduction preserves the input interface; the checked-identity
    # translation turns any contract drift into a loud error here rather
    # than a bogus replay downstream.
    if result.counterexample is not None:
        result.counterexample = spec_red.translate_trace(
            result.counterexample)
    return result
