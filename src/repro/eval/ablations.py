"""Ablation experiments (the paper's §3/§4 design choices, isolated).

Each function returns a list of row dicts suitable for
:func:`repro.eval.render.render_ablation` and for assertions in the
benchmark harness:

* E4 — simulation seeding: iteration counts with/without (§4).
* E5 — functional dependencies: substitution counts, nodes, time (§4);
  plus the traversal baseline with/without register correspondence
  ("performs considerably worse" without, §5).
* E6 — retiming augmentation: provability of retimed pairs (Fig. 4).
* E7 — optimization level vs. %eqs (the 85% vs 54% footnote, §5).
* E9 — reachability-strengthened correspondence condition (§3).
* E8 — BDD vs. SAT refinement backends (§6 outlook).
"""

import time

from ..circuits.paper_example import fig3_pair, onehot_ring_pair
from ..core import VanEijkVerifier, check_equivalence_sat_sweep
from ..netlist.product import build_product
from ..reach import check_equivalence_traversal
from ..transform import retime


def _verify(spec, impl, **options):
    return VanEijkVerifier(**options).verify(spec, impl,
                                             match_outputs="order")


def ablation_simulation(rows, optimize_level=2):
    """E4: fixpoint iterations and time with/without simulation seeding."""
    results = []
    for row in rows:
        spec, impl = row.pair(optimize_level=optimize_level)
        with_sim = _verify(spec, impl, use_simulation=True)
        without_sim = _verify(spec, impl, use_simulation=False)
        results.append({
            "circuit": row.name,
            "its_sim": with_sim.iterations,
            "its_nosim": without_sim.iterations,
            "time_sim": with_sim.seconds,
            "time_nosim": without_sim.seconds,
            "both_proved": with_sim.proved and without_sim.proved,
        })
    return results


def ablation_fundep(rows, optimize_level=2):
    """E5: functional-dependency substitution on/off, both engines."""
    results = []
    for row in rows:
        spec, impl = row.pair(optimize_level=optimize_level)
        product = build_product(spec, impl, match_outputs="order")
        with_fd = VanEijkVerifier(use_fundeps=True).verify_product(product)
        without_fd = VanEijkVerifier(use_fundeps=False).verify_product(product)
        trav_fd = check_equivalence_traversal(
            product, use_register_correspondence=True,
            time_limit=60, node_limit=200000, max_iterations=600,
        )
        trav_plain = check_equivalence_traversal(
            product, use_register_correspondence=False,
            time_limit=60, node_limit=200000, max_iterations=600,
        )
        results.append({
            "circuit": row.name,
            "subs": with_fd.details.get("substitutions"),
            "nodes_fd": with_fd.peak_nodes,
            "nodes_nofd": without_fd.peak_nodes,
            "trav_fd_time": trav_fd.seconds if trav_fd.proved else None,
            "trav_plain_time": trav_plain.seconds if trav_plain.proved else None,
            "both_proved": with_fd.proved and without_fd.proved,
        })
    return results


def ablation_retiming(rows=None, retime_moves=4):
    """E6/E3: retimed pairs with augmentation on/off (plus Fig. 3)."""
    results = []
    spec, impl = fig3_pair()
    on = _verify(spec, impl, use_retiming=True)
    off = _verify(spec, impl, use_retiming=False)
    results.append({
        "circuit": "fig3",
        "proved_on": on.proved,
        "proved_off": off.proved,
        "rounds": on.details.get("retime_rounds"),
        "augmented": on.details.get("augmented_signals"),
    })
    for row in rows or []:
        spec = row.spec()
        impl = retime(spec, moves=retime_moves, seed=row._seed() + 5)
        on = _verify(spec, impl, use_retiming=True)
        off = _verify(spec, impl, use_retiming=False)
        results.append({
            "circuit": row.name,
            "proved_on": on.proved,
            "proved_off": off.proved,
            "rounds": on.details.get("retime_rounds"),
            "augmented": on.details.get("augmented_signals"),
        })
    return results


def ablation_opt_level(rows):
    """E7: %eqs after retiming only vs. after aggressive optimization.

    Reproduces the footnote: 85% of signals correspond without
    ``script.rugged``, 54% with it (our pipeline's absolute numbers differ;
    the monotone drop is the reproduced effect).
    """
    results = []
    for row in rows:
        light = _verify(*row.pair(optimize_level=0))
        heavy = _verify(*row.pair(optimize_level=2))
        results.append({
            "circuit": row.name,
            "eqs_retime_only": light.details.get("eqs_percent"),
            "eqs_optimized": heavy.details.get("eqs_percent"),
            "both_proved": light.proved and heavy.proved,
        })
    return results


def ablation_reach_bound():
    """E9: sequential don't cares rescue the incomplete cases (§3)."""
    results = []
    for label, enable in (("onehot", False), ("onehot_en", True)):
        spec, impl = onehot_ring_pair(enable=enable)
        plain = _verify(spec, impl, use_retiming=False)
        retimed = _verify(spec, impl, use_retiming=True,
                          max_retiming_rounds=4)
        exact = _verify(spec, impl, use_retiming=False, reach_bound="exact")
        results.append({
            "circuit": label,
            "plain": plain.equivalent,
            "with_retiming": retimed.equivalent,
            "with_reach": exact.equivalent,
        })
    return results


def ablation_backends(rows, optimize_level=2):
    """E8: BDD fixpoint vs. SAT (intermediate-variable) fixpoint."""
    results = []
    for row in rows:
        spec, impl = row.pair(optimize_level=optimize_level)
        t0 = time.monotonic()
        bdd = _verify(spec, impl, use_retiming=False)
        t1 = time.monotonic()
        sat = check_equivalence_sat_sweep(spec, impl, match_outputs="order")
        t2 = time.monotonic()
        results.append({
            "circuit": row.name,
            "bdd_time": t1 - t0,
            "sat_time": t2 - t1,
            "bdd_verdict": bdd.equivalent,
            "sat_verdict": sat.equivalent,
        })
    return results
