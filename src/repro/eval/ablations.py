"""Ablation experiments (the paper's §3/§4 design choices, isolated).

Each function returns a list of row dicts suitable for
:func:`repro.eval.render.render_ablation` and for assertions in the
benchmark harness:

* E4 — simulation seeding: iteration counts with/without (§4).
* E5 — functional dependencies: substitution counts, nodes, time (§4);
  plus the traversal baseline with/without register correspondence
  ("performs considerably worse" without, §5).
* E6 — retiming augmentation: provability of retimed pairs (Fig. 4).
* E7 — optimization level vs. %eqs (the 85% vs 54% footnote, §5).
* E9 — reachability-strengthened correspondence condition (§3).
* E8 — BDD vs. SAT refinement backends (§6 outlook).
* E10 — k-induction with/without correspondence strengthening: proof
  depth and dropped-candidate counts on correspondence-inconclusive
  pairs (the induction engine's analogue of the paper's invariant).

All verification calls go through the batch scheduler: every ablation
accepts ``workers`` (0 = inline/sequential, N = parallel worker
processes), ``cache`` and ``bus`` and forwards them to
:class:`repro.service.BatchScheduler`, so ablation sweeps parallelize and
reuse cached verdicts exactly like the Table-1 reproduction.
"""

from ..circuits.induction_hard import onehot_chain_pair
from ..circuits.paper_example import fig3_pair, onehot_ring_pair
from ..service import BatchScheduler, JobSpec
from ..transform import retime

_TRAVERSAL_BUDGET = dict(time_limit=60, node_limit=200000,
                         max_iterations=600)


def _schedule(jobs, workers=0, cache=None, bus=None):
    """Run job specs through the scheduler; returns their SecResults."""
    scheduler = BatchScheduler(workers=workers, cache=cache, bus=bus)
    return [outcome.result for outcome in scheduler.run(jobs)]


def _job(name, spec, impl, method="van_eijk", **options):
    return JobSpec(name, spec, impl, method=method, options=options,
                   match_outputs="order")


def ablation_simulation(rows, optimize_level=2, workers=0, cache=None,
                        bus=None):
    """E4: fixpoint iterations and time with/without simulation seeding."""
    jobs = []
    for row in rows:
        spec, impl = row.pair(optimize_level=optimize_level)
        jobs.append(_job(row.name, spec, impl, use_simulation=True))
        jobs.append(_job(row.name, spec, impl, use_simulation=False))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, row in enumerate(rows):
        with_sim, without_sim = outcomes[2 * i], outcomes[2 * i + 1]
        results.append({
            "circuit": row.name,
            "its_sim": with_sim.iterations,
            "its_nosim": without_sim.iterations,
            "time_sim": with_sim.seconds,
            "time_nosim": without_sim.seconds,
            "both_proved": with_sim.proved and without_sim.proved,
        })
    return results


def ablation_fundep(rows, optimize_level=2, workers=0, cache=None, bus=None):
    """E5: functional-dependency substitution on/off, both engines."""
    jobs = []
    for row in rows:
        spec, impl = row.pair(optimize_level=optimize_level)
        jobs.append(_job(row.name, spec, impl, use_fundeps=True))
        jobs.append(_job(row.name, spec, impl, use_fundeps=False))
        jobs.append(_job(row.name, spec, impl, method="traversal",
                         use_register_correspondence=True,
                         **_TRAVERSAL_BUDGET))
        jobs.append(_job(row.name, spec, impl, method="traversal",
                         use_register_correspondence=False,
                         **_TRAVERSAL_BUDGET))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, row in enumerate(rows):
        with_fd, without_fd, trav_fd, trav_plain = outcomes[4 * i:4 * i + 4]
        results.append({
            "circuit": row.name,
            "subs": with_fd.details.get("substitutions"),
            "nodes_fd": with_fd.peak_nodes,
            "nodes_nofd": without_fd.peak_nodes,
            "trav_fd_time": trav_fd.seconds if trav_fd.proved else None,
            "trav_plain_time": trav_plain.seconds if trav_plain.proved else None,
            "both_proved": with_fd.proved and without_fd.proved,
        })
    return results


def ablation_retiming(rows=None, retime_moves=4, workers=0, cache=None,
                      bus=None):
    """E6/E3: retimed pairs with augmentation on/off (plus Fig. 3)."""
    pairs = [("fig3",) + fig3_pair()]
    for row in rows or []:
        spec = row.spec()
        impl = retime(spec, moves=retime_moves, seed=row._seed() + 5)
        pairs.append((row.name, spec, impl))
    jobs = []
    for name, spec, impl in pairs:
        jobs.append(_job(name, spec, impl, use_retiming=True))
        jobs.append(_job(name, spec, impl, use_retiming=False))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, (name, _, _) in enumerate(pairs):
        on, off = outcomes[2 * i], outcomes[2 * i + 1]
        results.append({
            "circuit": name,
            "proved_on": on.proved,
            "proved_off": off.proved,
            "rounds": on.details.get("retime_rounds"),
            "augmented": on.details.get("augmented_signals"),
        })
    return results


def ablation_opt_level(rows, workers=0, cache=None, bus=None):
    """E7: %eqs after retiming only vs. after aggressive optimization.

    Reproduces the footnote: 85% of signals correspond without
    ``script.rugged``, 54% with it (our pipeline's absolute numbers differ;
    the monotone drop is the reproduced effect).
    """
    jobs = []
    for row in rows:
        jobs.append(_job(row.name, *row.pair(optimize_level=0)))
        jobs.append(_job(row.name, *row.pair(optimize_level=2)))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, row in enumerate(rows):
        light, heavy = outcomes[2 * i], outcomes[2 * i + 1]
        results.append({
            "circuit": row.name,
            "eqs_retime_only": light.details.get("eqs_percent"),
            "eqs_optimized": heavy.details.get("eqs_percent"),
            "both_proved": light.proved and heavy.proved,
        })
    return results


def ablation_reach_bound(workers=0, cache=None, bus=None):
    """E9: sequential don't cares rescue the incomplete cases (§3)."""
    configs = [("onehot", False), ("onehot_en", True)]
    jobs = []
    for label, enable in configs:
        spec, impl = onehot_ring_pair(enable=enable)
        jobs.append(_job(label, spec, impl, use_retiming=False))
        jobs.append(_job(label, spec, impl, use_retiming=True,
                         max_retiming_rounds=4))
        jobs.append(_job(label, spec, impl, use_retiming=False,
                         reach_bound="exact"))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, (label, _) in enumerate(configs):
        plain, retimed, exact = outcomes[3 * i:3 * i + 3]
        results.append({
            "circuit": label,
            "plain": plain.equivalent,
            "with_retiming": retimed.equivalent,
            "with_reach": exact.equivalent,
        })
    return results


def ablation_induction(pairs=None, max_depth=16, workers=0, cache=None,
                       bus=None):
    """E10: candidate strengthening vs. plain k-induction.

    Runs the induction engine twice on each correspondence-inconclusive
    pair — once with the simulation-derived candidate invariant, once
    bare — and reports the depth each proof closed at.  Strengthening
    should close at a strictly lower (or equal) depth whenever the
    candidates survive consecution.
    """
    if pairs is None:
        pairs = [
            ("onehot_ring",) + onehot_ring_pair(),
            ("onehot_ring_en",) + onehot_ring_pair(enable=True),
            ("onehot_chain6",) + onehot_chain_pair(6),
        ]
    jobs = []
    for name, spec, impl in pairs:
        jobs.append(_job(name, spec, impl, method="k_induction",
                         strengthen=True, max_depth=max_depth))
        jobs.append(_job(name, spec, impl, method="k_induction",
                         strengthen=False, max_depth=max_depth))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, (name, _, _) in enumerate(pairs):
        on, off = outcomes[2 * i], outcomes[2 * i + 1]
        results.append({
            "circuit": name,
            "depth_strengthened": on.details.get("depth"),
            "depth_plain": off.details.get("depth"),
            "candidates": on.details.get("candidates_active"),
            "dropped": on.details.get("candidates_dropped"),
            "both_proved": on.proved and off.proved,
        })
    return results


def ablation_backends(rows, optimize_level=2, workers=0, cache=None,
                      bus=None):
    """E8: BDD fixpoint vs. SAT (intermediate-variable) fixpoint."""
    jobs = []
    for row in rows:
        spec, impl = row.pair(optimize_level=optimize_level)
        jobs.append(_job(row.name, spec, impl, use_retiming=False))
        jobs.append(_job(row.name, spec, impl, method="sat_sweep"))
    outcomes = _schedule(jobs, workers=workers, cache=cache, bus=bus)
    results = []
    for i, row in enumerate(rows):
        bdd, sat = outcomes[2 * i], outcomes[2 * i + 1]
        results.append({
            "circuit": row.name,
            "bdd_time": bdd.seconds,
            "sat_time": sat.seconds,
            "bdd_verdict": bdd.equivalent,
            "sat_verdict": sat.equivalent,
        })
    return results
