"""Plain-text rendering of evaluation results (the paper's table style)."""


def _fmt_time(seconds):
    if seconds is None:
        return "-"
    return "{:.2f}".format(seconds)


def _fmt_int(value):
    return "-" if value is None else str(value)


def _fmt_verdict(cols):
    verdict = cols.get("verdict")
    if verdict is True:
        return "eq"
    if verdict is False:
        return "NEQ"
    return "abort"


def render_table1(results):
    """Monospace rendering of Table-1 results (same columns as the paper)."""
    header = (
        "{:<8} {:>9} | {:>9} {:>9} {:>5} {:>6} | {:>9} {:>9} {:>10} {:>6} | {:>5}"
    ).format(
        "circuit", "regs o/s",
        "trav t(s)", "nodes", "#its", "res",
        "prop t(s)", "nodes", "#its(rt)", "res",
        "eqs%",
    )
    lines = [header, "-" * len(header)]
    for result in results:
        row = result.as_dict()
        trav = row["traversal"]
        prop = row["proposed"]
        its_rt = "-"
        if prop.get("its") is not None:
            its_rt = "{} ({})".format(prop["its"], prop.get("retimes", 0))
        lines.append(
            "{:<8} {:>9} | {:>9} {:>9} {:>5} {:>6} | {:>9} {:>9} {:>10} {:>6} | {:>5}".format(
                row["circuit"],
                row["regs"],
                _fmt_time(trav.get("time")) if trav else "-",
                _fmt_int(trav.get("nodes")) if trav else "-",
                _fmt_int(trav.get("its")) if trav else "-",
                _fmt_verdict(trav) if trav else "-",
                _fmt_time(prop.get("time")),
                _fmt_int(prop.get("nodes")),
                its_rt,
                _fmt_verdict(prop),
                "-" if row["eqs"] is None else "{:.0f}".format(row["eqs"]),
            )
        )
    return "\n".join(lines)


def render_ablation(title, rows, columns):
    """Generic two-level ablation table.

    ``rows`` is a list of dicts; ``columns`` lists (key, header, formatter).
    """
    widths = [max(len(header), 10) for _, header, _ in columns]
    header_line = "  ".join(
        "{:>{}}".format(header, w) for (_, header, _), w in zip(columns, widths)
    )
    lines = [title, header_line, "-" * len(header_line)]
    for row in rows:
        cells = []
        for (key, _, formatter), width in zip(columns, widths):
            value = row.get(key)
            cells.append("{:>{}}".format(formatter(value), width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def fmt_any(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "{:.2f}".format(value)
    return str(value)
