"""Table 1 of the paper: symbolic traversal vs. the proposed method.

For every benchmark pair (original vs. retimed+optimized) both engines run
under explicit budgets (the paper used 3600 s and 100 MB of BDD nodes), and
the same columns are reported: register counts before/after synthesis;
traversal time, peak BDD nodes, iterations; proposed-method time, peak
nodes, iterations (+ retiming rounds); and the percentage of specification
signals with a corresponding implementation signal.

Execution goes through the batch scheduler
(:class:`repro.service.BatchScheduler`): ``workers=0`` (default) runs
inline and sequentially as the seed did, ``workers=N`` races the table's
rows across N worker processes, and a ``cache`` makes repeated table runs
skip already-solved rows.
"""

from ..service import BatchScheduler, JobSpec


class Table1Result:
    """One row of Table 1 (plus verdicts, for sanity checking)."""

    def __init__(self, name, regs_orig, regs_opt, traversal, proposed):
        self.name = name
        self.regs_orig = regs_orig
        self.regs_opt = regs_opt
        self.traversal = traversal
        self.proposed = proposed

    @property
    def eqs_percent(self):
        return self.proposed.details.get("eqs_percent")

    def as_dict(self):
        def method_cols(result, with_retimes=False):
            if result is None:
                return {"time": None, "nodes": None, "its": None}
            cols = {
                "time": result.seconds,
                "nodes": result.peak_nodes,
                "its": result.iterations,
                "verdict": result.equivalent,
            }
            if result.inconclusive:
                cols["aborted"] = result.details.get("aborted",
                                                     "inconclusive")
            if with_retimes:
                cols["retimes"] = result.details.get("retime_rounds")
            return cols

        return {
            "circuit": self.name,
            "regs": "{}/{}".format(self.regs_orig, self.regs_opt),
            "traversal": method_cols(self.traversal),
            "proposed": method_cols(self.proposed, with_retimes=True),
            "eqs": self.eqs_percent,
        }


def table1_jobs(row, optimize_level=2, traversal_time_limit=60.0,
                traversal_node_limit=200000, traversal_max_iterations=600,
                proposed_time_limit=300.0, proposed_node_limit=2000000,
                run_traversal=True, verifier_options=None):
    """Build the (proposed, traversal) job specs for one suite row.

    Returns ``(jobs, regs_orig, regs_opt)`` where ``jobs`` holds the
    proposed-method job and, with ``run_traversal``, the traversal job.
    """
    spec, impl = row.pair(optimize_level=optimize_level)
    options = dict(
        time_limit=proposed_time_limit,
        node_limit=proposed_node_limit,
    )
    options.update(verifier_options or {})
    jobs = [JobSpec(row.name, spec, impl, method="van_eijk",
                    options=options, tags={"role": "proposed"})]
    if run_traversal:
        jobs.append(JobSpec(row.name, spec, impl, method="traversal",
                            options=dict(
                                time_limit=traversal_time_limit,
                                node_limit=traversal_node_limit,
                                max_iterations=traversal_max_iterations,
                            ),
                            tags={"role": "traversal"}))
    return jobs, spec.num_registers, impl.num_registers


def run_table(rows, workers=0, cache=None, bus=None, scheduler=None,
              **row_kwargs):
    """Run a list of suite rows; returns the result list in order.

    ``workers`` parallelizes across rows *and* engines (each row submits
    one proposed-method job and one traversal job to the scheduler);
    ``cache``/``bus`` are forwarded to :class:`BatchScheduler`, so repeated
    table reproductions hit the result cache and stream progress events.
    ``scheduler`` substitutes any object with the same ``run(jobs)``
    surface — e.g. a :class:`repro.client.RemoteScheduler`, which farms the
    whole table out to a ``repro-sec serve`` daemon.  Remaining keyword
    arguments are per-row options (see :func:`table1_jobs`).
    """
    jobs = []
    layout = []  # (row, regs_orig, regs_opt, proposed_idx, traversal_idx)
    for row in rows:
        row_jobs, regs_orig, regs_opt = table1_jobs(row, **row_kwargs)
        proposed_idx = len(jobs)
        traversal_idx = len(jobs) + 1 if len(row_jobs) > 1 else None
        jobs.extend(row_jobs)
        layout.append((row, regs_orig, regs_opt, proposed_idx, traversal_idx))
    if scheduler is None:
        scheduler = BatchScheduler(workers=workers, cache=cache, bus=bus)
    outcomes = scheduler.run(jobs)
    return [
        Table1Result(
            row.name, regs_orig, regs_opt,
            None if traversal_idx is None else outcomes[traversal_idx].result,
            outcomes[proposed_idx].result,
        )
        for row, regs_orig, regs_opt, proposed_idx, traversal_idx in layout
    ]


def run_row(row, **kwargs):
    """Run both engines on one suite row; returns a :class:`Table1Result`."""
    return run_table([row], **kwargs)[0]
