"""Table 1 of the paper: symbolic traversal vs. the proposed method.

For every benchmark pair (original vs. retimed+optimized) both engines run
under explicit budgets (the paper used 3600 s and 100 MB of BDD nodes), and
the same columns are reported: register counts before/after synthesis;
traversal time, peak BDD nodes, iterations; proposed-method time, peak
nodes, iterations (+ retiming rounds); and the percentage of specification
signals with a corresponding implementation signal.
"""

from ..core import VanEijkVerifier
from ..netlist.product import build_product
from ..reach import check_equivalence_traversal


class Table1Result:
    """One row of Table 1 (plus verdicts, for sanity checking)."""

    def __init__(self, name, regs_orig, regs_opt, traversal, proposed):
        self.name = name
        self.regs_orig = regs_orig
        self.regs_opt = regs_opt
        self.traversal = traversal
        self.proposed = proposed

    @property
    def eqs_percent(self):
        return self.proposed.details.get("eqs_percent")

    def as_dict(self):
        def method_cols(result, with_retimes=False):
            if result is None:
                return {"time": None, "nodes": None, "its": None}
            cols = {
                "time": result.seconds,
                "nodes": result.peak_nodes,
                "its": result.iterations,
                "verdict": result.equivalent,
            }
            if result.inconclusive:
                cols["aborted"] = result.details.get("aborted",
                                                     "inconclusive")
            if with_retimes:
                cols["retimes"] = result.details.get("retime_rounds")
            return cols

        return {
            "circuit": self.name,
            "regs": "{}/{}".format(self.regs_orig, self.regs_opt),
            "traversal": method_cols(self.traversal),
            "proposed": method_cols(self.proposed, with_retimes=True),
            "eqs": self.eqs_percent,
        }


def run_row(row, optimize_level=2, traversal_time_limit=60.0,
            traversal_node_limit=200000, traversal_max_iterations=600,
            proposed_time_limit=300.0, proposed_node_limit=2000000,
            run_traversal=True, verifier_options=None):
    """Run both engines on one suite row; returns a :class:`Table1Result`."""
    spec, impl = row.pair(optimize_level=optimize_level)
    product = build_product(spec, impl, match_inputs="name",
                            match_outputs="order")
    options = dict(
        time_limit=proposed_time_limit,
        node_limit=proposed_node_limit,
    )
    options.update(verifier_options or {})
    proposed = VanEijkVerifier(**options).verify_product(product)
    traversal = None
    if run_traversal:
        traversal = check_equivalence_traversal(
            product,
            time_limit=traversal_time_limit,
            node_limit=traversal_node_limit,
            max_iterations=traversal_max_iterations,
        )
    return Table1Result(
        row.name, spec.num_registers, impl.num_registers, traversal, proposed
    )


def run_table(rows, **kwargs):
    """Run a list of suite rows; returns the result list in order."""
    return [run_row(row, **kwargs) for row in rows]
