"""Evaluation harness: Table-1 runner, ablations, text rendering."""

from .table1 import Table1Result, run_row, run_table, table1_jobs
from .render import fmt_any, render_ablation, render_table1
from .ablations import (
    ablation_backends,
    ablation_fundep,
    ablation_induction,
    ablation_opt_level,
    ablation_reach_bound,
    ablation_retiming,
    ablation_simulation,
)

__all__ = [
    "Table1Result",
    "ablation_backends",
    "ablation_fundep",
    "ablation_induction",
    "ablation_opt_level",
    "ablation_reach_bound",
    "ablation_retiming",
    "ablation_simulation",
    "fmt_any",
    "render_ablation",
    "render_table1",
    "run_row",
    "run_table",
    "table1_jobs",
]
