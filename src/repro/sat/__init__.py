"""A self-contained CDCL SAT solver with circuit (Tseitin) encoding."""

from .cnf import Cnf
from .solver import Solver, luby
from .tseitin import TseitinEncoder, encode_miter
from .simplify import SimplifyResult, simplify

__all__ = ["Cnf", "SimplifyResult", "Solver", "TseitinEncoder",
           "encode_miter", "luby", "simplify"]
